"""ASCII charts for terminal-rendered figures.

The experiment ``render()`` methods print tables; these helpers add the
actual curves so a terminal user sees the paper figure's shape at a
glance.  Pure text, no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

MARKERS = "ox+*#@"


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render one or more (x, y) series on a character grid.

    Args:
        series: Name -> (xs, ys); each series gets the next marker from
            ``oxx+*#@`` and a legend line.
        width: Plot area width in characters (>= 10).
        height: Plot area height in rows (>= 4).
        log_y: Plot ``log10(y)``; requires strictly positive y values.
        title: Optional title line.

    Returns:
        The chart as a multi-line string (y-axis labels on the left,
        x range below, legend last).
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    if not series:
        raise ValueError("no series to plot")

    points: list[tuple[str, list[float], list[float]]] = []
    for name, (xs, ys) in series.items():
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x and y lengths differ")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        if log_y:
            if any(y <= 0 for y in ys):
                raise ValueError(f"series {name!r}: log scale needs y > 0")
            ys = [math.log10(y) for y in ys]
        points.append((name, xs, ys))

    all_x = [x for _, xs, _ in points for x in xs]
    all_y = [y for _, _, ys in points for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, xs, ys) in enumerate(points):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    def y_label(value: float) -> str:
        shown = 10**value if log_y else value
        return f"{shown:9.3g}"

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_label(y_hi)
        elif r == height - 1:
            label = y_label(y_lo)
        else:
            label = " " * 9
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(" " * 10 + "+" + "-" * width + "+")
    x_left, x_right = f"{x_lo:g}", f"{x_hi:g}"
    pad = max(width - len(x_left) - len(x_right), 1)
    lines.append(" " * 11 + x_left + " " * pad + x_right)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, (name, _, _) in enumerate(points)
    )
    lines.append(" " * 11 + legend + ("   [log y]" if log_y else ""))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """A one-line bar sparkline (block characters) of a series."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        # Downsample by averaging buckets.
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(int((i + 1) * bucket) - int(i * bucket), 1)
            for i in range(width)
        ]
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(int((v - lo) / span * (len(blocks) - 1) + 0.5), len(blocks) - 1)]
        for v in values
    )
