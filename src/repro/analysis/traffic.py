"""Traffic and load distribution analysis.

The paper stresses that "the communication reduction must be achieved
by a balanced placement, without causing excessively above-average load
at particular nodes".  These helpers quantify that balance — for byte
counters (an engine's per-node sends, a network model's traffic
matrix) and for storage loads — via max/mean ratios, coefficients of
variation, and a normalized entropy that reads as "how evenly spread".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

NodeId = Hashable


@dataclass(frozen=True)
class BalanceReport:
    """Distribution statistics over per-node quantities.

    Attributes:
        values: The per-node quantities analyzed, in node order.
        max_over_mean: Peak divided by mean (1.0 = perfectly even).
        coefficient_of_variation: Standard deviation over mean.
        normalized_entropy: Shannon entropy over the distribution,
            normalized to [0, 1] (1 = perfectly even).
        hotspots: Indices of nodes above twice the mean.
    """

    values: tuple[float, ...]
    max_over_mean: float
    coefficient_of_variation: float
    normalized_entropy: float
    hotspots: tuple[int, ...]

    @property
    def is_balanced(self) -> bool:
        """The paper's working criterion: nothing above 2x the mean."""
        return not self.hotspots


def balance_report(values: Sequence[float]) -> BalanceReport:
    """Analyze any per-node quantity (bytes sent, storage load, ...).

    Args:
        values: One nonnegative number per node (at least one).

    Returns:
        A :class:`BalanceReport`.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("need at least one node value")
    if np.any(array < 0):
        raise ValueError("values must be nonnegative")
    mean = array.mean()
    if mean == 0:
        return BalanceReport(
            values=tuple(array.tolist()),
            max_over_mean=0.0,
            coefficient_of_variation=0.0,
            normalized_entropy=1.0,
            hotspots=(),
        )
    shares = array / array.sum()
    nonzero = shares[shares > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    max_entropy = float(np.log(array.size)) if array.size > 1 else 1.0
    hotspots = tuple(int(i) for i in np.where(array > 2.0 * mean)[0])
    return BalanceReport(
        values=tuple(array.tolist()),
        max_over_mean=float(array.max() / mean),
        coefficient_of_variation=float(array.std() / mean),
        normalized_entropy=entropy / max_entropy if max_entropy > 0 else 1.0,
        hotspots=hotspots,
    )


def sender_balance(
    per_node_bytes: Mapping[NodeId, int], node_ids: Sequence[NodeId]
) -> BalanceReport:
    """Balance of an engine's per-node bytes-sent counters.

    Nodes that never sent anything count as zeros, so a placement that
    funnels all traffic through one node is flagged even when the
    engine only recorded active senders.
    """
    values = [float(per_node_bytes.get(node, 0)) for node in node_ids]
    return balance_report(values)


def link_utilization(traffic_matrix: np.ndarray) -> BalanceReport:
    """Balance over the directed links of a traffic matrix.

    Args:
        traffic_matrix: ``(n, n)`` bytes matrix (senders on rows), as
            produced by :meth:`repro.cluster.network.NetworkModel.traffic_matrix`.
    """
    matrix = np.asarray(traffic_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("traffic matrix must be square")
    n = matrix.shape[0]
    off_diagonal = matrix[~np.eye(n, dtype=bool)]
    if off_diagonal.size == 0:
        off_diagonal = np.zeros(1)
    return balance_report(off_diagonal.tolist())
