"""Temporal stability of pair correlations (Figure 2B).

The paper compares the top-1000 January pairs against their February
probabilities: "only 1.2% keyword pairs have correlation changes that
are greater-than-twice or less-than-half the originals."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.analysis.skewness import pair_probability_curve

Pair = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class StabilityReport:
    """Period-over-period comparison of pair correlations.

    Attributes:
        pairs: The reference period's top pairs, in rank order.
        reference: Their probabilities in the reference period.
        comparison: Their probabilities in the comparison period
            (0 when a pair vanished).
        unstable_fraction: Fraction of pairs whose probability changed
            by more than 2x in either direction.
    """

    pairs: tuple[Pair, ...]
    reference: tuple[float, ...]
    comparison: tuple[float, ...]
    unstable_fraction: float

    @property
    def stable_fraction(self) -> float:
        """Complement of :attr:`unstable_fraction`."""
        return 1.0 - self.unstable_fraction

    def changes(self) -> list[float]:
        """Per-pair probability ratios comparison/reference.

        A vanished pair reports a ratio of 0; a reference probability
        of 0 cannot occur (such pairs are never in the top ranking).
        """
        return [c / r if r > 0 else 0.0 for r, c in zip(self.reference, self.comparison)]


def stability_report(
    reference_correlations: Mapping[Pair, float],
    comparison_correlations: Mapping[Pair, float],
    top_k: int = 1000,
    change_factor: float = 2.0,
) -> StabilityReport:
    """Measure how stable the top reference pairs are over time.

    Args:
        reference_correlations: Period-one pair probabilities (the
            ranking period — the paper's January).
        comparison_correlations: Period-two probabilities (February).
        top_k: How many reference pairs to track.
        change_factor: A pair is unstable when its probability grows
            by more than this factor or shrinks below its reciprocal.

    Returns:
        A :class:`StabilityReport`.
    """
    if change_factor <= 1.0:
        raise ValueError("change_factor must exceed 1")
    pairs, reference = pair_probability_curve(reference_correlations, top_k)
    comparison = [float(comparison_correlations.get(pair, 0.0)) for pair in pairs]
    unstable = 0
    for ref, cmp_ in zip(reference, comparison):
        if cmp_ > ref * change_factor or cmp_ < ref / change_factor:
            unstable += 1
    fraction = unstable / len(pairs) if pairs else 0.0
    return StabilityReport(
        pairs=tuple(pairs),
        reference=tuple(reference),
        comparison=tuple(comparison),
        unstable_fraction=fraction,
    )
