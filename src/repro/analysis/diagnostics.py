"""Placement diagnostics: where is a placement leaving money?

Operator-facing analysis of a concrete placement: which split pairs
cost the most (the *regret list*), which single-object moves would pay
immediately, and a per-node breakdown of incoming/outgoing pair weight.
The adaptive loop and the examples use these to explain *why* a
placement costs what it costs, not just how much.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import NodeId, ObjectId


@dataclass(frozen=True)
class RegretPair:
    """One split pair, with its objective contribution."""

    a: ObjectId
    b: ObjectId
    weight: float
    node_a: NodeId
    node_b: NodeId


@dataclass(frozen=True)
class MoveSuggestion:
    """A single-object relocation and its immediate payoff."""

    obj: ObjectId
    destination: NodeId
    gain: float
    fits_capacity: bool


def regret_pairs(placement: Placement, top_k: int = 20) -> list[RegretPair]:
    """The most expensive split pairs, descending by weight.

    Args:
        placement: The placement to diagnose.
        top_k: How many pairs to return.
    """
    problem = placement.problem
    if problem.num_pairs == 0:
        return []
    split = (
        placement.assignment[problem.pair_index[:, 0]]
        != placement.assignment[problem.pair_index[:, 1]]
    )
    indices = np.where(split)[0]
    order = indices[np.argsort(-problem.pair_weights[indices], kind="stable")]
    result = []
    for p in order[:top_k]:
        i, j = problem.pair_index[p]
        result.append(
            RegretPair(
                a=problem.object_ids[i],
                b=problem.object_ids[j],
                weight=float(problem.pair_weights[p]),
                node_a=problem.node_ids[placement.assignment[i]],
                node_b=problem.node_ids[placement.assignment[j]],
            )
        )
    return result


def best_moves(
    placement: Placement, top_k: int = 10, respect_capacity: bool = True
) -> list[MoveSuggestion]:
    """The most profitable single-object relocations, descending.

    A move's gain is the split weight it heals minus the co-located
    weight it breaks; only strictly positive gains are reported.

    Args:
        placement: The placement to diagnose.
        top_k: How many suggestions to return.
        respect_capacity: Only suggest destinations with room (moves to
            full nodes are reported with ``fits_capacity=False`` when
            this is off).
    """
    problem = placement.problem
    t, n = problem.num_objects, problem.num_nodes
    if problem.num_pairs == 0:
        return []

    # weight_to[i, k]: pair weight object i shares with node k.
    weight_to = np.zeros((t, n))
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            weight_to[int(i), placement.assignment[int(j)]] += weight
            weight_to[int(j), placement.assignment[int(i)]] += weight

    loads = placement.node_loads()
    here = weight_to[np.arange(t), placement.assignment]
    gains = weight_to - here[:, None]
    gains[np.arange(t), placement.assignment] = -np.inf

    suggestions: list[MoveSuggestion] = []
    flat = np.argsort(-gains, axis=None, kind="stable")
    for position in flat:
        obj, dst = divmod(int(position), n)
        gain = gains[obj, dst]
        if gain <= 1e-12 or len(suggestions) >= top_k:
            break
        fits = bool(
            loads[dst] + problem.sizes[obj]
            <= problem.capacities[dst] + 1e-9
        )
        if respect_capacity and not fits:
            continue
        suggestions.append(
            MoveSuggestion(
                obj=problem.object_ids[obj],
                destination=problem.node_ids[dst],
                gain=float(gain),
                fits_capacity=fits,
            )
        )
    return suggestions


def node_cut_weights(placement: Placement) -> dict[NodeId, float]:
    """Per-node total weight of split pairs incident to the node."""
    problem = placement.problem
    totals = np.zeros(problem.num_nodes)
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        ka, kb = placement.assignment[int(i)], placement.assignment[int(j)]
        if ka != kb and weight > 0:
            totals[ka] += weight
            totals[kb] += weight
    return {
        node: float(totals[k]) for k, node in enumerate(problem.node_ids)
    }
