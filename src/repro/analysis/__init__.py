"""Trace and placement analysis: the measurement side of the paper.

Skewness (Figure 2A), stability (Figure 2B), importance dominance
(Figure 5), and plain-text reporting used by the benchmark harness.
"""

from repro.analysis.asciiplot import ascii_chart, sparkline
from repro.analysis.comparison import (
    ComparisonResult,
    StrategyOutcome,
    compare_strategies,
)
from repro.analysis.diagnostics import (
    MoveSuggestion,
    RegretPair,
    best_moves,
    node_cut_weights,
    regret_pairs,
)
from repro.analysis.dominance import DominanceCurves, dominance_curves
from repro.analysis.reporting import format_series, format_table, normalize_to
from repro.analysis.skewness import pair_probability_curve, skew_ratio
from repro.analysis.stability import StabilityReport, stability_report
from repro.analysis.traffic import (
    BalanceReport,
    balance_report,
    link_utilization,
    sender_balance,
)

__all__ = [
    "BalanceReport",
    "ComparisonResult",
    "MoveSuggestion",
    "StrategyOutcome",
    "RegretPair",
    "DominanceCurves",
    "StabilityReport",
    "ascii_chart",
    "balance_report",
    "best_moves",
    "compare_strategies",
    "dominance_curves",
    "format_series",
    "link_utilization",
    "node_cut_weights",
    "format_table",
    "normalize_to",
    "pair_probability_curve",
    "regret_pairs",
    "sender_balance",
    "skew_ratio",
    "sparkline",
    "stability_report",
]
