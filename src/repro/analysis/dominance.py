"""Important-object dominance curves (Figure 5).

Shows how much of the total index size and of the total pair
communication cost the top-ranked keywords cover — the empirical
justification for important-object partial optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.importance import importance_ranking
from repro.core.problem import ObjectId, PlacementProblem


@dataclass(frozen=True)
class DominanceCurves:
    """Cumulative coverage at each checkpoint.

    Attributes:
        checkpoints: Scope sizes (number of top keywords considered).
        size_fraction: Fraction of total object size covered by the
            top ``checkpoints[i]`` objects.
        cost_fraction: Fraction of total pair communication weight
            covered — a pair counts once *both* endpoints are in scope
            (that is exactly the weight partial optimization can
            optimize).
        ranking: The full importance ranking used.
    """

    checkpoints: tuple[int, ...]
    size_fraction: tuple[float, ...]
    cost_fraction: tuple[float, ...]
    ranking: tuple[ObjectId, ...]

    def coverage_at(self, scope: int) -> tuple[float, float]:
        """``(size_fraction, cost_fraction)`` at the given scope.

        The scope must be one of the checkpoints.
        """
        try:
            i = self.checkpoints.index(scope)
        except ValueError:
            raise KeyError(f"scope {scope} is not a checkpoint") from None
        return self.size_fraction[i], self.cost_fraction[i]


def dominance_curves(
    problem: PlacementProblem, checkpoints: Sequence[int] | None = None
) -> DominanceCurves:
    """Compute Figure 5's cumulative dominance curves for a problem.

    Args:
        problem: The CCA instance (sizes + pair weights).
        checkpoints: Scope sizes to evaluate; defaults to ten evenly
            spaced points up to ``|T|``.
    """
    t = problem.num_objects
    if checkpoints is None:
        step = max(t // 10, 1)
        checkpoints = list(range(step, t + 1, step))
        if checkpoints[-1] != t:
            checkpoints.append(t)
    checkpoints = [c for c in checkpoints if 0 <= c <= t]
    if not checkpoints:
        raise ValueError("no valid checkpoints")

    ranking = importance_ranking(problem)
    rank_of = np.empty(t, dtype=np.int64)
    for rank, obj in enumerate(ranking):
        rank_of[problem.object_index(obj)] = rank

    # Size covered as scope grows: prefix sums over ranked sizes.
    ranked_sizes = problem.sizes[np.argsort(rank_of, kind="stable")]
    size_prefix = np.concatenate([[0.0], np.cumsum(ranked_sizes)])
    total_size = problem.total_size

    # A pair's weight is covered once the later-ranked endpoint enters.
    if problem.num_pairs:
        pair_entry = np.maximum(
            rank_of[problem.pair_index[:, 0]], rank_of[problem.pair_index[:, 1]]
        )
        order = np.argsort(pair_entry, kind="stable")
        entry_sorted = pair_entry[order]
        weight_sorted = problem.pair_weights[order]
        weight_prefix = np.concatenate([[0.0], np.cumsum(weight_sorted)])
        total_weight = problem.total_pair_weight
    total_weight = problem.total_pair_weight

    size_fractions, cost_fractions = [], []
    for scope in checkpoints:
        size_fractions.append(
            float(size_prefix[scope] / total_size) if total_size > 0 else 0.0
        )
        if problem.num_pairs and total_weight > 0:
            covered = np.searchsorted(entry_sorted, scope - 1, side="right")
            cost_fractions.append(float(weight_prefix[covered] / total_weight))
        else:
            cost_fractions.append(0.0)

    return DominanceCurves(
        checkpoints=tuple(int(c) for c in checkpoints),
        size_fraction=tuple(size_fractions),
        cost_fraction=tuple(cost_fractions),
        ranking=tuple(ranking),
    )
