"""Plain-text reporting helpers used by benchmarks and the CLI."""

from __future__ import annotations

from typing import Iterable, Sequence


def normalize_to(values: Sequence[float], baseline: float) -> list[float]:
    """Each value divided by a baseline (the paper normalizes costs to
    random hash placement).

    Raises:
        ValueError: If the baseline is zero (nothing to normalize to).
    """
    if baseline == 0:
        raise ValueError("cannot normalize to a zero baseline")
    return [v / baseline for v in values]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render an aligned monospace table.

    Floats use ``float_format``; everything else uses ``str``.
    """
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], y_format: str = "{:.4f}"
) -> str:
    """Render one named (x, y) series as compact text."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    points = ", ".join(f"{x}: {y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {points}"
