"""Strategy comparison harness.

Every evaluation in this repository ends the same way: run several
placement strategies on one problem, score each with an
application-specific cost function, and print a normalized table.
``compare_strategies`` is that loop as a reusable function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.analysis.reporting import format_table
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, get_planner

CostFunction = Callable[[Placement], float]
Strategy = Callable[[PlacementProblem], Placement]


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's results on one problem."""

    name: str
    cost: float
    normalized: float
    feasible: bool
    load_imbalance: float


@dataclass(frozen=True)
class ComparisonResult:
    """All strategies' outcomes, normalized to the first entry."""

    outcomes: tuple[StrategyOutcome, ...]
    baseline: str

    def best(self) -> StrategyOutcome:
        """The cheapest strategy."""
        return min(self.outcomes, key=lambda o: o.cost)

    def outcome(self, name: str) -> StrategyOutcome:
        """Look up one strategy's outcome.

        Raises:
            KeyError: For strategies not in the comparison.
        """
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no outcome for strategy {name!r}")

    def render(self) -> str:
        """The comparison as an aligned text table."""
        rows = [
            [o.name, o.cost, o.normalized, str(o.feasible), o.load_imbalance]
            for o in self.outcomes
        ]
        return format_table(
            ["strategy", "cost", f"vs {self.baseline}", "feasible", "load max/mean"],
            rows,
        )


def compare_strategies(
    problem: PlacementProblem,
    strategies: Mapping[str, Strategy] | list[str] | None = None,
    cost: CostFunction | None = None,
    config: PlanConfig | None = None,
) -> ComparisonResult:
    """Run strategies on a problem and normalize their costs.

    Args:
        problem: The CCA instance.
        strategies: Either a name -> callable mapping, a list of
            planner-registry names, or None for the paper's three
            strategies (``hash``, ``greedy``, ``lprr``).  The first
            entry is the normalization baseline.
        cost: Placement scorer; defaults to the model communication
            cost (pass an engine-replay closure for measured bytes).
        config: :class:`~repro.core.strategies.PlanConfig` applied to
            named planners (ignored for callable entries); defaults to
            ``PlanConfig()``.

    Returns:
        A :class:`ComparisonResult` in the strategies' given order.
    """
    if strategies is None:
        strategies = ["hash", "greedy", "lprr"]
    if isinstance(strategies, list):
        plan_config = config or PlanConfig()

        def _as_strategy(name: str) -> Strategy:
            planner = get_planner(name)
            return lambda prob: planner(prob, config=plan_config).placement

        strategies = {name: _as_strategy(name) for name in strategies}
    if not strategies:
        raise ValueError("no strategies to compare")
    score = cost or (lambda placement: placement.communication_cost())

    outcomes = []
    baseline_cost: float | None = None
    baseline_name = next(iter(strategies))
    for name, strategy in strategies.items():
        placement = strategy(problem)
        value = float(score(placement))
        if baseline_cost is None:
            baseline_cost = value
        normalized = value / baseline_cost if baseline_cost else 0.0
        outcomes.append(
            StrategyOutcome(
                name=name,
                cost=value,
                normalized=normalized,
                feasible=placement.is_feasible(),
                load_imbalance=placement.load_imbalance(),
            )
        )
    return ComparisonResult(outcomes=tuple(outcomes), baseline=baseline_name)
