"""Pair-correlation skewness analysis (Figure 2A).

The paper shows the most correlated keyword pair of the Ask.com trace
is 177x more correlated than the 1000th pair.  These helpers extract
the same ranked-probability curve from any correlation mapping.
"""

from __future__ import annotations

from typing import Hashable, Mapping

Pair = tuple[Hashable, Hashable]


def pair_probability_curve(
    correlations: Mapping[Pair, float], top_k: int | None = None
) -> tuple[list[Pair], list[float]]:
    """Pairs and probabilities ranked by probability, descending.

    Args:
        correlations: Pair -> probability mapping (e.g. from
            :func:`repro.core.correlation.cooccurrence_correlations`).
        top_k: Keep only the ``top_k`` most correlated pairs.

    Returns:
        ``(pairs, probabilities)`` in matching rank order; ties broken
        deterministically by pair repr.
    """
    ranked = sorted(correlations.items(), key=lambda item: (-item[1], repr(item[0])))
    if top_k is not None:
        ranked = ranked[:top_k]
    pairs = [pair for pair, _ in ranked]
    probabilities = [float(p) for _, p in ranked]
    return pairs, probabilities


def skew_ratio(probabilities: list[float]) -> float:
    """Ratio of the top probability to the last listed probability.

    This is the paper's headline skewness number (177x between pair #1
    and pair #1000).  Returns ``inf`` when the tail probability is 0
    and ``nan`` for empty input.
    """
    if not probabilities:
        return float("nan")
    head, tail = probabilities[0], probabilities[-1]
    if tail == 0:
        return float("inf")
    return head / tail
