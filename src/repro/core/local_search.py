"""Local-search placement — the task-assignment heuristic family.

The related-work section notes that task-assignment problems "typically
have heuristic solutions that focus on online efficiency".  This module
provides that family's standard representative as a further baseline:
steepest-descent local search over single-object moves and pair swaps,
starting from any placement, under strict capacity feasibility.

It is stronger than the greedy pass (it can undo early mistakes) but
has no optimality guarantee; the ablation benches use it to triangulate
where LPRR's advantage comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import greedy_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


def local_search_placement(
    problem: PlacementProblem,
    start: Placement | None = None,
    max_passes: int = 20,
    allow_swaps: bool = True,
    rng: np.random.Generator | int | None = 0,
) -> Placement:
    """Improve a placement by moves and swaps until a local optimum.

    Each pass visits objects in random order; for each object the best
    capacity-feasible relocation (and optionally the best swap with an
    object on another node) is applied when it strictly lowers the
    cost.  Terminates at a local optimum or after ``max_passes``.

    Args:
        problem: The CCA instance (capacities enforced strictly for
            moves; an infeasible start keeps its overloads unless moves
            fix them).
        start: Starting placement; defaults to the greedy heuristic.
        max_passes: Upper bound on improvement sweeps.
        allow_swaps: Also consider exchanging two objects across nodes
            (escapes capacity-locked local optima that moves cannot).
        rng: Seed for the visit order.

    Returns:
        A placement at least as cheap as the start.
    """
    if max_passes < 0:
        raise ValueError("max_passes must be nonnegative")
    rng = np.random.default_rng(rng)
    if start is None:
        start = greedy_placement(problem)

    t, n = problem.num_objects, problem.num_nodes
    assignment = start.assignment.copy()
    loads = np.bincount(assignment, weights=problem.sizes, minlength=n).astype(float)
    caps = problem.capacities

    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(t)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    def node_weights(obj: int) -> np.ndarray:
        """Pair weight object ``obj`` shares with each node (current)."""
        weights = np.zeros(n)
        for neighbor, weight in adjacency[obj]:
            weights[assignment[neighbor]] += weight
        return weights

    def move_gain(obj: int, dst: int, weights: np.ndarray) -> float:
        """Cost reduction of relocating ``obj`` to ``dst``."""
        src = assignment[obj]
        return weights[dst] - (weights[src] if dst != src else weights[src])

    for _ in range(max_passes):
        improved = False
        for obj in rng.permutation(t):
            obj = int(obj)
            src = int(assignment[obj])
            size = problem.sizes[obj]
            weights = node_weights(obj)
            # Best strict-capacity relocation.
            best_dst, best_gain = -1, 1e-12
            for dst in range(n):
                if dst == src or loads[dst] + size > caps[dst] + 1e-9:
                    continue
                gain = weights[dst] - weights[src]
                if gain > best_gain:
                    best_dst, best_gain = dst, gain
            if best_dst >= 0:
                loads[src] -= size
                loads[best_dst] += size
                assignment[obj] = best_dst
                improved = True
                continue

            if not allow_swaps:
                continue
            # Best swap with an object elsewhere (sizes exchange).
            best_partner, best_gain = -1, 1e-12
            for partner in _swap_candidates(adjacency, assignment, obj):
                partner_src = int(assignment[partner])
                if partner_src == src:
                    continue
                partner_size = problem.sizes[partner]
                if loads[src] - size + partner_size > caps[src] + 1e-9:
                    continue
                if loads[partner_src] - partner_size + size > caps[partner_src] + 1e-9:
                    continue
                gain = _swap_gain(
                    problem, adjacency, assignment, obj, partner
                )
                if gain > best_gain:
                    best_partner, best_gain = partner, gain
            if best_partner >= 0:
                partner_src = int(assignment[best_partner])
                partner_size = problem.sizes[best_partner]
                loads[src] += partner_size - size
                loads[partner_src] += size - partner_size
                assignment[obj] = partner_src
                assignment[best_partner] = src
                improved = True
        if not improved:
            break
    return Placement(problem, assignment)


def _swap_candidates(adjacency, assignment, obj):
    """Objects worth considering as swap partners.

    To reduce ``obj``'s cost, it must land on a node where one of its
    correlated neighbours lives — so useful partners are exactly the
    objects currently hosted on a neighbour's node (other than obj's
    own).  Swapping with anyone else can only help via the partner's
    side, which that object's own visit will discover.
    """
    here = assignment[obj]
    target_nodes = {
        int(assignment[neighbor])
        for neighbor, _ in adjacency[obj]
        if assignment[neighbor] != here
    }
    if not target_nodes:
        return []
    mask = np.isin(assignment, list(target_nodes))
    candidates = np.where(mask)[0]
    return [int(c) for c in candidates if int(c) != int(obj)]


def _swap_gain(problem, adjacency, assignment, a, b):
    """Exact cost change of swapping objects ``a`` and ``b``."""
    before = _local_cost(adjacency, assignment, a) + _local_cost(
        adjacency, assignment, b
    )
    # Double-counted if a-b are themselves correlated; compute delta by
    # trial assignment instead of algebra for correctness.
    assignment[a], assignment[b] = assignment[b], assignment[a]
    after = _local_cost(adjacency, assignment, a) + _local_cost(
        adjacency, assignment, b
    )
    assignment[a], assignment[b] = assignment[b], assignment[a]
    return before - after


def _local_cost(adjacency, assignment, obj):
    """Split pair weight incident to ``obj`` under ``assignment``."""
    cost = 0.0
    here = assignment[obj]
    for neighbor, weight in adjacency[obj]:
        if assignment[neighbor] != here:
            cost += weight
    return cost
