"""The Planner API: configurable planners returning rich results.

This module is the registry of placement planners and the home of the
unified planning surface:

* :class:`PlanConfig` — every knob a planning run can carry (scope,
  seed, rounding trials, LP backend, parallel ``jobs``, plan-cache
  location), in one frozen dataclass.
* :class:`PlanResult` — what a planning run returns: the placement plus
  cost, wall-clock, diagnostics, and (for LPRR) the full
  :class:`~repro.core.lprr.LPRRResult`.
* :class:`Planner` — the protocol every planner satisfies:
  ``planner(problem, *, config) -> PlanResult``.

Besides the paper's three strategies (random hashing, greedy, LPRR),
two classic correlation-oblivious controls are registered — round-robin
and best-fit-decreasing — so experiments can separate "correlation
awareness" from mere "load balancing".

The pre-1.1 surface — bare ``PlacementStrategy`` callables mapping a
problem straight to a :class:`~repro.core.placement.Placement`, looked
up with :func:`get_strategy` — still works but is deprecated: the thin
shims here emit :class:`DeprecationWarning` and will be removed two
minor releases after 1.1 (see ``docs/API.md`` for the policy).  New
code should use :func:`get_planner` / :func:`plan`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Protocol

import numpy as np

from repro import obs
from repro.core.greedy import greedy_placement
from repro.core.hashing import random_hash_placement
from repro.core.partial import scoped_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError

if TYPE_CHECKING:  # lazy at runtime: repro.parallel imports repro.core
    from repro.parallel.cache import PlanCache


# ----------------------------------------------------------------------
# Configuration and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanScope:
    """What part of the problem a planner optimizes exactly.

    Three kinds, built with the classmethod constructors:

    * ``PlanScope.exact(top)`` — the pre-1.6 integer scope: optimize the
      ``top`` most important objects (``None`` = all of them).  A bare
      ``int`` or ``None`` in :attr:`PlanConfig.scope` normalizes to
      this kind, so existing configs keep byte-identical behavior.
    * ``PlanScope.heavy_pairs(top)`` — optimize the objects that appear
      in some correlated pair, optionally capped at ``top``.  This is
      the online controller's heavy-hitter scoping, now expressible in
      the one config shape instead of an ad-hoc planner kwarg.
    * ``PlanScope.pg(groups, important)`` — placement-group indirection
      (``docs/SCALE.md``): keep the top-``important`` objects exact,
      hash the tail into ``groups`` placement groups, and plan at PG
      granularity.  Routes planning through the ``"lprr:pg"`` planner.

    Attributes:
        kind: ``"exact"``, ``"heavy"``, or ``"pg"``.
        top: Object-count cap for ``exact``/``heavy`` scopes.
        groups: Placement-group count (``pg`` only).
        important: Exact-object count (``pg`` only).
    """

    kind: str = "exact"
    top: int | None = None
    groups: int = 0
    important: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "heavy", "pg"):
            raise ValueError(f"unknown scope kind {self.kind!r}")
        if self.top is not None and self.top < 0:
            raise ValueError("scope top must be nonnegative")
        if self.kind == "pg":
            if self.groups < 1:
                raise ValueError("pg scope needs at least one group")
            if self.important < 0:
                raise ValueError("important count must be nonnegative")
        elif self.groups or self.important:
            raise ValueError("groups/important apply only to pg scopes")

    @classmethod
    def exact(cls, top: int | None = None) -> "PlanScope":
        """Optimize the ``top`` most important objects (None = all)."""
        return cls(kind="exact", top=None if top is None else int(top))

    @classmethod
    def heavy_pairs(cls, top: int | None = None) -> "PlanScope":
        """Optimize the objects appearing in pairs, capped at ``top``."""
        return cls(kind="heavy", top=None if top is None else int(top))

    @classmethod
    def pg(cls, groups: int, important: int = 0) -> "PlanScope":
        """Plan through ``groups`` placement groups plus ``important``
        exact objects (see ``docs/SCALE.md``)."""
        return cls(kind="pg", groups=int(groups), important=int(important))

    def limit(self, problem: PlacementProblem) -> int | None:
        """The resolved integer object scope for this problem.

        ``None`` means "no per-object cap" — all objects for ``exact``
        scopes without a ``top``, and always for ``pg`` scopes (the pg
        planner scopes by grouping, not by truncation).
        """
        if self.kind == "exact":
            return self.top
        if self.kind == "heavy":
            paired = (
                int(np.unique(problem.pair_index).size)
                if problem.num_pairs
                else 0
            )
            return paired if self.top is None else min(paired, self.top)
        return None

    def signature(self) -> str:
        """Canonical JSON string for cache keys."""
        import json

        return json.dumps(
            {
                "kind": self.kind,
                "top": self.top,
                "groups": self.groups,
                "important": self.important,
            },
            sort_keys=True,
        )


@dataclass(frozen=True)
class PlanConfig:
    """Everything a planning run can be told, in one value.

    The defaults reproduce the paper's evaluation setup (conservative
    2x-average capacities, 10 rounding trials, 5% capacity tolerance)
    on the legacy serial engine.  Planners ignore knobs they have no
    use for — ``hash`` reads only ``hash_salt``, the classic controls
    read nothing — so one config can drive a whole strategy comparison.

    Attributes:
        scope: What to optimize exactly: an ``int`` (the top-``scope``
            most important objects, Section 3.1), ``None`` (all of
            them), or a :class:`PlanScope` — including
            ``PlanScope.pg(K, M)`` for placement-group planning.
            Integers and ``None`` normalize to ``PlanScope.exact``, so
            pre-1.6 configs behave identically.
        seed: Root seed for every stochastic choice the planner makes.
        rounding_trials: Best-of-``k`` randomized-rounding repetitions.
        capacity_factor: Conservative per-node capacity as a multiple
            of the scoped objects' average per-node load (the paper
            uses 2.0); ``None`` keeps the problem's own capacities.
        capacity_tolerance: Relative slack when judging feasibility.
        backend: LP backend (``"auto"``, ``"highs"``, ``"highs-ipm"``,
            or ``"simplex"``).
        lp_time_limit: Wall-clock budget in seconds handed to the LP
            backend; an over-budget solve raises
            :class:`~repro.exceptions.SolverError` instead of hanging.
            ``None`` means unlimited.
        lp_iteration_limit: Iteration budget for the LP backend, with
            the same over-budget behavior.  ``None`` means the
            backend's default.
        decompose: Solve one LP per correlation component.
        hash_salt: Salt for hash placements (baseline and out-of-scope).
        repair: Post-repair capacity-violating rounded placements.
        jobs: Parallelism.  ``None`` selects the legacy serial engine
            (byte-identical to pre-1.1 output for the same seed); an
            integer ``>= 1`` selects the deterministic parallel engine,
            whose placements are identical for every ``jobs`` value
            (``1`` = inline serial fallback, ``>1`` = process pool,
            negative = one worker per CPU).
        cache_dir: Directory for the content-addressed plan cache;
            ``None`` disables caching.
        use_cache: Master switch; ``False`` ignores ``cache_dir``.
        replicas: Copies per object for replication-aware planners
            (``lprr:rep`` and friends); ``1`` keeps the single-copy
            behavior everywhere, including the resilient fallback
            chain.
        topology: Failure-domain membership
            (:class:`~repro.cluster.topology.Topology`) the replica
            spread constraints are enforced against; ``None`` means the
            flat every-node-its-own-domain model.  Replicated plans
            bypass the plan cache (the topology is not part of the
            cache signature).
        warm_start: A :class:`~repro.core.lp.WarmStart` seeding the
            first-order backend's fractional iterate; consumed only by
            ``lprr:fo`` (and ``backend="fo"``), ignored everywhere
            else.  Warm-started plans bypass the plan and LP caches
            (the warm start is not part of the cache signature).
    """

    scope: int | PlanScope | None = None
    seed: int = 0
    rounding_trials: int = 10
    capacity_factor: float | None = 2.0
    capacity_tolerance: float = 0.05
    backend: str = "auto"
    lp_time_limit: float | None = None
    lp_iteration_limit: int | None = None
    decompose: bool = False
    hash_salt: str = ""
    repair: bool = True
    jobs: int | None = None
    cache_dir: str | Path | None = None
    use_cache: bool = True
    replicas: int = 1
    topology: Any | None = None
    warm_start: Any | None = None

    def with_options(self, **changes: Any) -> "PlanConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def scope_spec(self) -> PlanScope:
        """The scope as a :class:`PlanScope` (ints/None normalize to
        ``exact``)."""
        if isinstance(self.scope, PlanScope):
            return self.scope
        return PlanScope(
            kind="exact", top=None if self.scope is None else int(self.scope)
        )

    def scope_limit(self, problem: PlacementProblem) -> int | None:
        """Resolved integer object scope for ``problem`` (see
        :meth:`PlanScope.limit`)."""
        return self.scope_spec.limit(problem)

    def make_cache(self) -> "PlanCache | None":
        """The :class:`PlanCache` this config asks for, or ``None``."""
        if self.cache_dir is None or not self.use_cache:
            return None
        from repro.parallel.cache import PlanCache

        return PlanCache(self.cache_dir)


@dataclass(frozen=True)
class PlanResult:
    """What a planning run produced, beyond the bare placement.

    Attributes:
        placement: The total placement over the full problem.
        cost: Its communication cost (objective (1)).
        planner: Registry name of the planner that produced it.
        elapsed_seconds: Wall-clock of the planning run.
        diagnostics: Planner-specific facts worth reporting — e.g. for
            LPRR: ``lp_lower_bound``, ``repaired``, ``cache``
            (``"hit"``/``"miss"``/``"off"``), ``jobs``.
        details: The planner's full native result when it has one
            (:class:`~repro.core.lprr.LPRRResult` for ``lprr``),
            else ``None``.
    """

    placement: Placement
    cost: float
    planner: str
    elapsed_seconds: float
    diagnostics: dict[str, Any] = field(default_factory=dict)
    details: Any | None = None

    @property
    def fractional(self) -> Any | None:
        """The fractional LP solution when the planner carried one
        (``lprr``/``lprr:fo`` exact-scope runs), else ``None``.  Used
        by :class:`~repro.online.controller.OnlinePlanner` to build
        the next replan's warm start."""
        return getattr(self.details, "fractional", None)

    def to_dict(self) -> dict:
        """JSON-ready form sharing the serialization-module schema."""
        from repro.core.serialization import PLAN_RESULT_SCHEMA

        doc = {
            "schema": PLAN_RESULT_SCHEMA,
            "planner": self.planner,
            "cost": float(self.cost),
            "elapsed_seconds": float(self.elapsed_seconds),
            "diagnostics": dict(self.diagnostics),
            "objects": [
                str(obj) for obj in self.placement.problem.object_ids
            ],
            "assignment": [int(k) for k in self.placement.assignment],
        }
        if self.details is not None and hasattr(self.details, "to_dict"):
            doc["details"] = self.details.to_dict()
        return doc


class Planner(Protocol):
    """Anything that plans a placement under a :class:`PlanConfig`."""

    def __call__(
        self, problem: PlacementProblem, *, config: PlanConfig
    ) -> PlanResult: ...


class PlacementStrategy(Protocol):
    """Deprecated: the pre-1.1 bare-callable strategy surface."""

    def __call__(self, problem: PlacementProblem) -> Placement: ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_PLANNERS: dict[str, Planner] = {}
_LEGACY: dict[str, PlacementStrategy] = {}


def register_planner(name: str) -> Callable[[Planner], Planner]:
    """Decorator registering a planner under ``name``."""

    def decorator(func: Planner) -> Planner:
        if name in _PLANNERS:
            raise ValueError(f"planner {name!r} already registered")
        _PLANNERS[name] = func
        return func

    return decorator


def get_planner(name: str) -> Planner:
    """Look up a registered planner by name."""
    try:
        return _PLANNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown planner {name!r}; available: {sorted(_PLANNERS)}"
        ) from None


def available_planners() -> list[str]:
    """Names of all registered planners."""
    return sorted(_PLANNERS)


def plan(
    problem: PlacementProblem,
    planner: str = "lprr",
    config: PlanConfig | None = None,
) -> PlanResult:
    """One-call convenience: plan ``problem`` with a named planner."""
    return get_planner(planner)(problem, config=config or PlanConfig())


def _finish(
    name: str,
    placement: Placement,
    elapsed: float,
    diagnostics: dict[str, Any] | None = None,
    details: Any | None = None,
) -> PlanResult:
    cost = placement.communication_cost()
    feasible = placement.is_feasible()
    obs.counter("planner.plans").inc()
    obs.histogram("planner.plan_seconds").observe(elapsed)
    # Journaled without ``elapsed`` — wall-clock would break the
    # byte-reproducibility the journal guarantees (see obs/journal.py).
    obs.record(
        "plan.result", planner=name, cost=round(cost, 9), feasible=feasible
    )
    return PlanResult(
        placement=placement,
        cost=cost,
        planner=name,
        elapsed_seconds=elapsed,
        diagnostics={"feasible": feasible, **(diagnostics or {})},
        details=details,
    )


def _simple_planner(name: str, place: Callable[[PlacementProblem, PlanConfig], Placement]):
    """Register a planner around a config-aware placement function."""

    @register_planner(name)
    def planner(
        problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
    ) -> PlanResult:
        with obs.timed("plan", planner=name) as span:
            placement = place(problem, config)
        return _finish(name, placement, span.duration)

    return planner


# ----------------------------------------------------------------------
# Built-in planners
# ----------------------------------------------------------------------
_simple_planner(
    "hash", lambda problem, config: random_hash_placement(problem, config.hash_salt)
)

_simple_planner(
    "greedy",
    lambda problem, config: scoped_placement(
        problem,
        config.scope_limit(problem),
        greedy_placement,
        capacity_factor=config.capacity_factor,
        hash_salt=config.hash_salt,
    ),
)


def _round_robin(problem: PlacementProblem) -> Placement:
    assignment = np.arange(problem.num_objects, dtype=np.int64) % problem.num_nodes
    return Placement(problem, assignment)


_simple_planner("round_robin", lambda problem, config: _round_robin(problem))


def best_fit_decreasing_placement(
    problem: PlacementProblem, strict_capacity: bool = False
) -> Placement:
    """Classic bin-packing heuristic: biggest objects first, best fit.

    Args:
        problem: The CCA instance.
        strict_capacity: When True, raise
            :class:`InfeasibleProblemError` instead of overflowing the
            least-loaded node.
    """
    assignment = np.empty(problem.num_objects, dtype=np.int64)
    free = problem.capacities.astype(float).copy()
    for i in np.argsort(-problem.sizes, kind="stable"):
        fits = np.where(free >= problem.sizes[i])[0]
        if fits.size:
            k = int(fits[np.argmin(free[fits])])
        elif strict_capacity:
            raise InfeasibleProblemError(
                f"best-fit cannot place object {problem.object_ids[i]!r}"
            )
        else:
            k = int(np.argmax(free))
        assignment[i] = k
        free[k] -= problem.sizes[i]
    return Placement(problem, assignment)


_simple_planner(
    "best_fit_decreasing",
    lambda problem, config: best_fit_decreasing_placement(problem),
)


def _spectral(problem: PlacementProblem, config: PlanConfig) -> Placement:
    # Imported lazily: spectral pulls in dense linear algebra.
    from repro.core.spectral import spectral_placement

    return spectral_placement(problem)


_simple_planner("spectral", _spectral)


def _local_search(problem: PlacementProblem, config: PlanConfig) -> Placement:
    # Imported lazily: local_search composes greedy as its start.
    from repro.core.local_search import local_search_placement

    return local_search_placement(problem, rng=config.seed)


_simple_planner("local_search", _local_search)


def _stream_greedy(problem: PlacementProblem, config: PlanConfig) -> Placement:
    # Imported lazily: the streaming tier is only needed when serving.
    from repro.core.streampart import streaming_greedy_placement

    return scoped_placement(
        problem,
        config.scope_limit(problem),
        streaming_greedy_placement,
        capacity_factor=config.capacity_factor,
        hash_salt=config.hash_salt,
    )


_simple_planner("stream:greedy", _stream_greedy)


@register_planner("lprr")
def _lprr_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    # Imported lazily to avoid a cycle (lprr composes other strategies).
    from repro.core.lprr import LPRRPlanner

    if config.scope_spec.kind == "pg":
        # Placement-group scopes route to the pg planner so one config
        # shape drives both granularities (see docs/SCALE.md).
        from repro.pg.planner import plan_with_groups

        return plan_with_groups(problem, config=config)

    cache = config.make_cache()
    planner = LPRRPlanner(
        scope=config.scope_limit(problem),
        capacity_factor=config.capacity_factor,
        rounding_trials=config.rounding_trials,
        capacity_tolerance=config.capacity_tolerance,
        seed=config.seed,
        backend=config.backend,
        warm_start=config.warm_start if config.backend == "fo" else None,
        lp_time_limit=config.lp_time_limit,
        lp_iteration_limit=config.lp_iteration_limit,
        hash_salt=config.hash_salt,
        repair=config.repair,
        decompose=config.decompose,
        jobs=config.jobs,
        cache=cache,
    )
    with obs.timed("plan", planner="lprr") as span:
        result = planner.plan(problem)
    cache_state = "off" if cache is None else ("hit" if result.from_cache else "miss")
    diagnostics = {
        "lp_lower_bound": float(result.lp_lower_bound),
        "scope": len(result.scope_objects),
        "rounding_trials": result.rounding.trials,
        "repaired": result.repaired,
        "jobs": config.jobs,
        "cache": cache_state,
    }
    if config.backend == "fo":
        solver_info = planner.last_solver_info
        diagnostics["warm_start"] = solver_info.get("warm_start", "off")
        diagnostics["warm_hits"] = solver_info.get("warm_hits", 0)
        diagnostics["fo_iterations"] = solver_info.get("iterations", 0)
    return _finish("lprr", result.placement, span.duration, diagnostics, result)


@register_planner("lprr:pg")
def _lprr_pg_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    # Imported lazily to avoid a cycle (the pg layer plans through this
    # registry's LPRR planner).
    from repro.pg.planner import plan_with_groups

    return plan_with_groups(problem, config=config)


@register_planner("lprr:fo")
def _lprr_fo_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """LPRR on the first-order backend: mean-field annealing over the
    fractional placement, argmax rounding, greedy capacity repair.

    Trades the LP's certified optimum for 10-100x more exact-scope
    headroom, and accepts ``config.warm_start`` so consecutive online
    replans skip the annealing phase entirely.
    """
    # Imported lazily to avoid a cycle (lprr composes other strategies).
    from repro.core.lprr import LPRRPlanner

    cache = config.make_cache()
    planner = LPRRPlanner(
        scope=config.scope_limit(problem),
        capacity_factor=config.capacity_factor,
        rounding_trials=1,
        capacity_tolerance=config.capacity_tolerance,
        seed=config.seed,
        backend="fo",
        rounding="argmax",
        warm_start=config.warm_start,
        lp_time_limit=config.lp_time_limit,
        lp_iteration_limit=config.lp_iteration_limit,
        hash_salt=config.hash_salt,
        repair=config.repair,
        decompose=config.decompose,
        jobs=config.jobs,
        cache=cache,
    )
    with obs.timed("plan", planner="lprr:fo") as span:
        result = planner.plan(problem)
    cache_state = "off" if cache is None else ("hit" if result.from_cache else "miss")
    solver_info = planner.last_solver_info
    diagnostics = {
        "lp_lower_bound": float(result.lp_lower_bound),
        "scope": len(result.scope_objects),
        "repaired": result.repaired,
        "jobs": config.jobs,
        "cache": cache_state,
        "warm_start": solver_info.get("warm_start", "off"),
        "warm_hits": solver_info.get("warm_hits", 0),
        "fo_iterations": solver_info.get("iterations", 0),
        "repair_moves": solver_info.get("repair_moves", 0),
    }
    return _finish("lprr:fo", result.placement, span.duration, diagnostics, result)


def _exact_cpsat_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """Exact placement via CP-SAT (requires the ``repro[exact]`` extra).

    Solves the full problem to proven optimality — no scoping, no
    rounding — so it only suits small instances (the gap harness's
    reference).  Registered only when ``ortools`` imports (see
    :func:`_register_cpsat`); calling
    :func:`~repro.lpsolve.cpsat_backend.solve_placement_cpsat` without
    it raises :class:`~repro.exceptions.SolverError` with an install
    hint.
    """
    from repro.lpsolve.cpsat_backend import solve_placement_cpsat

    with obs.timed("plan", planner="exact:cpsat") as span:
        solution = solve_placement_cpsat(
            problem,
            time_limit=config.lp_time_limit,
            seed=config.seed,
        )
    diagnostics = {
        "status": solution.status,
        "objective_bound": float(solution.objective_bound),
        "optimal": solution.optimal,
    }
    return _finish(
        "exact:cpsat", solution.placement, span.duration, diagnostics, solution
    )


def _register_cpsat() -> None:
    """Register ``exact:cpsat`` only when ortools is importable.

    The guard keeps ``available_planners()`` honest: every listed
    planner can actually plan.  Without the ``repro[exact]`` extra the
    name simply does not exist (an explicit request then fails with
    the registry's unknown-planner error, and the backend module's
    install hint is one import away).
    """
    from repro.lpsolve.cpsat_backend import HAS_ORTOOLS

    if HAS_ORTOOLS:
        register_planner("exact:cpsat")(_exact_cpsat_planner)


_register_cpsat()


def _finish_replicated(
    name: str,
    replicated,
    elapsed: float,
    diagnostics: dict[str, Any] | None = None,
) -> PlanResult:
    """Like :func:`_finish` but for replica-producing planners.

    The :class:`PlanResult`'s placement is the primary copy (so every
    single-copy consumer keeps working) while ``details`` carries the
    full :class:`~repro.core.replication.ReplicatedPlacement` and
    ``cost`` is the replicated any-copy cost.
    """
    cost = replicated.communication_cost()
    feasible = replicated.is_feasible()
    obs.counter("planner.plans").inc()
    obs.histogram("planner.plan_seconds").observe(elapsed)
    obs.record(
        "plan.result", planner=name, cost=round(cost, 9), feasible=feasible
    )
    obs.record(
        "rep.plan",
        planner=name,
        replicas=replicated.replication_factor,
        spread=replicated.spread,
        cost=round(cost, 9),
        feasible=feasible,
    )
    return PlanResult(
        placement=replicated.primary(),
        cost=cost,
        planner=name,
        elapsed_seconds=elapsed,
        diagnostics={
            "feasible": feasible,
            "replicas": replicated.replication_factor,
            "spread": replicated.spread,
            **(diagnostics or {}),
        },
        details=replicated,
    )


def _rep_topology(problem: PlacementProblem, config: PlanConfig):
    from repro.cluster.topology import Topology

    topology = config.topology
    if topology is None:
        return Topology.flat(problem.num_nodes)
    if not isinstance(topology, Topology):
        raise TypeError("config.topology must be a cluster.Topology")
    return topology


@register_planner("lprr:rep")
def _lprr_rep_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """LPRR primaries + spread-constrained correlation-aware replicas.

    The first copy of every object comes from the full LPRR pipeline;
    each further copy is placed in a fresh failure domain, preferring
    nodes where the object's correlated partners already sit — so every
    pair stays co-resident on at least one common node whenever the
    spread constraint allows it.  Replicated plans bypass the plan
    cache (the topology is not part of the cache signature).
    """
    # Imported lazily to avoid a cycle (replication composes greedy).
    from repro.core.replication import spread_replicated_placement

    topology = _rep_topology(problem, config)
    replicas = max(1, int(config.replicas))
    inner_config = config.with_options(replicas=1, topology=None, use_cache=False)
    with obs.timed("plan", planner="lprr:rep") as span:
        inner = plan(problem, "lprr", inner_config)
        replicated = spread_replicated_placement(
            problem,
            topology,
            replicas=replicas,
            primary_strategy=lambda p: inner.placement,
        )
    diagnostics = {
        "primary_planner": "lprr",
        "primary_cost": float(inner.cost),
        "lp_lower_bound": inner.diagnostics.get("lp_lower_bound"),
        "zones": topology.num_zones,
        "racks": topology.num_racks,
    }
    return _finish_replicated("lprr:rep", replicated, span.duration, diagnostics)


@register_planner("rep:greedy")
def _rep_greedy_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """Spread-greedy fallback: greedy primaries, spread-aware replicas."""
    from repro.core.replication import spread_replicated_placement

    topology = _rep_topology(problem, config)
    replicas = max(1, int(config.replicas))
    with obs.timed("plan", planner="rep:greedy") as span:
        replicated = spread_replicated_placement(
            problem,
            topology,
            replicas=replicas,
            primary_strategy=lambda p: scoped_placement(
                p,
                config.scope_limit(p),
                greedy_placement,
                capacity_factor=config.capacity_factor,
                hash_salt=config.hash_salt,
            ),
        )
    return _finish_replicated("rep:greedy", replicated, span.duration)


@register_planner("rep:hash")
def _rep_hash_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """Domain-aware replicated hash: the correlation-oblivious baseline."""
    from repro.core.replication import replicate_hash

    topology = _rep_topology(problem, config)
    replicas = max(1, int(config.replicas))
    with obs.timed("plan", planner="rep:hash") as span:
        replicated = replicate_hash(
            problem, topology, replicas=replicas, salt=config.hash_salt
        )
    return _finish_replicated("rep:hash", replicated, span.duration)


@register_planner("resilient")
def _resilient_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    # Imported lazily to avoid a cycle (healing plans via this registry).
    from repro.resilience.healing import plan_with_fallbacks

    return plan_with_fallbacks(problem, config=config)


@register_planner("online")
def _online_planner(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    # Imported lazily to avoid a cycle (the controller plans via this
    # registry's machinery).
    from repro.online.controller import heavy_hitter_plan

    return heavy_hitter_plan(problem, config=config)


# ----------------------------------------------------------------------
# Deprecated pre-1.1 shims
# ----------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see docs/API.md for the "
        "deprecation policy)",
        DeprecationWarning,
        stacklevel=3,
    )


def register_strategy(name: str) -> Callable[[PlacementStrategy], PlacementStrategy]:
    """Deprecated: register an old-style ``problem -> Placement`` callable.

    The callable is also wrapped into a :class:`Planner` (its config is
    ignored) so it shows up in :func:`available_planners`.
    """
    _deprecated("register_strategy", "register_planner")

    def decorator(func: PlacementStrategy) -> PlacementStrategy:
        if name in _LEGACY or name in _PLANNERS:
            raise ValueError(f"strategy {name!r} already registered")
        _LEGACY[name] = func

        @register_planner(name)
        def adapter(
            problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
        ) -> PlanResult:
            with obs.timed("plan", planner=name) as span:
                placement = func(problem)
            return _finish(name, placement, span.duration)

        return func

    return decorator


def get_strategy(name: str) -> PlacementStrategy:
    """Deprecated: look up a bare ``problem -> Placement`` callable.

    Returns the exact pre-1.1 callable for the built-in names, so
    legacy callers keep byte-identical behavior.
    """
    _deprecated("get_strategy", "get_planner")
    try:
        return _LEGACY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(_LEGACY)}"
        ) from None


def available_strategies() -> list[str]:
    """Deprecated: names of all old-style strategies."""
    _deprecated("available_strategies", "available_planners")
    return sorted(_LEGACY)


def round_robin_placement(problem: PlacementProblem) -> Placement:
    """Assign objects cyclically: object ``i`` to node ``i mod n``."""
    return _round_robin(problem)


def _legacy_lprr(problem: PlacementProblem) -> Placement:
    from repro.core.lprr import LPRRPlanner

    return LPRRPlanner(seed=0).plan(problem).placement


def _legacy_local_search(problem: PlacementProblem) -> Placement:
    from repro.core.local_search import local_search_placement

    return local_search_placement(problem, rng=0)


def _legacy_spectral(problem: PlacementProblem) -> Placement:
    from repro.core.spectral import spectral_placement

    return spectral_placement(problem)


_LEGACY.update(
    {
        "hash": random_hash_placement,
        "greedy": greedy_placement,
        "round_robin": round_robin_placement,
        "best_fit_decreasing": best_fit_decreasing_placement,
        "spectral": _legacy_spectral,
        "local_search": _legacy_local_search,
        "lprr": _legacy_lprr,
    }
)
