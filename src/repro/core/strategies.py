"""Placement-strategy registry and correlation-oblivious controls.

Besides the paper's three strategies (random hashing, greedy,
LPRR), two classic correlation-oblivious controls are provided —
round-robin and best-fit-decreasing — so experiments can separate
"correlation awareness" from mere "load balancing".
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.greedy import greedy_placement
from repro.core.hashing import random_hash_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError


class PlacementStrategy(Protocol):
    """Anything that maps a problem to a total placement."""

    def __call__(self, problem: PlacementProblem) -> Placement: ...


_REGISTRY: dict[str, PlacementStrategy] = {}


def register_strategy(name: str) -> Callable[[PlacementStrategy], PlacementStrategy]:
    """Decorator registering a strategy under ``name``."""

    def decorator(func: PlacementStrategy) -> PlacementStrategy:
        if name in _REGISTRY:
            raise ValueError(f"strategy {name!r} already registered")
        _REGISTRY[name] = func
        return func

    return decorator


def get_strategy(name: str) -> PlacementStrategy:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_strategies() -> list[str]:
    """Names of all registered strategies."""
    return sorted(_REGISTRY)


@register_strategy("hash")
def _hash(problem: PlacementProblem) -> Placement:
    return random_hash_placement(problem)


@register_strategy("greedy")
def _greedy(problem: PlacementProblem) -> Placement:
    return greedy_placement(problem)


@register_strategy("round_robin")
def round_robin_placement(problem: PlacementProblem) -> Placement:
    """Assign objects cyclically: object ``i`` to node ``i mod n``."""
    assignment = np.arange(problem.num_objects, dtype=np.int64) % problem.num_nodes
    return Placement(problem, assignment)


@register_strategy("best_fit_decreasing")
def best_fit_decreasing_placement(
    problem: PlacementProblem, strict_capacity: bool = False
) -> Placement:
    """Classic bin-packing heuristic: biggest objects first, best fit.

    Args:
        problem: The CCA instance.
        strict_capacity: When True, raise
            :class:`InfeasibleProblemError` instead of overflowing the
            least-loaded node.
    """
    assignment = np.empty(problem.num_objects, dtype=np.int64)
    free = problem.capacities.astype(float).copy()
    for i in np.argsort(-problem.sizes, kind="stable"):
        fits = np.where(free >= problem.sizes[i])[0]
        if fits.size:
            k = int(fits[np.argmin(free[fits])])
        elif strict_capacity:
            raise InfeasibleProblemError(
                f"best-fit cannot place object {problem.object_ids[i]!r}"
            )
        else:
            k = int(np.argmax(free))
        assignment[i] = k
        free[k] -= problem.sizes[i]
    return Placement(problem, assignment)


@register_strategy("spectral")
def _spectral(problem: PlacementProblem) -> Placement:
    # Imported lazily: spectral pulls in dense linear algebra.
    from repro.core.spectral import spectral_placement

    return spectral_placement(problem)


@register_strategy("local_search")
def _local_search(problem: PlacementProblem) -> Placement:
    # Imported lazily: local_search composes greedy as its start.
    from repro.core.local_search import local_search_placement

    return local_search_placement(problem, rng=0)


@register_strategy("lprr")
def _lprr(problem: PlacementProblem) -> Placement:
    # Imported lazily to avoid a cycle (lprr composes other strategies).
    from repro.core.lprr import LPRRPlanner

    return LPRRPlanner(seed=0).plan(problem).placement
