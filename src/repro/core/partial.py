"""Generic important-object partial optimization (Section 3.1).

:class:`~repro.core.lprr.LPRRPlanner` hard-wires this pattern for the
LP pipeline; :func:`scoped_placement` exposes it for *any* inner
strategy so experiments can compare like with like — e.g. the paper's
Figure 6 runs both LPRR and the greedy heuristic at each optimization
scope, hashing all out-of-scope keywords.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.hashing import hash_node
from repro.core.importance import top_important
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


def scoped_placement(
    problem: PlacementProblem,
    scope: int | None,
    place_subproblem: Callable[[PlacementProblem], Placement],
    capacity_factor: float | None = 2.0,
    hash_salt: str = "",
) -> Placement:
    """Optimize the top-``scope`` objects with a strategy, hash the rest.

    Args:
        problem: The full CCA instance.
        scope: Number of most-important objects the inner strategy may
            place; ``None`` means all of them.
        place_subproblem: Strategy invoked on the scoped subproblem
            (its node set equals the full problem's).
        capacity_factor: Conservative per-node capacity for the
            subproblem, as a multiple of the scoped objects' average
            per-node load; ``None`` keeps the problem's capacities.
        hash_salt: Salt for the out-of-scope hash placement.

    Returns:
        A total placement over the full problem.
    """
    if scope is not None and scope < 0:
        raise ValueError("scope must be nonnegative (or None)")
    scope = problem.num_objects if scope is None else min(scope, problem.num_objects)
    scoped_ids = top_important(problem, scope)
    scoped_set = set(scoped_ids)

    assignment = np.empty(problem.num_objects, dtype=np.int64)
    for i, obj in enumerate(problem.object_ids):
        if obj not in scoped_set:
            assignment[i] = hash_node(obj, problem.num_nodes, hash_salt)

    if scoped_ids:
        if capacity_factor is None:
            capacities = problem.capacities.copy()
        else:
            scoped_size = float(sum(problem.size_of(o) for o in scoped_ids))
            per_node = capacity_factor * scoped_size / problem.num_nodes
            largest = max(problem.size_of(o) for o in scoped_ids)
            capacities = np.full(problem.num_nodes, max(per_node, largest))
        subproblem = problem.subproblem(scoped_ids, capacities=capacities)
        sub_placement = place_subproblem(subproblem)
        for local_i, obj in enumerate(subproblem.object_ids):
            assignment[problem.object_index(obj)] = sub_placement.assignment[local_i]

    return Placement(problem, assignment)
