"""Random hash-based placement — the paper's primary baseline.

Section 4.1: "the inverted index of each keyword is placed at a node
based on its MD5 hash code ... divide the hash code by the number of
nodes and use the remainder as the ID of the placed node."
"""

from __future__ import annotations

import hashlib
from typing import Hashable

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


def hash_node(obj: Hashable, num_nodes: int, salt: str = "") -> int:
    """Node index for ``obj`` under MD5-mod-n hashing.

    Args:
        obj: Object id; hashed via ``repr`` for non-string ids.
        num_nodes: Number of nodes (``n >= 1``).
        salt: Optional salt, giving independent hash placements for
            repeated randomized trials.

    Returns:
        An integer in ``[0, num_nodes)``.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    text = obj if isinstance(obj, str) else repr(obj)
    digest = hashlib.md5((salt + text).encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % num_nodes


def random_hash_placement(problem: PlacementProblem, salt: str = "") -> Placement:
    """Place every object by MD5-mod-n hashing (correlation-oblivious).

    Note that hash placement ignores capacities entirely; with enough
    objects the loads concentrate near the mean, which is why it is the
    practical default the paper compares against.
    """
    n = problem.num_nodes
    assignment = np.fromiter(
        (hash_node(obj, n, salt) for obj in problem.object_ids),
        dtype=np.int64,
        count=problem.num_objects,
    )
    return Placement(problem, assignment)
