"""Capacity repair for rounded placements.

Theorem 3 only bounds the *expected* per-node load of the randomized
rounding; a particular draw can overload a node badly when the LP
solution contains large groups of identical fractional rows (a
strongly connected correlation component is the typical cause).  The
paper handles slight overruns by using conservative capacities;
:func:`repair_capacity` makes that practical when the overrun is not
slight: it migrates objects off overloaded nodes, always choosing the
(object, destination) move with the lowest communication-cost increase
per byte of load relieved, until every node fits.

This is an engineering addition on top of the paper's algorithm; it
never runs when the rounded placement already respects capacity.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.placement import Placement
from repro.exceptions import InfeasibleProblemError


def repair_capacity(
    placement: Placement,
    capacities: np.ndarray | None = None,
    tolerance: float = 0.0,
) -> Placement:
    """Return a placement whose node loads respect the capacities.

    Args:
        placement: The (possibly overloaded) placement to repair.
        capacities: Capacity vector to enforce; defaults to the
            problem's own capacities.  Infinite entries are never
            considered overloaded.
        tolerance: Relative slack — loads up to
            ``capacity * (1 + tolerance)`` are acceptable.

    Returns:
        The input placement unchanged if already feasible, otherwise a
        new repaired placement.

    Raises:
        InfeasibleProblemError: If the objects cannot fit even in
            principle (total size exceeds total allowed load, or an
            object is larger than every node's allowance).
    """
    problem = placement.problem
    caps = problem.capacities if capacities is None else np.asarray(capacities, float)
    limits = caps * (1.0 + tolerance)

    assignment = placement.assignment.copy()
    loads = np.bincount(assignment, weights=problem.sizes, minlength=problem.num_nodes)
    resource_loads = [
        np.bincount(assignment, weights=spec.loads, minlength=problem.num_nodes)
        for spec in problem.resources
    ]
    resource_limits = [
        spec.budgets * (1.0 + tolerance) for spec in problem.resources
    ]
    if np.all(loads <= limits + 1e-9):
        return placement
    if problem.total_size > np.sum(limits[np.isfinite(limits)]) and np.all(
        np.isfinite(limits)
    ):
        raise InfeasibleProblemError(
            "repair impossible: total object size exceeds total allowed load"
        )

    # Adjacency over correlated pairs for move-cost deltas.
    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(problem.num_objects)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    def move_delta(obj: int, src: int, dst: int) -> float:
        """Communication-cost change of moving ``obj`` from src to dst."""
        delta = 0.0
        for neighbor, weight in adjacency[obj]:
            where = assignment[neighbor]
            if where == src:
                delta += weight  # newly split
            elif where == dst:
                delta -= weight  # newly co-located
        return delta

    max_moves = 4 * problem.num_objects
    moves = 0
    while True:
        overloaded = np.where(loads > limits + 1e-9)[0]
        if overloaded.size == 0:
            break
        moves += 1
        if moves > max_moves:
            raise InfeasibleProblemError(
                "capacity repair did not converge; capacities may be too tight"
            )
        src = int(overloaded[np.argmax(loads[overloaded] - limits[overloaded])])
        members = np.where(assignment == src)[0]
        # Candidate destinations: nodes with room for at least the
        # smallest member (re-checked per object below).
        candidates: list[tuple[float, float, int, int]] = []
        for obj in members:
            size = problem.sizes[obj]
            for dst in range(problem.num_nodes):
                if dst == src or loads[dst] + size > limits[dst] + 1e-9:
                    continue
                if any(
                    rl[dst] + spec.loads[obj] > rlim[dst] + 1e-9
                    for rl, rlim, spec in zip(
                        resource_loads, resource_limits, problem.resources
                    )
                ):
                    continue
                delta = move_delta(int(obj), src, dst)
                # Rank by cost increase per byte relieved, preferring
                # bigger objects on ties (fewer total moves).
                heapq.heappush(
                    candidates, (delta / size, -size, int(obj), dst)
                )
        if not candidates:
            raise InfeasibleProblemError(
                f"capacity repair stuck: no destination can absorb any "
                f"object of overloaded node index {src}"
            )
        _, _, obj, dst = heapq.heappop(candidates)
        assignment[obj] = dst
        loads[src] -= problem.sizes[obj]
        loads[dst] += problem.sizes[obj]
        for rl, spec in zip(resource_loads, problem.resources):
            rl[src] -= spec.loads[obj]
            rl[dst] += spec.loads[obj]

    return Placement(problem, assignment)
