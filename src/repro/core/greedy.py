"""Greedy correlation-aware placement — the paper's heuristic baseline.

Section 4.1: "we examine keyword pairs in the descending order of their
query correlations and always place the most correlated pair on the
same node as long as the node capacity permits it."

The pass over pairs leaves some objects unplaced (objects that never
appear in a correlated pair, or whose pair could not fit anywhere);
those are finished with best-fit-decreasing so the result is always a
total placement.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError


def greedy_placement(
    problem: PlacementProblem,
    by_weight: bool = False,
    strict_capacity: bool = False,
    node_choice: str = "first_fit",
) -> Placement:
    """Greedily co-locate the most correlated pairs.

    Args:
        problem: The CCA instance.
        by_weight: Order pairs by objective weight ``r * w`` instead of
            raw correlation ``r`` (the paper orders by correlation; the
            weight ordering is offered for ablations).
        strict_capacity: When True, raise
            :class:`InfeasibleProblemError` if the best-fit completion
            cannot respect capacities; when False (default), overflow
            objects go to the least-loaded node, mirroring the paper's
            tolerance of slight capacity overruns.
        node_choice: Where a fresh (both-unplaced) pair goes:
            ``"first_fit"`` (default) takes the lowest-indexed node
            with room — the paper's heuristic places the pair "as long
            as the node capacity permits it", with no placement
            optimization; ``"most_free"`` is an enhanced variant that
            keeps space available for later group extensions and is
            used as an ablation baseline.

    Returns:
        A total placement.
    """
    if node_choice not in ("first_fit", "most_free"):
        raise ValueError(f"unknown node_choice {node_choice!r}")
    t, n = problem.num_objects, problem.num_nodes
    assignment = -np.ones(t, dtype=np.int64)
    free = problem.capacities.astype(float).copy()
    sizes = problem.sizes
    resource_free = [spec.budgets.astype(float).copy() for spec in problem.resources]
    resource_loads = [spec.loads for spec in problem.resources]

    def fits(obj: int, k: int) -> bool:
        """Whether object ``obj`` fits node ``k`` on every dimension."""
        if free[k] < sizes[obj]:
            return False
        return all(
            rf[k] >= loads[obj]
            for rf, loads in zip(resource_free, resource_loads)
        )

    def commit(obj: int, k: int) -> None:
        assignment[obj] = k
        free[k] -= sizes[obj]
        for rf, loads in zip(resource_free, resource_loads):
            rf[k] -= loads[obj]

    keys = problem.pair_weights if by_weight else problem.correlations
    # Stable deterministic order: descending key, then pair index order.
    order = np.lexsort((problem.pair_index[:, 1], problem.pair_index[:, 0], -keys))

    for p in order:
        i, j = problem.pair_index[p]
        placed_i, placed_j = assignment[i] >= 0, assignment[j] >= 0
        if placed_i and placed_j:
            continue
        if placed_i or placed_j:
            anchor, mover = (i, j) if placed_i else (j, i)
            k = int(assignment[anchor])
            if fits(int(mover), k):
                commit(int(mover), k)
            continue
        # Both unplaced: co-locate on a node that fits both.
        need = sizes[i] + sizes[j]

        def pair_fits(k: int) -> bool:
            if free[k] < need:
                return False
            return all(
                rf[k] >= loads[i] + loads[j]
                for rf, loads in zip(resource_free, resource_loads)
            )

        if node_choice == "most_free":
            k = int(np.argmax(free))
            if not pair_fits(k):
                continue
        else:  # first_fit
            k = next((c for c in range(n) if pair_fits(c)), -1)
            if k < 0:
                continue
        commit(int(i), k)
        commit(int(j), k)

    _complete_best_fit(
        problem, assignment, free, strict_capacity, resource_free
    )
    return Placement(problem, assignment)


def _complete_best_fit(
    problem: PlacementProblem,
    assignment: np.ndarray,
    free: np.ndarray,
    strict_capacity: bool,
    resource_free: list[np.ndarray] | None = None,
) -> None:
    """Place leftover objects best-fit-decreasing, in place."""
    remaining = np.where(assignment < 0)[0]
    if remaining.size == 0:
        return
    resource_free = resource_free or []
    resource_loads = [spec.loads for spec in problem.resources]
    for i in sorted(remaining, key=lambda i: -problem.sizes[i]):
        feasible = free >= problem.sizes[i]
        for rf, loads in zip(resource_free, resource_loads):
            feasible &= rf >= loads[i]
        candidates = np.where(feasible)[0]
        if candidates.size:
            # Best fit: the feasible node with least leftover space.
            k = int(candidates[np.argmin(free[candidates])])
        elif strict_capacity:
            raise InfeasibleProblemError(
                f"greedy completion cannot fit object {problem.object_ids[i]!r}"
            )
        else:
            k = int(np.argmax(free))
        assignment[i] = k
        free[k] -= problem.sizes[i]
        for rf, loads in zip(resource_free, resource_loads):
            rf[k] -= loads[i]
