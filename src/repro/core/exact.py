"""Exact branch-and-bound solver for small CCA instances.

The CCA problem is NP-hard (Theorem 1), so this solver exists only as
ground truth: optimality-gap tests and the ablation benchmark compare
LPRR against the true optimum on instances small enough to enumerate
intelligently.

The search assigns objects one by one (largest first), pruning on

* strict capacity feasibility (including a bin-packing-style check
  that the remaining objects still fit in the remaining free space),
* a cost lower bound: the cost already paid, plus — for each
  unassigned object — the weight to its already-assigned neighbours
  that it must pay no matter which single node it joins, and
* node symmetry, when all capacities are equal: a new object may only
  open the single lowest-indexed empty node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.greedy import greedy_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError

DEFAULT_MAX_OBJECTS = 18


@dataclass(frozen=True)
class ExactSolution:
    """An optimal placement plus search statistics.

    Attributes:
        placement: An optimal feasible placement.
        cost: Its communication cost (the true optimum).
        nodes_explored: Branch-and-bound tree nodes visited.
    """

    placement: Placement
    cost: float
    nodes_explored: int


def solve_exact(
    problem: PlacementProblem, max_objects: int = DEFAULT_MAX_OBJECTS
) -> ExactSolution:
    """Find a provably optimal placement by branch and bound.

    Args:
        problem: The CCA instance; capacities are enforced strictly.
        max_objects: Guard against accidental exponential blowups.

    Raises:
        ValueError: If the instance exceeds ``max_objects``.
        InfeasibleProblemError: If no feasible placement exists.
    """
    t, n = problem.num_objects, problem.num_nodes
    if t > max_objects:
        raise ValueError(
            f"exact solver limited to {max_objects} objects (got {t}); "
            "raise max_objects explicitly if you really mean it"
        )

    order = np.argsort(-problem.sizes, kind="stable")
    sizes = problem.sizes[order]
    remaining_size = np.concatenate([np.cumsum(sizes[::-1])[::-1], [0.0]])

    # adjacency[u] = list of (v, weight) over correlated pairs.
    position = np.empty(t, dtype=np.int64)
    position[order] = np.arange(t)
    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(t)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight <= 0:
            continue
        u, v = int(position[i]), int(position[j])
        adjacency[u].append((v, float(weight)))
        adjacency[v].append((u, float(weight)))

    symmetric_nodes = bool(n > 1 and np.all(problem.capacities == problem.capacities[0]))

    best_cost = np.inf
    best_assignment: np.ndarray | None = None
    try:
        incumbent = greedy_placement(problem, strict_capacity=True)
    except InfeasibleProblemError:
        incumbent = None
    if incumbent is not None and incumbent.is_feasible():
        best_cost = incumbent.communication_cost()
        best_assignment = incumbent.assignment[order].copy()

    assignment = -np.ones(t, dtype=np.int64)
    free = problem.capacities.astype(float).copy()
    resource_free = [spec.budgets.astype(float).copy() for spec in problem.resources]
    resource_loads = [spec.loads[order] for spec in problem.resources]
    explored = 0

    def unavoidable_cost(depth: int) -> float:
        """Lower bound on the cost still to be paid by unassigned objects."""
        bound = 0.0
        for u in range(depth, t):
            per_node = np.zeros(n)
            total = 0.0
            for v, weight in adjacency[u]:
                if v < depth:
                    per_node[assignment[v]] += weight
                    total += weight
            if total > 0:
                bound += total - per_node.max()
        return bound

    def recurse(depth: int, cost: float) -> None:
        nonlocal best_cost, best_assignment, explored
        explored += 1
        if depth == t:
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment.copy()
            return
        if cost + unavoidable_cost(depth) >= best_cost - 1e-12:
            return
        # Remaining objects must fit in remaining free space.
        if remaining_size[depth] > free.sum() + 1e-9:
            return

        size = sizes[depth]
        pay_to = np.zeros(n)
        total_weight = 0.0
        for v, weight in adjacency[depth]:
            if v < depth:
                pay_to[assignment[v]] += weight
                total_weight += weight

        if symmetric_nodes:
            used = int(assignment[:depth].max()) + 1 if depth else 0
            candidate_nodes = range(min(used + 1, n))
        else:
            candidate_nodes = range(n)
        # Try cheaper nodes first for earlier incumbent tightening.
        ordered = sorted(candidate_nodes, key=lambda k: total_weight - pay_to[k])
        for k in ordered:
            if free[k] + 1e-9 < size:
                continue
            if any(
                rf[k] + 1e-9 < loads[depth]
                for rf, loads in zip(resource_free, resource_loads)
            ):
                continue
            assignment[depth] = k
            free[k] -= size
            for rf, loads in zip(resource_free, resource_loads):
                rf[k] -= loads[depth]
            recurse(depth + 1, cost + total_weight - pay_to[k])
            free[k] += size
            for rf, loads in zip(resource_free, resource_loads):
                rf[k] += loads[depth]
            assignment[depth] = -1

    recurse(0, 0.0)
    if best_assignment is None:
        raise InfeasibleProblemError("no feasible placement exists")

    final = np.empty(t, dtype=np.int64)
    final[order] = best_assignment
    placement = Placement(problem, final)
    return ExactSolution(placement, float(best_cost), explored)
