"""Replicated placement — the paper's natural extension.

The paper's summary points to its companion work on replication-degree
customization; combining the two is the obvious next step: each object
keeps ``R`` copies (for availability and read scaling), and a
multi-object operation can be served by *any* copy pair, so a
correlated pair only pays communication when **no** node holds copies
of both objects.

Since 1.7 replication is *failure-domain aware*: a
:class:`~repro.cluster.topology.Topology` attaches rack and zone
membership to the node indices, and replica spread is enforced at the
widest domain level the topology affords (:meth:`Topology.spread_level`
— zones when there are at least ``R`` of them, else racks, else plain
distinct nodes, which is exactly the pre-1.7 constraint).

This module provides the replicated analogues of the single-copy
machinery:

* :class:`ReplicatedPlacement` — a ``(t, R)`` assignment with the
  any-copy-pair cost semantics, replica-aware capacity accounting, and
  hard spread validation that names the offending *domain*;
* :func:`hash_replicated_placement` — the correlation-oblivious flat
  baseline (salted MD5 per replica, distinct nodes per object);
* :func:`replicate_hash` — the domain-aware hash baseline: salted MD5
  per replica, probing forward until the copy lands in a fresh failure
  domain;
* :func:`greedy_replicated_placement` — primary copies via any
  single-copy strategy, remaining replicas placed to maximize
  *additional* pair coverage under capacity (distinct nodes only);
* :func:`spread_replicated_placement` — the same correlation-aware
  replica rounds under hard domain-spread constraints: every copy of
  an object in a different rack/zone, ties broken toward nodes where
  the object's correlated partners already sit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node
from repro.core.placement import Placement
from repro.core.problem import NodeId, ObjectId, PlacementProblem
from repro.exceptions import PlacementError, ReplicationError

if TYPE_CHECKING:  # imported lazily at runtime to keep core free of cluster
    from repro.cluster.topology import Topology


def _flat_topology(num_nodes: int) -> "Topology":
    from repro.cluster.topology import Topology

    return Topology.flat(num_nodes)


def spread_violations(
    assignment: np.ndarray, domain_ids: np.ndarray
) -> np.ndarray:
    """Object indices whose replicas share a failure domain (vectorized).

    Args:
        assignment: ``(t, R)`` array of node indices.
        domain_ids: Per-node domain index at the spread level
            (:meth:`~repro.cluster.topology.Topology.domain_ids`).

    Returns:
        Sorted array of violating object row indices (empty when the
        placement is fully spread).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.ndim != 2 or assignment.shape[1] < 2:
        return np.empty(0, dtype=np.int64)
    domains = np.sort(np.asarray(domain_ids, dtype=np.int64)[assignment], axis=1)
    clash = (domains[:, 1:] == domains[:, :-1]).any(axis=1)
    return np.flatnonzero(clash)


def _spread_violations_loop(
    assignment: np.ndarray, domain_ids: np.ndarray
) -> np.ndarray:
    """Reference per-row loop for :func:`spread_violations`.

    Kept as the benchmark suite's legacy oracle (``repro bench --tags
    rep``); the vectorized form must match it exactly.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.ndim != 2 or assignment.shape[1] < 2:
        return np.empty(0, dtype=np.int64)
    bad: list[int] = []
    for i in range(assignment.shape[0]):
        seen: set[int] = set()
        for node in assignment[i]:
            domain = int(domain_ids[int(node)])
            if domain in seen:
                bad.append(i)
                break
            seen.add(domain)
    return np.asarray(bad, dtype=np.int64)


class ReplicatedPlacement:
    """An assignment of ``R`` replicas of every object to nodes.

    Attributes:
        problem: The underlying CCA instance.
        assignment: ``(t, R)`` int array of node indices; replicas of
            one object must sit on distinct nodes and — when a topology
            is attached — on distinct domains at the ``spread`` level.
        topology: Failure-domain membership of the node indices, or
            ``None`` for the flat pre-1.7 model.
        spread: Domain kind the replicas are spread across (``"zone"``,
            ``"rack"``, or ``"node"``); defaults to the widest level
            the topology can hold (:meth:`Topology.spread_level`).
    """

    def __init__(
        self,
        problem: PlacementProblem,
        assignment: np.ndarray,
        topology: "Topology | None" = None,
        spread: str | None = None,
    ):
        self.problem = problem
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.ndim != 2 or self.assignment.shape[0] != problem.num_objects:
            raise ReplicationError(
                f"assignment must be (num_objects, replicas); got "
                f"{self.assignment.shape}"
            )
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= problem.num_nodes
        ):
            raise ReplicationError("assignment contains out-of-range node indices")
        if topology is not None and topology.num_nodes != problem.num_nodes:
            raise ReplicationError(
                f"topology covers {topology.num_nodes} nodes, problem has "
                f"{problem.num_nodes}"
            )
        self.topology = topology
        effective = topology or _flat_topology(problem.num_nodes)
        self.spread = spread or effective.spread_level(self.assignment.shape[1])
        self._validate_spread(effective)

    def _validate_spread(self, topology: "Topology") -> None:
        # Node-distinctness is always required, whatever the spread
        # level; check it first so the error message names the shared
        # node when that is the actual offense.
        bad = spread_violations(
            self.assignment, topology.domain_ids("node")
        )
        if bad.size:
            i = int(bad[0])
            raise ReplicationError(
                f"object {self.problem.object_ids[i]!r} has replicas "
                f"sharing a node"
            )
        if self.spread == "node":
            return
        ids = topology.domain_ids(self.spread)
        bad = spread_violations(self.assignment, ids)
        if bad.size:
            i = int(bad[0])
            row = self.assignment[i]
            domains = [int(ids[int(k)]) for k in row]
            shared = next(d for d in domains if domains.count(d) > 1)
            raise ReplicationError(
                f"object {self.problem.object_ids[i]!r} has replicas "
                f"sharing {self.spread}:{shared}"
            )

    @property
    def replication_factor(self) -> int:
        """Number of copies per object."""
        return self.assignment.shape[1]

    def nodes_of(self, obj: ObjectId) -> list[NodeId]:
        """Nodes holding copies of ``obj``."""
        i = self.problem.object_index(obj)
        return [self.problem.node_ids[k] for k in self.assignment[i]]

    # ------------------------------------------------------------------
    # Cost and capacity
    # ------------------------------------------------------------------
    def communication_cost(self) -> float:
        """Objective (1) under any-copy semantics.

        A pair is local when the replica node sets intersect.
        """
        p = self.problem
        cost = 0.0
        sets = [set(row.tolist()) for row in self.assignment]
        for (i, j), weight in zip(p.pair_index, p.pair_weights):
            if not sets[int(i)] & sets[int(j)]:
                cost += weight
        return float(cost)

    def node_loads(self) -> np.ndarray:
        """Per-node stored bytes, counting every replica."""
        loads = np.zeros(self.problem.num_nodes)
        for r in range(self.replication_factor):
            loads += np.bincount(
                self.assignment[:, r],
                weights=self.problem.sizes,
                minlength=self.problem.num_nodes,
            )
        return loads

    def is_feasible(self, tolerance: float = 0.0) -> bool:
        """Whether replica-inclusive loads respect node capacities."""
        limits = self.problem.capacities * (1.0 + tolerance)
        return bool(np.all(self.node_loads() <= limits + 1e-9))

    def primary(self) -> Placement:
        """The first-copy placement as a plain :class:`Placement`."""
        return Placement(self.problem, self.assignment[:, 0])

    def with_assignment(self, assignment: np.ndarray) -> "ReplicatedPlacement":
        """A copy with a new assignment, same topology and spread."""
        return ReplicatedPlacement(
            self.problem, assignment, topology=self.topology, spread=self.spread
        )

    def to_dict(self) -> dict:
        """JSON-ready form (assignment rows in object order)."""
        doc = {
            "replicas": self.replication_factor,
            "spread": self.spread,
            "objects": [str(o) for o in self.problem.object_ids],
            "assignment": [
                [int(k) for k in row] for row in self.assignment
            ],
        }
        if self.topology is not None:
            doc["topology"] = self.topology.to_dict()
        return doc

    def __repr__(self) -> str:
        return (
            f"ReplicatedPlacement(R={self.replication_factor}, "
            f"spread={self.spread!r}, "
            f"cost={self.communication_cost():.6g})"
        )


def hash_replicated_placement(
    problem: PlacementProblem, replicas: int = 2
) -> ReplicatedPlacement:
    """Correlation-oblivious flat baseline: salted hash per replica.

    Replica ``r`` of an object hashes with salt ``r``; collisions with
    earlier replicas advance to the next node (consistent with how
    replicated hash rings pick distinct successors).  Domain-oblivious;
    see :func:`replicate_hash` for the topology-aware variant.
    """
    _check_replicas(problem, replicas)
    n = problem.num_nodes
    assignment = np.empty((problem.num_objects, replicas), dtype=np.int64)
    for i, obj in enumerate(problem.object_ids):
        chosen: list[int] = []
        for r in range(replicas):
            k = hash_node(obj, n, salt=str(r))
            while k in chosen:
                k = (k + 1) % n
            chosen.append(k)
        assignment[i] = chosen
    return ReplicatedPlacement(problem, assignment)


def replicate_hash(
    problem: PlacementProblem,
    topology: "Topology",
    replicas: int = 2,
    salt: str = "",
) -> ReplicatedPlacement:
    """Domain-aware hash baseline: each copy in a fresh failure domain.

    Replica ``r`` hashes with salt ``salt + str(r)`` and probes forward
    (ring order) until it lands on a node whose spread-level domain
    holds no earlier copy of the object.  Correlation-oblivious but
    spread-correct — the fair baseline for ``lprr:rep``.

    Args:
        problem: The CCA instance.
        topology: Failure-domain membership of the node indices.
        replicas: Copies per object.
        salt: Extra salt mixed into every replica's hash.
    """
    _check_replicas(problem, replicas, topology)
    n = problem.num_nodes
    spread = topology.spread_level(replicas)
    ids = topology.domain_ids(spread)
    assignment = np.empty((problem.num_objects, replicas), dtype=np.int64)
    for i, obj in enumerate(problem.object_ids):
        chosen: list[int] = []
        used_domains: set[int] = set()
        for r in range(replicas):
            k = hash_node(obj, n, salt=f"{salt}{r}")
            while int(ids[k]) in used_domains or k in chosen:
                k = (k + 1) % n
            chosen.append(k)
            used_domains.add(int(ids[k]))
        assignment[i] = chosen
    return ReplicatedPlacement(problem, assignment, topology=topology, spread=spread)


def greedy_replicated_placement(
    problem: PlacementProblem,
    replicas: int = 2,
    primary_strategy: Callable[[PlacementProblem], Placement] | None = None,
) -> ReplicatedPlacement:
    """Correlation-aware replication on top of any primary placement.

    Primaries come from ``primary_strategy`` (default: the greedy
    heuristic).  Each additional replica round walks objects in
    importance order and places the new copy on the feasible node that
    *covers* the most still-split pair weight (i.e. the node where the
    object's correlated partners already have copies), falling back to
    the least-loaded feasible node.

    Args:
        problem: The CCA instance.
        replicas: Total copies per object (``>= 1``).
        primary_strategy: Strategy for the first copy.

    Returns:
        A feasible-when-possible :class:`ReplicatedPlacement`.
    """
    _check_replicas(problem, replicas)
    primary_strategy = primary_strategy or greedy_placement
    primary = primary_strategy(problem)

    t, n = problem.num_objects, problem.num_nodes
    assignment = np.empty((t, replicas), dtype=np.int64)
    assignment[:, 0] = primary.assignment
    loads = primary.node_loads().astype(float)

    adjacency = _pair_adjacency(problem)
    copies: list[set[int]] = [{int(assignment[i, 0])} for i in range(t)]
    order = np.argsort(-problem.sizes, kind="stable")

    for r in range(1, replicas):
        for i in order:
            i = int(i)
            size = problem.sizes[i]
            # Coverage gain per node: weight of still-split pairs whose
            # partner already has a copy there.
            gain = np.zeros(n)
            for j, weight in adjacency[i]:
                if copies[i] & copies[j]:
                    continue  # already local
                for k in copies[j]:
                    gain[k] += weight
            feasible = problem.capacities - loads >= size
            feasible[list(copies[i])] = False
            candidates = np.where(feasible)[0]
            if candidates.size == 0:
                # No capacity anywhere: least-loaded node without a copy.
                others = np.array(
                    [k for k in range(n) if k not in copies[i]], dtype=np.int64
                )
                if others.size == 0:
                    raise PlacementError(
                        "more replicas requested than nodes available"
                    )
                k = int(others[np.argmin(loads[others])])
            elif gain[candidates].max() > 0:
                k = int(candidates[np.argmax(gain[candidates])])
            else:
                k = int(candidates[np.argmin(loads[candidates])])
            assignment[i, r] = k
            copies[i].add(k)
            loads[k] += size
    return ReplicatedPlacement(problem, assignment)


def spread_replicated_placement(
    problem: PlacementProblem,
    topology: "Topology",
    replicas: int = 2,
    primary_strategy: Callable[[PlacementProblem], Placement] | None = None,
    spread: str | None = None,
) -> ReplicatedPlacement:
    """Correlation-aware replication under hard domain-spread constraints.

    Primaries come from ``primary_strategy`` (default greedy); each
    additional replica round walks objects in importance (size) order
    and places the new copy on a node in a *fresh* failure domain —
    one holding no earlier copy of the object — preferring, among
    feasible fresh-domain nodes, the one covering the most still-split
    pair weight, then the least-loaded.  The spread level defaults to
    the widest the topology can hold for ``replicas`` copies
    (:meth:`Topology.spread_level`), so the constraint is always
    satisfiable and the result validates clean.

    Args:
        problem: The CCA instance.
        topology: Failure-domain membership of the node indices.
        replicas: Total copies per object (``>= 1``).
        primary_strategy: Strategy for the first copy.
        spread: Override the spread level (``"zone"``/``"rack"``/
            ``"node"``); must have at least ``replicas`` domains.

    Returns:
        A spread-valid :class:`ReplicatedPlacement` (feasible when
        capacity allows; spread is the hard constraint).
    """
    _check_replicas(problem, replicas, topology)
    spread = spread or topology.spread_level(replicas)
    ids = topology.domain_ids(spread)
    num_domains = int(np.unique(ids).size)
    if num_domains < replicas:
        raise ReplicationError(
            f"cannot spread {replicas} copies across {num_domains} "
            f"{spread} domains"
        )
    primary_strategy = primary_strategy or greedy_placement
    primary = primary_strategy(problem)

    t, n = problem.num_objects, problem.num_nodes
    assignment = np.empty((t, replicas), dtype=np.int64)
    assignment[:, 0] = primary.assignment
    loads = primary.node_loads().astype(float)

    adjacency = _pair_adjacency(problem)
    copies: list[set[int]] = [{int(assignment[i, 0])} for i in range(t)]
    used: list[set[int]] = [
        {int(ids[int(assignment[i, 0])])} for i in range(t)
    ]
    order = np.argsort(-problem.sizes, kind="stable")

    for r in range(1, replicas):
        for i in order:
            i = int(i)
            size = problem.sizes[i]
            gain = np.zeros(n)
            for j, weight in adjacency[i]:
                if copies[i] & copies[j]:
                    continue  # already local
                for k in copies[j]:
                    gain[k] += weight
            fresh = np.array(
                [k for k in range(n) if int(ids[k]) not in used[i]],
                dtype=np.int64,
            )
            # num_domains >= replicas guarantees a fresh domain exists.
            feasible = fresh[
                problem.capacities[fresh] - loads[fresh] >= size
            ]
            pool = feasible if feasible.size else fresh
            if gain[pool].max() > 0:
                k = int(pool[np.argmax(gain[pool])])
            else:
                k = int(pool[np.argmin(loads[pool])])
            assignment[i, r] = k
            copies[i].add(k)
            used[i].add(int(ids[k]))
            loads[k] += size
    return ReplicatedPlacement(problem, assignment, topology=topology, spread=spread)


def _pair_adjacency(problem: PlacementProblem) -> list[list[tuple[int, float]]]:
    adjacency: list[list[tuple[int, float]]] = [
        [] for _ in range(problem.num_objects)
    ]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))
    return adjacency


def _check_replicas(
    problem: PlacementProblem,
    replicas: int,
    topology: "Topology | None" = None,
) -> None:
    if replicas < 1:
        raise ReplicationError("replicas must be at least 1")
    if replicas > problem.num_nodes:
        raise ReplicationError(
            f"cannot place {replicas} distinct copies on "
            f"{problem.num_nodes} nodes"
        )
    if topology is not None and topology.num_nodes != problem.num_nodes:
        raise ReplicationError(
            f"topology covers {topology.num_nodes} nodes, problem has "
            f"{problem.num_nodes}"
        )
