"""Replicated placement — the paper's natural extension.

The paper's summary points to its companion work on replication-degree
customization; combining the two is the obvious next step: each object
keeps ``R`` copies (for availability and read scaling), and a
multi-object operation can be served by *any* copy pair, so a
correlated pair only pays communication when **no** node holds copies
of both objects.

This module provides the replicated analogues of the single-copy
machinery:

* :class:`ReplicatedPlacement` — a ``(t, R)`` assignment with the
  any-copy-pair cost semantics and replica-aware capacity accounting;
* :func:`hash_replicated_placement` — the correlation-oblivious
  baseline (salted MD5 per replica, distinct nodes per object);
* :func:`greedy_replicated_placement` — primary copies via any
  single-copy strategy, remaining replicas placed to maximize
  *additional* pair coverage under capacity.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node
from repro.core.placement import Placement
from repro.core.problem import NodeId, ObjectId, PlacementProblem
from repro.exceptions import PlacementError


class ReplicatedPlacement:
    """An assignment of ``R`` replicas of every object to nodes.

    Attributes:
        problem: The underlying CCA instance.
        assignment: ``(t, R)`` int array of node indices; replicas of
            one object must sit on distinct nodes.
    """

    def __init__(self, problem: PlacementProblem, assignment: np.ndarray):
        self.problem = problem
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.ndim != 2 or self.assignment.shape[0] != problem.num_objects:
            raise PlacementError(
                f"assignment must be (num_objects, replicas); got "
                f"{self.assignment.shape}"
            )
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= problem.num_nodes
        ):
            raise PlacementError("assignment contains out-of-range node indices")
        for i in range(problem.num_objects):
            row = self.assignment[i]
            if len(set(row.tolist())) != len(row):
                raise PlacementError(
                    f"object {problem.object_ids[i]!r} has replicas sharing a node"
                )

    @property
    def replication_factor(self) -> int:
        """Number of copies per object."""
        return self.assignment.shape[1]

    def nodes_of(self, obj: ObjectId) -> list[NodeId]:
        """Nodes holding copies of ``obj``."""
        i = self.problem.object_index(obj)
        return [self.problem.node_ids[k] for k in self.assignment[i]]

    # ------------------------------------------------------------------
    # Cost and capacity
    # ------------------------------------------------------------------
    def communication_cost(self) -> float:
        """Objective (1) under any-copy semantics.

        A pair is local when the replica node sets intersect.
        """
        p = self.problem
        cost = 0.0
        sets = [set(row.tolist()) for row in self.assignment]
        for (i, j), weight in zip(p.pair_index, p.pair_weights):
            if not sets[int(i)] & sets[int(j)]:
                cost += weight
        return float(cost)

    def node_loads(self) -> np.ndarray:
        """Per-node stored bytes, counting every replica."""
        loads = np.zeros(self.problem.num_nodes)
        for r in range(self.replication_factor):
            loads += np.bincount(
                self.assignment[:, r],
                weights=self.problem.sizes,
                minlength=self.problem.num_nodes,
            )
        return loads

    def is_feasible(self, tolerance: float = 0.0) -> bool:
        """Whether replica-inclusive loads respect node capacities."""
        limits = self.problem.capacities * (1.0 + tolerance)
        return bool(np.all(self.node_loads() <= limits + 1e-9))

    def primary(self) -> Placement:
        """The first-copy placement as a plain :class:`Placement`."""
        return Placement(self.problem, self.assignment[:, 0])

    def __repr__(self) -> str:
        return (
            f"ReplicatedPlacement(R={self.replication_factor}, "
            f"cost={self.communication_cost():.6g})"
        )


def hash_replicated_placement(
    problem: PlacementProblem, replicas: int = 2
) -> ReplicatedPlacement:
    """Correlation-oblivious baseline: salted hash per replica.

    Replica ``r`` of an object hashes with salt ``r``; collisions with
    earlier replicas advance to the next node (consistent with how
    replicated hash rings pick distinct successors).
    """
    _check_replicas(problem, replicas)
    n = problem.num_nodes
    assignment = np.empty((problem.num_objects, replicas), dtype=np.int64)
    for i, obj in enumerate(problem.object_ids):
        chosen: list[int] = []
        for r in range(replicas):
            k = hash_node(obj, n, salt=str(r))
            while k in chosen:
                k = (k + 1) % n
            chosen.append(k)
        assignment[i] = chosen
    return ReplicatedPlacement(problem, assignment)


def greedy_replicated_placement(
    problem: PlacementProblem,
    replicas: int = 2,
    primary_strategy: Callable[[PlacementProblem], Placement] | None = None,
) -> ReplicatedPlacement:
    """Correlation-aware replication on top of any primary placement.

    Primaries come from ``primary_strategy`` (default: the greedy
    heuristic).  Each additional replica round walks objects in
    importance order and places the new copy on the feasible node that
    *covers* the most still-split pair weight (i.e. the node where the
    object's correlated partners already have copies), falling back to
    the least-loaded feasible node.

    Args:
        problem: The CCA instance.
        replicas: Total copies per object (``>= 1``).
        primary_strategy: Strategy for the first copy.

    Returns:
        A feasible-when-possible :class:`ReplicatedPlacement`.
    """
    _check_replicas(problem, replicas)
    primary_strategy = primary_strategy or greedy_placement
    primary = primary_strategy(problem)

    t, n = problem.num_objects, problem.num_nodes
    assignment = np.empty((t, replicas), dtype=np.int64)
    assignment[:, 0] = primary.assignment
    loads = primary.node_loads().astype(float)

    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(t)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    copies: list[set[int]] = [{int(assignment[i, 0])} for i in range(t)]
    order = np.argsort(-problem.sizes, kind="stable")

    for r in range(1, replicas):
        for i in order:
            i = int(i)
            size = problem.sizes[i]
            # Coverage gain per node: weight of still-split pairs whose
            # partner already has a copy there.
            gain = np.zeros(n)
            for j, weight in adjacency[i]:
                if copies[i] & copies[j]:
                    continue  # already local
                for k in copies[j]:
                    gain[k] += weight
            feasible = problem.capacities - loads >= size
            feasible[list(copies[i])] = False
            candidates = np.where(feasible)[0]
            if candidates.size == 0:
                # No capacity anywhere: least-loaded node without a copy.
                others = np.array(
                    [k for k in range(n) if k not in copies[i]], dtype=np.int64
                )
                if others.size == 0:
                    raise PlacementError(
                        "more replicas requested than nodes available"
                    )
                k = int(others[np.argmin(loads[others])])
            elif gain[candidates].max() > 0:
                k = int(candidates[np.argmax(gain[candidates])])
            else:
                k = int(candidates[np.argmin(loads[candidates])])
            assignment[i, r] = k
            copies[i].add(k)
            loads[k] += size
    return ReplicatedPlacement(problem, assignment)


def _check_replicas(problem: PlacementProblem, replicas: int) -> None:
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if replicas > problem.num_nodes:
        raise ValueError(
            f"cannot place {replicas} distinct copies on "
            f"{problem.num_nodes} nodes"
        )
