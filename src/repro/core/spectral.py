"""Spectral placement — a graph-partitioning baseline.

The correlation graph view of CCA invites the classic alternative to
both greedy and LP machinery: spectral partitioning.  This module
implements capacity-aware recursive spectral bisection — split the
correlation graph by the Fiedler vector (second eigenvector of the
weighted Laplacian), balancing object *sizes* across the two sides,
and recurse until each part maps to one node.

It exists as an independent reference point for the ablation study:
how much of LPRR's advantage would an off-the-shelf graph partitioner
capture?
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import _complete_best_fit
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem


def spectral_placement(
    problem: PlacementProblem,
) -> Placement:
    """Place objects by recursive capacity-aware spectral bisection.

    The node set is split as evenly as possible at every level (sizes
    of the node groups proportional to their aggregate capacity when
    finite, else their count); objects follow the Fiedler-vector order
    so each side's total object size matches its side's share.

    Args:
        problem: The CCA instance.

    Returns:
        A total placement (soft capacities: a final best-fit pass
        resolves any overflow like the greedy baseline does).
    """
    t, n = problem.num_objects, problem.num_nodes
    assignment = -np.ones(t, dtype=np.int64)

    weights = np.zeros((t, t))
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        weights[int(i), int(j)] = weight
        weights[int(j), int(i)] = weight

    def bisect(objects: np.ndarray, nodes: list[int]) -> None:
        if not len(objects):
            return
        if len(nodes) == 1:
            assignment[objects] = nodes[0]
            return
        half = len(nodes) // 2
        left_nodes, right_nodes = nodes[:half], nodes[half:]
        left_share = len(left_nodes) / len(nodes)

        order = _fiedler_order(weights[np.ix_(objects, objects)], problem.sizes[objects])
        ordered = objects[order]
        sizes = problem.sizes[ordered]
        cumulative = np.cumsum(sizes)
        total = cumulative[-1]
        cut = int(np.searchsorted(cumulative, left_share * total, side="right"))
        cut = max(1, min(cut, len(ordered) - 1)) if len(ordered) > 1 else 0
        bisect(ordered[:cut], left_nodes)
        bisect(ordered[cut:], right_nodes)

    bisect(np.arange(t), list(range(n)))

    # Resolve any capacity overflow exactly like the greedy baseline.
    free = problem.capacities.astype(float).copy()
    overloaded: list[int] = []
    loads = np.bincount(assignment, weights=problem.sizes, minlength=n)
    order = np.argsort(-problem.sizes, kind="stable")
    for i in order:
        k = assignment[i]
        if loads[k] > problem.capacities[k] + 1e-9:
            loads[k] -= problem.sizes[i]
            assignment[i] = -1
            overloaded.append(int(i))
    free = problem.capacities - loads
    _complete_best_fit(problem, assignment, free, strict_capacity=False)
    return Placement(problem, assignment)


def _fiedler_order(weights: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Objects ordered by the Fiedler vector of the weighted Laplacian.

    Degenerate cases (no edges, tiny groups) fall back to size order so
    the bisection stays deterministic.
    """
    m = weights.shape[0]
    if m <= 2 or weights.sum() == 0:
        return np.argsort(-sizes, kind="stable")
    degree = weights.sum(axis=1)
    laplacian = np.diag(degree) - weights
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # The first eigenvector is constant (eigenvalue ~0); the second —
    # the Fiedler vector — embeds the graph on a line.
    fiedler = eigenvectors[:, 1]
    return np.argsort(fiedler, kind="stable")
