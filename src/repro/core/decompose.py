"""Connected-component decomposition of placement problems.

Two objects interact in the CCA objective only through correlated-pair
chains, so the correlation graph's connected components are independent
subproblems *except* for the shared capacity constraint.  Under the
paper's conservative-capacity regime (factor x average load), the LP
treats capacity so loosely that solving each component against the same
conservative capacities and merging is exact in practice — and it turns
one big LP into many tiny ones, cutting full-vocabulary optimization
from minutes to seconds.

Singleton components (objects with no correlated partner) skip the LP
entirely and fall through to the caller's fallback placement.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.problem import ObjectId, PlacementProblem


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be nonnegative")
        self._parent = np.arange(size, dtype=np.int64)
        self._size = np.ones(size, dtype=np.int64)

    def find(self, x: int) -> int:
        """Representative of ``x``'s set."""
        root = x
        while self._parent[root] != root:
            root = int(self._parent[root])
        # Path compression.
        while self._parent[x] != root:
            self._parent[x], x = root, int(self._parent[x])
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> list[list[int]]:
        """All sets, each as a sorted list of members."""
        by_root: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            by_root.setdefault(self.find(x), []).append(x)
        return sorted(by_root.values(), key=lambda g: g[0])


def correlation_components(problem: PlacementProblem) -> list[list[ObjectId]]:
    """Connected components of the correlation graph, as object ids.

    Only pairs with positive objective weight connect objects (zero-
    weight pairs cannot affect any placement's cost).  Components are
    ordered by total byte size, largest first — the order a solver
    wants to tackle them in, the best schedule for a worker pool
    (longest job starts first), and the deterministic order the
    parallel engine's per-component seed spawning relies on.
    """
    with obs.span("decompose", objects=problem.num_objects) as span:
        dsu = UnionFind(problem.num_objects)
        for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
            if weight > 0:
                dsu.union(int(i), int(j))
        groups = dsu.groups()
        groups.sort(key=lambda g: (-float(problem.sizes[g].sum()), g[0]))
        span.set(components=len(groups))
    obs.gauge("decompose.components").set(len(groups))
    if groups:
        obs.gauge("decompose.largest_component").set(len(groups[0]))
    return [[problem.object_ids[i] for i in group] for group in groups]


def component_subproblems(
    problem: PlacementProblem,
    capacities: np.ndarray | None = None,
    min_size: int = 2,
) -> tuple[list[PlacementProblem], list[ObjectId]]:
    """Split a problem into per-component subproblems.

    Args:
        problem: The CCA instance.
        capacities: Capacity vector every subproblem uses (defaults to
            the problem's own — conservative capacities shared across
            components, per the module docstring).
        min_size: Components smaller than this (typically singletons)
            are returned as leftovers instead of subproblems.

    Returns:
        ``(subproblems, leftover_object_ids)``.
    """
    subproblems = []
    leftovers: list[ObjectId] = []
    for component in correlation_components(problem):
        if len(component) < min_size:
            leftovers.extend(component)
        else:
            subproblems.append(problem.subproblem(component, capacities=capacities))
    return subproblems, leftovers
