"""Object-importance ranking for partial optimization.

Section 4.2's ranking scheme: rank all object pairs by their
inter-object communication cost ``r(i,j) * w(i,j)`` descending; an
object's importance is its first appearance in that pair ranking.
Objects that never appear in a correlated pair are ranked last
(largest sizes first among those, so the capacity-heavy objects still
tend to enter the optimization scope).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import ObjectId, PlacementProblem


def importance_ranking(problem: PlacementProblem) -> list[ObjectId]:
    """All object ids ordered from most to least important."""
    order = _importance_order(problem)
    return [problem.object_ids[i] for i in order]


def importance_scores(problem: PlacementProblem) -> np.ndarray:
    """Ranks (0 = most important) aligned with ``problem.object_ids``."""
    order = _importance_order(problem)
    scores = np.empty(problem.num_objects, dtype=np.int64)
    scores[order] = np.arange(problem.num_objects)
    return scores


def top_important(problem: PlacementProblem, scope: int) -> list[ObjectId]:
    """The ``scope`` most important object ids.

    Args:
        problem: The CCA instance.
        scope: Number of objects to keep; clipped to ``|T|``.
    """
    if scope < 0:
        raise ValueError("scope must be nonnegative")
    return importance_ranking(problem)[:scope]


def _importance_order(problem: PlacementProblem) -> np.ndarray:
    t = problem.num_objects
    if problem.num_pairs == 0:
        return np.argsort(-problem.sizes, kind="stable")

    weights = problem.pair_weights
    pair_order = np.lexsort(
        (problem.pair_index[:, 1], problem.pair_index[:, 0], -weights)
    )

    first_seen = np.full(t, np.iinfo(np.int64).max, dtype=np.int64)
    position = 0
    for p in pair_order:
        for obj in problem.pair_index[p]:
            if first_seen[obj] == np.iinfo(np.int64).max:
                first_seen[obj] = position
                position += 1

    # Never-paired objects last, ordered by size descending (stable).
    by_size_rank = np.empty(t, dtype=np.int64)
    by_size_rank[np.argsort(-problem.sizes, kind="stable")] = np.arange(t)
    unseen = first_seen == np.iinfo(np.int64).max
    first_seen[unseen] = t + by_size_rank[unseen]
    return np.argsort(first_seen, kind="stable")
