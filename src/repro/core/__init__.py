"""The paper's primary contribution: correlation-aware object placement.

This subpackage contains the Capacity-Constrained Assignment (CCA)
problem model, the LP relaxation and randomized rounding of the paper's
LPRR algorithm, the baselines it is evaluated against (random hashing
and the greedy correlation-aware heuristic), the important-object
partial-optimization machinery, an exact branch-and-bound solver for
small instances, and the executable form of the paper's NP-hardness
reduction from minimum multiway cut.
"""

from repro.core.correlation import (
    CorrelationEstimator,
    cooccurrence_correlations,
    two_smallest_correlations,
    union_largest_correlations,
)
from repro.core.decompose import UnionFind, component_subproblems, correlation_components
from repro.core.exact import ExactSolution, solve_exact
from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node, random_hash_placement
from repro.core.importance import importance_ranking, importance_scores, top_important
from repro.core.local_search import local_search_placement
from repro.core.lp import FractionalPlacement, LPStats, WarmStart, build_placement_lp, solve_placement_lp
from repro.core.lprr import LPRRPlanner, LPRRResult
from repro.core.migration import (
    Migration,
    MigrationPlan,
    diff_placements,
    select_migrations,
)
from repro.core.partial import scoped_placement
from repro.core.placement import Placement, PlacementMap
from repro.core.problem import PairData, PlacementProblem, min_size_pair_cost
from repro.core.repair import repair_capacity
from repro.core.replication import (
    ReplicatedPlacement,
    greedy_replicated_placement,
    hash_replicated_placement,
    replicate_hash,
    spread_replicated_placement,
    spread_violations,
)
from repro.core.resources import ResourceSpec
from repro.core.rounding import (
    RoundingResult,
    round_best_of,
    round_fractional,
    round_trials_batched,
)
from repro.core.spectral import spectral_placement
from repro.core.serialization import (
    load_placement,
    load_problem,
    save_placement,
    save_problem,
)
from repro.core.strategies import (
    PlacementStrategy,
    PlanConfig,
    Planner,
    PlanResult,
    PlanScope,
    available_planners,
    available_strategies,
    best_fit_decreasing_placement,
    get_planner,
    get_strategy,
    plan,
    register_planner,
    round_robin_placement,
)

__all__ = [
    "CorrelationEstimator",
    "ExactSolution",
    "FractionalPlacement",
    "WarmStart",
    "LPRRPlanner",
    "LPRRResult",
    "Migration",
    "MigrationPlan",
    "LPStats",
    "PairData",
    "Placement",
    "PlacementMap",
    "PlacementProblem",
    "PlacementStrategy",
    "PlanConfig",
    "PlanResult",
    "PlanScope",
    "Planner",
    "ReplicatedPlacement",
    "ResourceSpec",
    "available_planners",
    "available_strategies",
    "best_fit_decreasing_placement",
    "component_subproblems",
    "correlation_components",
    "build_placement_lp",
    "cooccurrence_correlations",
    "diff_placements",
    "get_planner",
    "get_strategy",
    "greedy_placement",
    "greedy_replicated_placement",
    "hash_node",
    "hash_replicated_placement",
    "importance_ranking",
    "importance_scores",
    "load_placement",
    "local_search_placement",
    "load_problem",
    "min_size_pair_cost",
    "plan",
    "random_hash_placement",
    "register_planner",
    "repair_capacity",
    "replicate_hash",
    "round_best_of",
    "round_fractional",
    "round_trials_batched",
    "round_robin_placement",
    "save_placement",
    "save_problem",
    "scoped_placement",
    "select_migrations",
    "RoundingResult",
    "UnionFind",
    "solve_exact",
    "solve_placement_lp",
    "spectral_placement",
    "spread_replicated_placement",
    "spread_violations",
    "top_important",
    "two_smallest_correlations",
    "union_largest_correlations",
]
