"""The NP-hardness reduction (Theorem 1) made executable.

Theorem 1 proves CCA NP-hard by embedding minimum multiway cut: with
``n`` equal-capacity nodes and ``n`` "terminal" objects of size
``s ∈ (c/2, c]``, the terminals are forced into a bijection with the
nodes, and all remaining (tiny) objects distribute freely — so an
optimal placement is exactly a minimum multiway cut.

This module provides the forward construction (multiway-cut instance →
CCA instance), the cost correspondence, and the classic isolation
heuristic (a ``2 - 2/k`` approximation) as an independent reference
algorithm for cross-checking placements on cut-structured instances.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem

TERMINAL_SIZE = 0.6
TINY_BUDGET = 0.4  # total size available to all non-terminal objects


def cca_from_multiway_cut(
    graph: nx.Graph, terminals: Sequence[Hashable]
) -> PlacementProblem:
    """Encode a multiway-cut instance as a CCA instance (Theorem 1).

    Args:
        graph: Undirected graph; edge attribute ``weight`` (default 1)
            is the cut cost of the edge.
        terminals: ``n >= 2`` distinct vertices to separate.  Each
            becomes an object of size 0.6 on nodes of capacity 1, so
            no two terminals share a node; every other vertex becomes
            an object small enough to go anywhere.

    Returns:
        A CCA instance whose optimal cost equals the minimum multiway
        cut value (pair cost ``w = 1``, correlation = edge weight).
    """
    terminals = list(terminals)
    if len(terminals) < 2:
        raise ValueError("need at least two terminals")
    if len(set(terminals)) != len(terminals):
        raise ValueError("terminals must be distinct")
    for terminal in terminals:
        if terminal not in graph:
            raise ValueError(f"terminal {terminal!r} not in graph")

    others = [v for v in graph.nodes if v not in set(terminals)]
    tiny = TINY_BUDGET / max(len(others), 1)
    objects = {v: TERMINAL_SIZE for v in terminals}
    objects.update({v: tiny for v in others})

    correlations = {
        (u, v): float(data.get("weight", 1.0))
        for u, v, data in graph.edges(data=True)
    }
    nodes = {k: 1.0 for k in range(len(terminals))}
    return PlacementProblem.build(objects, nodes, correlations, pair_cost=lambda a, b: 1.0)


def multiway_cut_value(graph: nx.Graph, partition: dict[Hashable, int]) -> float:
    """Total weight of edges whose endpoints are in different parts."""
    return float(
        sum(
            data.get("weight", 1.0)
            for u, v, data in graph.edges(data=True)
            if partition[u] != partition[v]
        )
    )


def partition_from_placement(placement: Placement) -> dict[Hashable, int]:
    """View a CCA placement as a graph partition (object -> node index)."""
    return {
        obj: int(k)
        for obj, k in zip(placement.problem.object_ids, placement.assignment)
    }


def isolation_heuristic(
    graph: nx.Graph, terminals: Sequence[Hashable]
) -> tuple[dict[Hashable, int], float]:
    """The classic isolation heuristic for minimum multiway cut.

    For each terminal, compute a minimum cut isolating it from all
    other terminals (via a super-sink), then take the union of the
    ``k - 1`` cheapest isolating cuts — a ``2 - 2/k`` approximation.

    Returns:
        ``(partition, cut_value)`` where ``partition`` maps every
        vertex to the index of the terminal whose side it lands on.
    """
    terminals = list(terminals)
    if len(terminals) < 2:
        raise ValueError("need at least two terminals")

    cuts: list[tuple[float, int, set]] = []
    for index, terminal in enumerate(terminals):
        work = nx.Graph()
        work.add_nodes_from(graph.nodes)
        for u, v, data in graph.edges(data=True):
            work.add_edge(u, v, capacity=float(data.get("weight", 1.0)))
        sink = ("__sink__", index)
        for other in terminals:
            if other != terminal:
                work.add_edge(other, sink, capacity=float("inf"))
        cut_value, (reachable, _) = nx.minimum_cut(work, terminal, sink)
        reachable = set(reachable) - {sink}
        cuts.append((float(cut_value), index, reachable))

    # Drop the most expensive isolating cut; its terminal keeps the rest.
    cuts.sort(key=lambda item: item[0])
    kept = cuts[: len(terminals) - 1]
    fallback_index = cuts[-1][1]

    partition: dict[Hashable, int] = {v: fallback_index for v in graph.nodes}
    claimed: set = set()
    for _, index, side in kept:
        for vertex in side - claimed:
            partition[vertex] = index
        claimed |= side
    # Terminals always belong to their own side.
    for index, terminal in enumerate(terminals):
        partition[terminal] = index
    return partition, multiway_cut_value(graph, partition)
