"""JSON persistence for problems, placements, and result objects.

Offline optimization (the paper's model: heavy LP runs happen out of
band) needs durable artifacts: the problem snapshot the optimizer saw
and the placement it produced.  Both serialize to a stable JSON schema
with embedded schema-version tags for forward compatibility.

Beyond problems and placements, this module is the single source of
truth for the ``to_dict()``/``from_dict()`` contract shared by the
pipeline's result dataclasses — :class:`~repro.core.rounding.RoundingResult`,
:class:`~repro.core.lprr.LPRRResult`,
:class:`~repro.search.engine.EvaluationSummary`, and the LP's
:class:`~repro.core.lp.FractionalPlacement` — so the CLI's JSON output,
the plan cache (:mod:`repro.parallel.cache`), and experiment reports
all speak one schema.  Result documents that embed a placement store it
as an ``assignment`` array aligned with the problem's object order plus
the stringified object ids for validation; ``from_dict`` therefore
needs the original :class:`~repro.core.problem.PlacementProblem` (or an
identically-ordered reconstruction) and raises
:class:`~repro.exceptions.TraceFormatError` on any mismatch.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.resources import ResourceSpec
from repro.exceptions import TraceFormatError

if TYPE_CHECKING:  # imported lazily at runtime to avoid cycles
    from repro.core.lp import FractionalPlacement
    from repro.core.lprr import LPRRResult
    from repro.core.rounding import RoundingResult
    from repro.search.engine import EvaluationSummary

PROBLEM_SCHEMA = "repro/problem/v1"
PLACEMENT_SCHEMA = "repro/placement/v1"
PG_MAP_SCHEMA = "repro/pg-map/v1"
ROUNDING_RESULT_SCHEMA = "repro/rounding-result/v1"
LPRR_RESULT_SCHEMA = "repro/lprr-result/v1"
EVALUATION_SUMMARY_SCHEMA = "repro/evaluation-summary/v1"
FRACTIONAL_SCHEMA = "repro/fractional/v1"
PLAN_RESULT_SCHEMA = "repro/plan-result/v1"


def _encode_capacity(value: float) -> float | None:
    return None if np.isinf(value) else float(value)


def _decode_capacity(value: float | None) -> float:
    return np.inf if value is None else float(value)


def problem_to_dict(problem: PlacementProblem) -> dict:
    """The problem as a JSON-ready dict (object ids become strings)."""
    return {
        "schema": PROBLEM_SCHEMA,
        "objects": {
            str(obj): float(size)
            for obj, size in zip(problem.object_ids, problem.sizes)
        },
        "nodes": [
            {"id": str(node), "capacity": _encode_capacity(cap)}
            for node, cap in zip(problem.node_ids, problem.capacities)
        ],
        "pairs": [
            {
                "i": str(problem.object_ids[i]),
                "j": str(problem.object_ids[j]),
                "correlation": float(r),
                "cost": float(w),
            }
            for (i, j), r, w in zip(
                problem.pair_index, problem.correlations, problem.pair_costs
            )
        ],
        "resources": [
            {
                "name": spec.name,
                "loads": {
                    str(obj): float(load)
                    for obj, load in zip(problem.object_ids, spec.loads)
                    if load > 0
                },
                "budgets": [float(b) for b in spec.budgets],
            }
            for spec in problem.resources
        ],
    }


def problem_from_dict(data: dict) -> PlacementProblem:
    """Rebuild a problem from :func:`problem_to_dict` output.

    Note that object and node ids come back as strings regardless of
    their original type.

    Raises:
        TraceFormatError: On schema mismatch or missing fields.
    """
    if data.get("schema") != PROBLEM_SCHEMA:
        raise TraceFormatError(
            f"expected schema {PROBLEM_SCHEMA!r}, got {data.get('schema')!r}"
        )
    try:
        objects = {str(k): float(v) for k, v in data["objects"].items()}
        nodes = {
            str(entry["id"]): _decode_capacity(entry["capacity"])
            for entry in data["nodes"]
        }
        correlations = {
            (entry["i"], entry["j"]): float(entry["correlation"])
            for entry in data["pairs"]
        }
        pair_costs = {
            (entry["i"], entry["j"]): float(entry["cost"])
            for entry in data["pairs"]
        }
        resources = {
            entry["name"]: (
                {str(k): float(v) for k, v in entry["loads"].items()},
                {
                    node: float(budget)
                    for node, budget in zip(nodes, entry["budgets"])
                },
            )
            for entry in data.get("resources", [])
        }
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed problem document: {exc}") from exc
    return PlacementProblem.build(
        objects,
        nodes,
        correlations,
        pair_cost=pair_costs if pair_costs else None,
        resources=resources or None,
    )


def save_problem(problem: PlacementProblem, path: str | Path) -> None:
    """Write a problem snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(problem_to_dict(problem), fh, indent=1, sort_keys=True)


def load_problem(path: str | Path) -> PlacementProblem:
    """Read a problem snapshot written by :func:`save_problem`."""
    try:
        with open(path, encoding="utf-8") as fh:
            return problem_from_dict(json.load(fh))
    except OSError as exc:
        raise TraceFormatError(f"cannot read problem {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON in {path}: {exc}") from exc


def save_placement(placement: Placement, path: str | Path) -> None:
    """Write a placement to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(placement.to_dict(), fh, indent=1, sort_keys=True)


def load_placement(path: str | Path, problem: PlacementProblem) -> Placement:
    """Read a placement written by :func:`save_placement`."""
    try:
        with open(path, encoding="utf-8") as fh:
            return Placement.from_dict(json.load(fh), problem)
    except OSError as exc:
        raise TraceFormatError(f"cannot read placement {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON in {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Result dataclasses: the shared to_dict()/from_dict() contract
# ----------------------------------------------------------------------
def _check_schema(data: dict, expected: str) -> None:
    if data.get("schema") != expected:
        raise TraceFormatError(
            f"expected schema {expected!r}, got {data.get('schema')!r}"
        )


def _check_objects(data: dict, problem: PlacementProblem) -> None:
    """Validate that a result document aligns with ``problem``.

    Documents store assignments by object *index*, so they are only
    meaningful against a problem with the identical object order.  The
    stringified ids ride along as a tripwire for misuse.
    """
    objects = data.get("objects")
    if objects is None:
        raise TraceFormatError("result document missing object list")
    if len(objects) != problem.num_objects or any(
        str(obj) != stored
        for obj, stored in zip(problem.object_ids, objects)
    ):
        raise TraceFormatError(
            "result document does not match the problem's object order"
        )


def _assignment_fields(placement: Placement) -> dict:
    return {
        "objects": [str(obj) for obj in placement.problem.object_ids],
        "assignment": [int(k) for k in placement.assignment],
    }


def lp_stats_to_dict(stats: "LPStats") -> dict:  # noqa: F821 - lazy type
    """An :class:`~repro.core.lp.LPStats` as a JSON-ready dict."""
    return {
        "num_variables": stats.num_variables,
        "num_constraints": stats.num_constraints,
        "num_nonzeros": stats.num_nonzeros,
        "solve_seconds": stats.solve_seconds,
        "iterations": stats.iterations,
    }


def lp_stats_from_dict(data: dict) -> "LPStats":  # noqa: F821
    """Rebuild :class:`~repro.core.lp.LPStats` from its dict form."""
    from repro.core.lp import LPStats

    try:
        return LPStats(
            num_variables=int(data["num_variables"]),
            num_constraints=int(data["num_constraints"]),
            num_nonzeros=int(data["num_nonzeros"]),
            solve_seconds=float(data["solve_seconds"]),
            iterations=int(data["iterations"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed LP stats: {exc}") from exc


def rounding_result_to_dict(result: "RoundingResult") -> dict:
    """A :class:`~repro.core.rounding.RoundingResult` as a dict."""
    return {
        "schema": ROUNDING_RESULT_SCHEMA,
        "cost": float(result.cost),
        "trials": int(result.trials),
        "trial_costs": [float(c) for c in result.trial_costs],
        "rounds": int(result.rounds),
        "best_trial": int(result.best_trial),
        **_assignment_fields(result.placement),
    }


def rounding_result_from_dict(
    data: dict, problem: PlacementProblem
) -> "RoundingResult":
    """Rebuild a rounding result against the problem it was rounded on."""
    from repro.core.rounding import RoundingResult

    _check_schema(data, ROUNDING_RESULT_SCHEMA)
    _check_objects(data, problem)
    try:
        return RoundingResult(
            placement=Placement(
                problem, np.asarray(data["assignment"], dtype=np.int64)
            ),
            cost=float(data["cost"]),
            trials=int(data["trials"]),
            trial_costs=tuple(float(c) for c in data["trial_costs"]),
            rounds=int(data["rounds"]),
            best_trial=int(data["best_trial"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed rounding result: {exc}") from exc


def lprr_result_to_dict(result: "LPRRResult") -> dict:
    """An :class:`~repro.core.lprr.LPRRResult` as a dict.

    The scoped subproblem is stored by object indices plus the
    effective capacities, which is enough for ``from_dict`` to rebuild
    the exact subproblem the rounding placement lives on.
    """
    problem = result.placement.problem
    doc = {
        "schema": LPRR_RESULT_SCHEMA,
        "scope_indices": [
            problem.object_index(obj) for obj in result.scope_objects
        ],
        "lp_lower_bound": float(result.lp_lower_bound),
        "lp_stats": lp_stats_to_dict(result.lp_stats),
        "effective_capacities": [
            _encode_capacity(c) for c in result.effective_capacities
        ],
        "repaired": bool(result.repaired),
        "rounding": rounding_result_to_dict(result.rounding),
        **_assignment_fields(result.placement),
    }
    # Optional: the scoped fractional solution, carried for warm
    # starts.  Absent on decomposed plans and pre-warm-start artifacts;
    # from_dict tolerates either.
    if result.fractional is not None:
        doc["fractional"] = fractional_to_dict(result.fractional)
    return doc


def lprr_result_from_dict(data: dict, problem: PlacementProblem) -> "LPRRResult":
    """Rebuild an LPRR result against the problem it planned."""
    from repro.core.lprr import LPRRResult

    _check_schema(data, LPRR_RESULT_SCHEMA)
    _check_objects(data, problem)
    try:
        scope_objects = tuple(
            problem.object_ids[int(i)] for i in data["scope_indices"]
        )
        capacities = np.asarray(
            [_decode_capacity(c) for c in data["effective_capacities"]]
        )
        subproblem = problem.subproblem(scope_objects, capacities=capacities)
        fractional = None
        if "fractional" in data:
            fractional = fractional_from_dict(data["fractional"], subproblem)
        return LPRRResult(
            placement=Placement(
                problem, np.asarray(data["assignment"], dtype=np.int64)
            ),
            scope_objects=scope_objects,
            lp_lower_bound=float(data["lp_lower_bound"]),
            lp_stats=lp_stats_from_dict(data["lp_stats"]),
            rounding=rounding_result_from_dict(data["rounding"], subproblem),
            effective_capacities=capacities,
            repaired=bool(data["repaired"]),
            fractional=fractional,
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise TraceFormatError(f"malformed LPRR result: {exc}") from exc


def evaluation_summary_to_dict(summary: "EvaluationSummary") -> dict:
    """An :class:`~repro.search.engine.EvaluationSummary` as a dict."""
    return {
        "schema": EVALUATION_SUMMARY_SCHEMA,
        "queries": int(summary.queries),
        "total_bytes": int(summary.total_bytes),
        "total_hops": int(summary.total_hops),
        "local_fraction": float(summary.local_fraction),
        "mean_bytes_per_query": float(summary.mean_bytes_per_query),
    }


def evaluation_summary_from_dict(data: dict) -> "EvaluationSummary":
    """Rebuild an evaluation summary from its dict form."""
    from repro.search.engine import EvaluationSummary

    _check_schema(data, EVALUATION_SUMMARY_SCHEMA)
    try:
        return EvaluationSummary(
            queries=int(data["queries"]),
            total_bytes=int(data["total_bytes"]),
            total_hops=int(data["total_hops"]),
            local_fraction=float(data["local_fraction"]),
            mean_bytes_per_query=float(data["mean_bytes_per_query"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed evaluation summary: {exc}") from exc


def fractional_to_dict(fractional: "FractionalPlacement") -> dict:
    """A :class:`~repro.core.lp.FractionalPlacement` as a dict.

    Used by the plan cache's ``lp`` artifacts: the fractions matrix is
    the expensive part of the pipeline, and round-tripping it exactly
    lets a replan re-round without re-solving.
    """
    duals = fractional.capacity_duals
    return {
        "schema": FRACTIONAL_SCHEMA,
        "objects": [str(obj) for obj in fractional.problem.object_ids],
        "fractions": [[float(x) for x in row] for row in fractional.fractions],
        "lower_bound": float(fractional.lower_bound),
        "stats": lp_stats_to_dict(fractional.stats),
        "capacity_duals": (
            None if duals is None else [float(d) for d in duals]
        ),
    }


def fractional_from_dict(
    data: dict, problem: PlacementProblem
) -> "FractionalPlacement":
    """Rebuild a fractional LP solution against its problem."""
    from repro.core.lp import FractionalPlacement

    _check_schema(data, FRACTIONAL_SCHEMA)
    _check_objects(data, problem)
    try:
        fractions = np.asarray(data["fractions"], dtype=float)
        if fractions.shape != (problem.num_objects, problem.num_nodes):
            raise TraceFormatError(
                f"fractions shape {fractions.shape} does not match problem"
            )
        duals = data.get("capacity_duals")
        return FractionalPlacement(
            problem=problem,
            fractions=fractions,
            lower_bound=float(data["lower_bound"]),
            stats=lp_stats_from_dict(data["stats"]),
            capacity_duals=None if duals is None else np.asarray(duals, dtype=float),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed fractional placement: {exc}") from exc
