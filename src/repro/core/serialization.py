"""JSON persistence for problems and placements.

Offline optimization (the paper's model: heavy LP runs happen out of
band) needs durable artifacts: the problem snapshot the optimizer saw
and the placement it produced.  Both serialize to a stable JSON schema
with embedded schema-version tags for forward compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.resources import ResourceSpec
from repro.exceptions import TraceFormatError

PROBLEM_SCHEMA = "repro/problem/v1"
PLACEMENT_SCHEMA = "repro/placement/v1"


def _encode_capacity(value: float) -> float | None:
    return None if np.isinf(value) else float(value)


def _decode_capacity(value: float | None) -> float:
    return np.inf if value is None else float(value)


def problem_to_dict(problem: PlacementProblem) -> dict:
    """The problem as a JSON-ready dict (object ids become strings)."""
    return {
        "schema": PROBLEM_SCHEMA,
        "objects": {
            str(obj): float(size)
            for obj, size in zip(problem.object_ids, problem.sizes)
        },
        "nodes": [
            {"id": str(node), "capacity": _encode_capacity(cap)}
            for node, cap in zip(problem.node_ids, problem.capacities)
        ],
        "pairs": [
            {
                "i": str(problem.object_ids[i]),
                "j": str(problem.object_ids[j]),
                "correlation": float(r),
                "cost": float(w),
            }
            for (i, j), r, w in zip(
                problem.pair_index, problem.correlations, problem.pair_costs
            )
        ],
        "resources": [
            {
                "name": spec.name,
                "loads": {
                    str(obj): float(load)
                    for obj, load in zip(problem.object_ids, spec.loads)
                    if load > 0
                },
                "budgets": [float(b) for b in spec.budgets],
            }
            for spec in problem.resources
        ],
    }


def problem_from_dict(data: dict) -> PlacementProblem:
    """Rebuild a problem from :func:`problem_to_dict` output.

    Note that object and node ids come back as strings regardless of
    their original type.

    Raises:
        TraceFormatError: On schema mismatch or missing fields.
    """
    if data.get("schema") != PROBLEM_SCHEMA:
        raise TraceFormatError(
            f"expected schema {PROBLEM_SCHEMA!r}, got {data.get('schema')!r}"
        )
    try:
        objects = {str(k): float(v) for k, v in data["objects"].items()}
        nodes = {
            str(entry["id"]): _decode_capacity(entry["capacity"])
            for entry in data["nodes"]
        }
        correlations = {
            (entry["i"], entry["j"]): float(entry["correlation"])
            for entry in data["pairs"]
        }
        pair_costs = {
            (entry["i"], entry["j"]): float(entry["cost"])
            for entry in data["pairs"]
        }
        resources = {
            entry["name"]: (
                {str(k): float(v) for k, v in entry["loads"].items()},
                {
                    node: float(budget)
                    for node, budget in zip(nodes, entry["budgets"])
                },
            )
            for entry in data.get("resources", [])
        }
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed problem document: {exc}") from exc
    return PlacementProblem.build(
        objects,
        nodes,
        correlations,
        pair_cost=pair_costs if pair_costs else None,
        resources=resources or None,
    )


def save_problem(problem: PlacementProblem, path: str | Path) -> None:
    """Write a problem snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(problem_to_dict(problem), fh, indent=1, sort_keys=True)


def load_problem(path: str | Path) -> PlacementProblem:
    """Read a problem snapshot written by :func:`save_problem`."""
    try:
        with open(path, encoding="utf-8") as fh:
            return problem_from_dict(json.load(fh))
    except OSError as exc:
        raise TraceFormatError(f"cannot read problem {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON in {path}: {exc}") from exc


def placement_to_dict(placement: Placement) -> dict:
    """The placement as a JSON-ready dict."""
    return {
        "schema": PLACEMENT_SCHEMA,
        "mapping": {
            str(obj): str(node) for obj, node in placement.to_mapping().items()
        },
    }


def placement_from_dict(data: dict, problem: PlacementProblem) -> Placement:
    """Rebuild a placement against a (string-id) problem.

    Raises:
        TraceFormatError: On schema mismatch or ids absent from the
            problem.
    """
    if data.get("schema") != PLACEMENT_SCHEMA:
        raise TraceFormatError(
            f"expected schema {PLACEMENT_SCHEMA!r}, got {data.get('schema')!r}"
        )
    try:
        mapping = {str(k): str(v) for k, v in data["mapping"].items()}
        return Placement.from_mapping(problem, mapping)
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed placement document: {exc}") from exc


def save_placement(placement: Placement, path: str | Path) -> None:
    """Write a placement to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(placement_to_dict(placement), fh, indent=1, sort_keys=True)


def load_placement(path: str | Path, problem: PlacementProblem) -> Placement:
    """Read a placement written by :func:`save_placement`."""
    try:
        with open(path, encoding="utf-8") as fh:
            return placement_from_dict(json.load(fh), problem)
    except OSError as exc:
        raise TraceFormatError(f"cannot read placement {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON in {path}: {exc}") from exc
