"""One-pass streaming graph partitioner — the serving loop's replan tier.

LPRR solves the CCA relaxation well but is far too slow to run inside a
serving latency budget.  Streaming partitioners (Fennel, LDG; see
PAPERS.md "Distributed Data Placement via Graph Partitioning") place
each vertex exactly once with a greedy score that trades neighbor
affinity against a capacity penalty, touching every edge once.  That
makes replanning cost linear in the trace instead of cubic-ish in the
LP, which is what the online router needs between hot-swaps.

The scoring rule here is the weighted-LDG form: a node's score for
vertex ``v`` is the total correlation weight of ``v``'s already-placed
neighbors on that node, discounted by the node's load fraction
(``1 - load/capacity``).  Vertices whose neighbors are all unplaced (or
absent) fall back to the least-loaded feasible node, which doubles as
the balanced completion pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem

__all__ = ["streaming_greedy_placement"]


def streaming_greedy_placement(
    problem: PlacementProblem,
    order: str = "degree",
) -> Placement:
    """Place every object in one streaming pass (weighted LDG).

    Args:
        problem: The CCA instance.
        order: Stream order — ``"degree"`` (default) streams vertices
            by descending weighted degree so hubs anchor their
            communities early; ``"arrival"`` keeps the problem's object
            order, modelling a partitioner that never sees the future.

    Returns:
        A total placement.  Capacities are respected while any node
        still fits the vertex; an overflowing vertex goes to the node
        with the most free space, mirroring the greedy baseline's
        tolerance of slight overruns.
    """
    if order not in ("degree", "arrival"):
        raise ValueError(f"unknown order {order!r}")
    t, n = problem.num_objects, problem.num_nodes
    sizes = problem.sizes.astype(float)
    capacities = problem.capacities.astype(float)
    free = capacities.copy()
    resource_free = [spec.budgets.astype(float).copy() for spec in problem.resources]
    resource_loads = [spec.loads for spec in problem.resources]
    assignment = -np.ones(t, dtype=np.int64)

    adjacency, neighbor, weight = _adjacency(problem)
    if order == "degree":
        degree = np.zeros(t)
        if problem.num_pairs:
            np.add.at(degree, problem.pair_index[:, 0], problem.pair_weights)
            np.add.at(degree, problem.pair_index[:, 1], problem.pair_weights)
        stream = np.argsort(-degree, kind="stable")
    else:
        stream = np.arange(t)

    # ``1 - load/capacity`` with degenerate capacities treated as full.
    safe_cap = np.where(capacities > 0, capacities, 1.0)
    for v in stream:
        lo, hi = adjacency[v], adjacency[v + 1]
        gains = np.zeros(n)
        if hi > lo:
            nb, w = neighbor[lo:hi], weight[lo:hi]
            placed = assignment[nb] >= 0
            if placed.any():
                np.add.at(gains, assignment[nb[placed]], w[placed])

        feasible = free >= sizes[v]
        for rf, loads in zip(resource_free, resource_loads):
            feasible &= rf >= loads[v]
        if not feasible.any():
            k = int(np.argmax(free))
        else:
            score = gains * np.maximum(free, 0.0) / safe_cap
            score[~feasible] = -np.inf
            k = int(np.argmax(score))
            if gains[k] <= 0.0:
                # No placed neighbors anywhere feasible: balance instead
                # (least loaded fraction, lowest index on ties).
                fill = np.where(feasible, (capacities - free) / safe_cap, np.inf)
                k = int(np.argmin(fill))
        assignment[v] = k
        free[k] -= sizes[v]
        for rf, loads in zip(resource_free, resource_loads):
            rf[k] -= loads[v]

    return Placement(problem, assignment)


def _adjacency(
    problem: PlacementProblem,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency (offsets, neighbors, weights) over the pair list."""
    t = problem.num_objects
    if problem.num_pairs == 0:
        offsets = np.zeros(t + 1, dtype=np.int64)
        return offsets, np.empty(0, dtype=np.int64), np.empty(0)
    src = np.concatenate([problem.pair_index[:, 0], problem.pair_index[:, 1]])
    dst = np.concatenate([problem.pair_index[:, 1], problem.pair_index[:, 0]])
    w = np.concatenate([problem.pair_weights, problem.pair_weights])
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=t)
    offsets = np.zeros(t + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, dst[order], w[order]
