"""Incremental re-optimization: migrating between placements.

The paper's premise is that correlations are "skewed and yet stable
over time", so a placement stays effective for long periods — but they
do drift (Figure 2B measures 1.2% of pairs changing per month).  A
deployment therefore periodically re-optimizes and must *migrate*
objects, which itself costs network traffic.

This module turns a (current placement, target placement) pair into an
executable :class:`MigrationPlan`, and — because full convergence may
move more bytes than a maintenance window allows — can select only the
most profitable subset of moves under a byte budget, ranked by marginal
communication saving per byte migrated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.placement import Placement
from repro.core.problem import NodeId, ObjectId
from repro.exceptions import PlacementError


@dataclass(frozen=True)
class Migration:
    """One object move.

    Attributes:
        obj: The object to move.
        source: Node currently hosting it.
        destination: Node it moves to.
        size: Bytes moved (the object's size).
    """

    obj: ObjectId
    source: NodeId
    destination: NodeId
    size: float


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered list of moves with its cost accounting.

    Attributes:
        migrations: Moves in execution order.
        bytes_moved: Total migration traffic.
        cost_before: Communication cost of the starting placement
            (under the problem the plan was computed against).
        cost_after: Communication cost after applying every move.
    """

    migrations: tuple[Migration, ...]
    bytes_moved: float
    cost_before: float
    cost_after: float

    @property
    def num_moves(self) -> int:
        """Number of objects moved."""
        return len(self.migrations)

    @property
    def saving(self) -> float:
        """Communication cost reduction the plan achieves."""
        return self.cost_before - self.cost_after

    def apply(self, placement: Placement) -> Placement:
        """Apply the plan to a placement (of the same problem shape).

        Raises:
            PlacementError: If a move's source does not match where the
                object actually is.
        """
        problem = placement.problem
        assignment = placement.assignment.copy()
        for move in self.migrations:
            i = problem.object_index(move.obj)
            if problem.node_ids[assignment[i]] != move.source:
                raise PlacementError(
                    f"cannot apply migration of {move.obj!r}: expected it on "
                    f"{move.source!r}, found {problem.node_ids[assignment[i]]!r}"
                )
            assignment[i] = problem.node_index(move.destination)
        return Placement(problem, assignment)


def diff_placements(current: Placement, target: Placement) -> MigrationPlan:
    """The full plan that turns ``current`` into ``target``.

    Both placements must be over the same problem (same objects, nodes,
    and sizes); costs are evaluated under ``target.problem`` so the
    plan reflects the *new* correlations after a drift-driven replan.
    """
    problem = target.problem
    if current.problem.object_ids != problem.object_ids or (
        current.problem.node_ids != problem.node_ids
    ):
        raise PlacementError("placements cover different objects or nodes")

    moves = []
    for i in np.where(current.assignment != target.assignment)[0]:
        moves.append(
            Migration(
                obj=problem.object_ids[i],
                source=problem.node_ids[current.assignment[i]],
                destination=problem.node_ids[target.assignment[i]],
                size=float(problem.sizes[i]),
            )
        )
    start = Placement(problem, current.assignment)
    return MigrationPlan(
        migrations=tuple(moves),
        bytes_moved=float(sum(m.size for m in moves)),
        cost_before=start.communication_cost(),
        cost_after=target.communication_cost(),
    )


def select_migrations(
    current: Placement,
    target: Placement,
    budget_bytes: float | None = None,
    respect_capacity: bool = True,
) -> MigrationPlan:
    """The most profitable budget-respecting subset of a full plan.

    Moves toward the target are applied greedily in order of marginal
    communication saving per byte moved, re-evaluated after every move
    (moving one member of a pair changes the gain of moving the other).
    Selection stops when the budget is exhausted or no remaining move
    helps.

    Args:
        current: Where objects are now.
        target: Where the (re-)optimizer wants them.
        budget_bytes: Maximum total migration traffic; None = unlimited
            (but still only moves with nonnegative marginal gain).
        respect_capacity: Skip moves whose destination lacks space at
            that point of the plan (deferred moves retry as space frees
            up).

    Returns:
        A :class:`MigrationPlan` evaluated under ``target.problem``.
    """
    problem = target.problem
    if current.problem.object_ids != problem.object_ids or (
        current.problem.node_ids != problem.node_ids
    ):
        raise PlacementError("placements cover different objects or nodes")
    if budget_bytes is not None and budget_bytes < 0:
        raise ValueError("budget_bytes must be nonnegative")

    assignment = current.assignment.copy()
    loads = np.bincount(assignment, weights=problem.sizes, minlength=problem.num_nodes)
    capacities = problem.capacities

    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(problem.num_objects)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    def gain(obj: int) -> float:
        """Cost reduction from moving ``obj`` to its target node now."""
        src, dst = assignment[obj], target.assignment[obj]
        value = 0.0
        for neighbor, weight in adjacency[obj]:
            where = assignment[neighbor]
            if where == src:
                value -= weight  # colocated pair becomes split
            elif where == dst:
                value += weight  # split pair becomes colocated
        return value

    candidates = set(np.where(assignment != target.assignment)[0].tolist())
    cost_before = Placement(problem, current.assignment).communication_cost()
    moves: list[Migration] = []
    moved_bytes = 0.0

    while candidates:
        best_obj, best_rate, best_gain = -1, -np.inf, 0.0
        for obj in candidates:
            size = problem.sizes[obj]
            if budget_bytes is not None and moved_bytes + size > budget_bytes + 1e-9:
                continue
            dst = target.assignment[obj]
            if respect_capacity and np.isfinite(capacities[dst]):
                if loads[dst] + size > capacities[dst] + 1e-9:
                    continue
            g = gain(int(obj))
            rate = g / size
            if rate > best_rate:
                best_obj, best_rate, best_gain = int(obj), rate, g
        if best_obj < 0 or best_gain < 0:
            break
        src, dst = assignment[best_obj], target.assignment[best_obj]
        moves.append(
            Migration(
                obj=problem.object_ids[best_obj],
                source=problem.node_ids[src],
                destination=problem.node_ids[dst],
                size=float(problem.sizes[best_obj]),
            )
        )
        moved_bytes += problem.sizes[best_obj]
        loads[src] -= problem.sizes[best_obj]
        loads[dst] += problem.sizes[best_obj]
        assignment[best_obj] = dst
        candidates.discard(best_obj)

    cost_after = Placement(problem, assignment).communication_cost()
    return MigrationPlan(
        migrations=tuple(moves),
        bytes_moved=float(moved_bytes),
        cost_before=cost_before,
        cost_after=cost_after,
    )
