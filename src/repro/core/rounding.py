"""Randomized rounding of fractional placements (Algorithm 2.1).

Each round draws a node ``k`` uniformly and a threshold ``r`` uniformly
from ``[0, 1]``, then places every not-yet-placed object ``i`` with
``x[i,k] >= r`` on node ``k``.  Lemma 1 shows each object lands on node
``k`` with probability exactly ``x[i,k]``; Lemma 2 shows a pair
separates with probability at most ``z[i,j]``, so the expected rounded
cost equals the LP optimum (Theorem 2).

Because the guarantee is in expectation, :func:`round_best_of` repeats
the rounding and keeps the cheapest feasible draw, as Section 2.3
recommends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.lp import FractionalPlacement
from repro.core.placement import Placement
from repro.exceptions import SolverError


@dataclass(frozen=True)
class RoundingResult:
    """Outcome of one or more randomized-rounding trials.

    Attributes:
        placement: The selected (cheapest) rounded placement.
        cost: Its communication cost.
        trials: Number of rounding trials performed.
        trial_costs: Cost of every trial, in order.
        rounds: Threshold rounds used by the selected trial.
        best_trial: Index into ``trial_costs`` of the selected trial
            (0 for aggregated results that kept no per-trial detail).
    """

    placement: Placement
    cost: float
    trials: int
    trial_costs: tuple[float, ...]
    rounds: int
    best_trial: int = 0

    @property
    def cost_std(self) -> float:
        """Standard deviation of the trial costs (0 for one trial)."""
        return float(np.std(self.trial_costs))

    def to_dict(self) -> dict:
        """JSON-ready form (see :mod:`repro.core.serialization`)."""
        from repro.core.serialization import rounding_result_to_dict

        return rounding_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict, problem) -> "RoundingResult":
        """Rebuild from :meth:`to_dict` output against its problem."""
        from repro.core.serialization import rounding_result_from_dict

        return rounding_result_from_dict(data, problem)


def round_fractional(
    fractional: FractionalPlacement,
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
    max_rounds: int | None = None,
) -> tuple[Placement, int]:
    """Run Algorithm 2.1 once.

    Args:
        fractional: The LP solution to round.
        rng: Seed, :class:`~numpy.random.SeedSequence`, or generator
            for reproducibility.  Parallel callers must pass a spawned
            ``SeedSequence`` child or a dedicated generator per trial
            (see :mod:`repro.parallel.seeds`); sharing one generator
            across workers would correlate their streams.
        max_rounds: Safety cap on threshold rounds; defaults to
            ``4 * n * (ln t + 10)`` which the coupon-collector argument
            makes astronomically safe.

    Returns:
        ``(placement, rounds_used)``.

    Raises:
        SolverError: If the cap is hit (indicates degenerate input,
            e.g. rows that sum to far less than 1).
    """
    rng = np.random.default_rng(rng)
    fractions = fractional.fractions
    t, n = fractions.shape
    if max_rounds is None:
        max_rounds = int(4 * n * (np.log(max(t, 2)) + 10))

    assignment = -np.ones(t, dtype=np.int64)
    unplaced = np.ones(t, dtype=bool)
    rounds = 0
    while unplaced.any():
        if rounds >= max_rounds:
            raise SolverError(
                f"rounding did not converge in {max_rounds} rounds; "
                "check that fractional rows sum to 1"
            )
        rounds += 1
        k = int(rng.integers(n))
        threshold = rng.random()
        hit = unplaced & (fractions[:, k] >= threshold)
        assignment[hit] = k
        unplaced[hit] = False
    return Placement(fractional.problem, assignment), rounds


# First pre-drawn block per trial; each refill doubles the trial's
# draw capacity.  Part of the batched engine's stream contract: trial
# ``i`` consumes blocks of 64, 64, 128, 256, ... draws from its own
# generator, refilling only while it is still unplaced, so its stream
# is a pure function of its seed — never of other trials or workers.
_DRAW_BLOCK = 64


def _draw_round_block(
    rng: np.random.Generator, n: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-draw ``count`` rounds: node choices then thresholds."""
    return rng.integers(0, n, size=count), rng.random(count)


def round_trials_batched(
    fractional: FractionalPlacement,
    seed_seqs: Sequence[np.random.SeedSequence | int],
    max_rounds: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run Algorithm 2.1 for many trials as one vectorized sweep.

    Every trial draws its rounds from its own spawned generator in
    fixed doubling blocks (see ``_DRAW_BLOCK``), then all trials
    advance together: round ``r`` applies each active trial's
    ``(node, threshold)`` draw to a ``(trials, t)`` membership matrix
    in a handful of numpy operations, instead of one Python loop
    iteration per trial per round.  Output is byte-identical to the
    per-trial reference :func:`_round_trials_loop` given the same
    seeds.

    Args:
        fractional: The LP solution to round.
        seed_seqs: One seed (or :class:`~numpy.random.SeedSequence`)
            per trial; use :func:`repro.parallel.spawn_seed_sequences`
            for worker-count-independent streams.
        max_rounds: Safety cap per trial, defaulting to the same
            coupon-collector bound as :func:`round_fractional`.

    Returns:
        ``(assignments, rounds)`` — an ``(trials, t)`` int64 matrix of
        node assignments and the rounds each trial used.

    Raises:
        SolverError: If any trial hits the cap (degenerate input).
    """
    fractions = fractional.fractions
    t, n = fractions.shape
    trials = len(seed_seqs)
    if max_rounds is None:
        max_rounds = int(4 * n * (np.log(max(t, 2)) + 10))

    rngs = [np.random.default_rng(seed) for seed in seed_seqs]
    capacity = min(_DRAW_BLOCK, max_rounds) if max_rounds > 0 else _DRAW_BLOCK
    ks = np.zeros((trials, capacity), dtype=np.int64)
    thresholds = np.zeros((trials, capacity), dtype=float)
    for row, rng in enumerate(rngs):
        ks[row], thresholds[row] = _draw_round_block(rng, n, capacity)

    assignment = -np.ones((trials, t), dtype=np.int64)
    unplaced = np.ones((trials, t), dtype=bool)
    active = unplaced.any(axis=1)
    rounds = np.zeros(trials, dtype=np.int64)

    r = 0
    while active.any():
        if r >= max_rounds:
            raise SolverError(
                f"rounding did not converge in {max_rounds} rounds; "
                "check that fractional rows sum to 1"
            )
        if r >= capacity:
            # Double every still-active trial's draw capacity.  The
            # refill schedule is per trial and fixed, so a trial's
            # stream never depends on how trials are batched.
            grow = capacity
            ks = np.concatenate(
                [ks, np.zeros((trials, grow), dtype=np.int64)], axis=1
            )
            thresholds = np.concatenate(
                [thresholds, np.zeros((trials, grow), dtype=float)], axis=1
            )
            for row in np.flatnonzero(active):
                ks[row, capacity:], thresholds[row, capacity:] = _draw_round_block(
                    rngs[row], n, grow
                )
            capacity += grow
        act = np.flatnonzero(active)
        k = ks[act, r]
        hit = unplaced[act] & (fractions.T[k] >= thresholds[act, r][:, None])
        chunk = assignment[act]
        np.copyto(chunk, k[:, None], where=hit)
        assignment[act] = chunk
        still = unplaced[act] & ~hit
        unplaced[act] = still
        rounds[act] = r + 1
        finished = ~still.any(axis=1)
        if finished.any():
            active[act[finished]] = False
        r += 1
    return assignment, rounds


def _round_trials_loop(
    fractional: FractionalPlacement,
    seed_seqs: Sequence[np.random.SeedSequence | int],
    max_rounds: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-trial reference for :func:`round_trials_batched`.

    Consumes the exact same pre-drawn blocks per trial, but evaluates
    them with the classic one-trial-at-a-time loop.  Kept as the
    equivalence oracle for the property tests and as the "before" side
    of the ``repro bench`` rounding scenario.
    """
    fractions = fractional.fractions
    t, n = fractions.shape
    trials = len(seed_seqs)
    if max_rounds is None:
        max_rounds = int(4 * n * (np.log(max(t, 2)) + 10))

    assignments = -np.ones((trials, t), dtype=np.int64)
    rounds_used = np.zeros(trials, dtype=np.int64)
    for row, seed in enumerate(seed_seqs):
        rng = np.random.default_rng(seed)
        capacity = min(_DRAW_BLOCK, max_rounds) if max_rounds > 0 else _DRAW_BLOCK
        ks, thresholds = _draw_round_block(rng, n, capacity)
        assignment = -np.ones(t, dtype=np.int64)
        unplaced = np.ones(t, dtype=bool)
        r = 0
        while unplaced.any():
            if r >= max_rounds:
                raise SolverError(
                    f"rounding did not converge in {max_rounds} rounds; "
                    "check that fractional rows sum to 1"
                )
            if r >= capacity:
                more_ks, more_thresholds = _draw_round_block(rng, n, capacity)
                ks = np.concatenate([ks, more_ks])
                thresholds = np.concatenate([thresholds, more_thresholds])
                capacity *= 2
            k = int(ks[r])
            hit = unplaced & (fractions[:, k] >= thresholds[r])
            assignment[hit] = k
            unplaced[hit] = False
            r += 1
        assignments[row] = assignment
        rounds_used[row] = r
    return assignments, rounds_used


def round_best_of(
    fractional: FractionalPlacement,
    trials: int = 10,
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
    capacity_tolerance: float | None = None,
) -> RoundingResult:
    """Repeat the rounding and keep the cheapest acceptable placement.

    All trials consume one sequential random stream, so the result
    depends on trial order; this is the serial legacy path.  For the
    worker-count-independent variant (per-trial spawned seeds, optional
    process-pool fan-out) use
    :func:`repro.parallel.parallel_round_best_of`.

    Args:
        fractional: The LP solution to round.
        trials: Number of independent rounding trials (``>= 1``).
        rng: Seed, :class:`~numpy.random.SeedSequence`, or generator.
        capacity_tolerance: When given, a trial is only eligible if its
            placement satisfies capacities within this relative
            tolerance; if no trial qualifies, the overall cheapest is
            returned (matching the paper's soft treatment of
            Theorem 3's in-expectation capacity guarantee).

    Returns:
        A :class:`RoundingResult` describing the selected trial.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    rng = np.random.default_rng(rng)

    best: Placement | None = None
    best_cost = np.inf
    best_rounds = 0
    best_index = 0
    fallback: Placement | None = None
    fallback_cost = np.inf
    fallback_rounds = 0
    fallback_index = 0
    costs: list[float] = []
    cost_hist = obs.histogram("rounding.trial_cost")
    rounds_hist = obs.histogram("rounding.trial_rounds")

    with obs.span("rounding", trials=trials) as rounding_span:
        for index in range(trials):
            placement, rounds = round_fractional(fractional, rng)
            cost = placement.communication_cost()
            costs.append(cost)
            cost_hist.observe(cost)
            rounds_hist.observe(rounds)
            if cost < fallback_cost:
                fallback, fallback_cost = placement, cost
                fallback_rounds, fallback_index = rounds, index
            if capacity_tolerance is not None and not placement.is_feasible(
                capacity_tolerance
            ):
                continue
            if cost < best_cost:
                best, best_cost = placement, cost
                best_rounds, best_index = rounds, index

        feasible = best is not None
        if best is None:
            best, best_cost = fallback, fallback_cost
            best_rounds, best_index = fallback_rounds, fallback_index
        assert best is not None  # trials >= 1 guarantees a fallback
        rounding_span.set(
            best_trial=best_index, best_cost=float(best_cost), feasible=feasible
        )
    obs.counter("rounding.trials").inc(trials)
    return RoundingResult(
        placement=best,
        cost=float(best_cost),
        trials=trials,
        trial_costs=tuple(costs),
        rounds=best_rounds,
        best_trial=best_index,
    )
