"""LPRR: the paper's end-to-end placement pipeline.

``LPRRPlanner`` composes the pieces of Sections 2–3 the way the
evaluation (Section 4) runs them:

1. Rank objects by importance and keep the top ``scope`` (Section 3.1,
   important-object partial optimization).
2. Place every out-of-scope object by random MD5 hashing.
3. Build conservative per-node capacities for the in-scope LP — the
   paper uses twice the average per-node load (Section 4.1).
4. Solve the relaxed LP (Section 2.2) and round it with best-of-``k``
   randomized rounding (Algorithm 2.1, Section 2.3).
5. Merge the two partial placements into a total placement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.decompose import component_subproblems
from repro.core.greedy import greedy_placement
from repro.core.hashing import hash_node
from repro.core.importance import top_important
from repro.core.lp import (
    FractionalPlacement,
    LPStats,
    WarmStart,
    solve_placement_lp,
)
from repro.core.placement import Placement
from repro.core.problem import ObjectId, PlacementProblem
from repro.core.repair import repair_capacity
from repro.core.rounding import RoundingResult, round_best_of

if TYPE_CHECKING:  # imported lazily at runtime (repro.parallel imports core)
    from repro.parallel.cache import PlanCache


@dataclass(frozen=True)
class LPRRResult:
    """Everything produced by one LPRR planning run.

    Attributes:
        placement: Total placement over the full problem.
        scope_objects: Object ids that went through the LP.
        lp_lower_bound: LP optimum of the scoped subproblem — the
            expected rounded cost over in-scope pairs (Theorem 2).
        lp_stats: LP size and solve statistics.
        rounding: Details of the randomized-rounding trials.
        effective_capacities: The conservative per-node capacities the
            LP actually used.
        repaired: Whether the rounded placement violated the effective
            capacities and was post-processed by
            :func:`repro.core.repair.repair_capacity`.
        from_cache: Whether this result was served from a
            :class:`~repro.parallel.cache.PlanCache` instead of being
            computed (the LP solve and rounding were skipped).
        fractional: The scoped fractional solution itself, carried so
            a later replan can warm-start the first-order backend from
            it (see :class:`~repro.core.lp.WarmStart`).  ``None`` for
            decomposed plans and for cached artifacts written before
            warm-start support.
    """

    placement: Placement
    scope_objects: tuple[ObjectId, ...]
    lp_lower_bound: float
    lp_stats: LPStats
    rounding: RoundingResult
    effective_capacities: np.ndarray
    repaired: bool
    from_cache: bool = False
    fractional: FractionalPlacement | None = None

    @property
    def cost(self) -> float:
        """Communication cost of the final total placement."""
        return self.placement.communication_cost()

    def to_dict(self) -> dict:
        """JSON-ready form (see :mod:`repro.core.serialization`)."""
        from repro.core.serialization import lprr_result_to_dict

        return lprr_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict, problem: PlacementProblem) -> "LPRRResult":
        """Rebuild from :meth:`to_dict` output against its problem."""
        from repro.core.serialization import lprr_result_from_dict

        return lprr_result_from_dict(data, problem)


class LPRRPlanner:
    """Correlation-aware planner using LP relaxation + randomized rounding.

    Args:
        scope: Number of most-important objects to optimize; ``None``
            optimizes all objects (no partial optimization).
        capacity_factor: Conservative capacity as a multiple of the
            average per-node load of the optimized objects.  The paper
            uses 2.0.  ``None`` uses the problem's own capacities.
        rounding_trials: Randomized-rounding repetitions; the cheapest
            capacity-respecting trial wins (Section 2.3).
        capacity_tolerance: Relative slack when judging a rounding
            trial feasible (Theorem 3 only bounds the *expected* load).
        seed: Seed for the rounding randomness.
        backend: Relaxation backend (``"auto"``, ``"highs"``,
            ``"highs-ipm"``, ``"simplex"``, or ``"fo"`` for the
            first-order solver — see docs/SOLVERS.md).
        rounding: ``"randomized"`` (default) runs the paper's
            best-of-``k`` dependent rounding; ``"argmax"`` rounds each
            row to its largest fraction and repairs capacity greedily
            — deterministic without a seed, and the natural partner of
            the ``"fo"`` backend, whose annealed iterates are already
            near-integral (randomized rounding remains available for
            any backend combination).
        hash_salt: Salt for the out-of-scope hash placement.
        repair: When True (default), a rounded placement that exceeds
            the effective capacities beyond ``capacity_tolerance`` is
            repaired by minimum-cost migrations (an engineering
            addition beyond the paper; see :mod:`repro.core.repair`).
        decompose: When True, solve one LP per connected component of
            the correlation graph instead of one monolithic LP — same
            results under conservative capacities (components only
            interact through capacity, which the relaxation treats in
            expectation), drastically faster at wide scopes.
        jobs: Execution engine selector.  ``None`` (default) is the
            legacy serial path, byte-identical to pre-parallel releases
            for the same seed.  Any integer ``>= 1`` selects the
            deterministic parallel engine: rounding trials (and, with
            ``decompose``, per-component LPs) use per-task seeds
            spawned from ``seed``, run inline when ``jobs == 1`` and on
            a process pool of that size when larger — the placement is
            identical for every ``jobs`` value.  Negative means one
            worker per CPU.
        cache: Optional :class:`~repro.parallel.cache.PlanCache`.  When
            set, whole plans and LP solutions are memoized by problem
            fingerprint + configuration signature; a warm replan skips
            the LP solve entirely and returns a result flagged
            ``from_cache=True``.  A cached artifact that parses but no
            longer deserializes (half-written, schema drift) degrades
            to a miss (``cache.corrupt`` counter) instead of failing
            the plan.
        lp_time_limit: Optional LP solver wall-clock budget in seconds;
            an exhausted budget raises
            :class:`~repro.exceptions.SolverError` (the resilient
            planning chain catches it and falls back).
        lp_iteration_limit: Optional LP solver iteration budget, same
            semantics.
        warm_start: Optional :class:`~repro.core.lp.WarmStart` from a
            previous plan's ``fractional``; consumed only by the
            ``"fo"`` backend, where it skips the annealing phase and
            typically converges in a fraction of the cold iterations.
            A warm-started plan bypasses the plan and LP caches in
            both directions (its result depends on state outside the
            cache signature).

    Example:
        >>> import numpy as np
        >>> problem = PlacementProblem.build(
        ...     {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
        ...     {0: 2.0, 1: 2.0},
        ...     {("a", "b"): 0.5, ("c", "d"): 0.5},
        ... )
        >>> result = LPRRPlanner(seed=0).plan(problem)
        >>> result.cost
        0.0
    """

    def __init__(
        self,
        scope: int | None = None,
        capacity_factor: float | None = 2.0,
        rounding_trials: int = 10,
        capacity_tolerance: float = 0.05,
        seed: int | None = None,
        backend: str = "auto",
        hash_salt: str = "",
        repair: bool = True,
        decompose: bool = False,
        jobs: int | None = None,
        cache: "PlanCache | None" = None,
        lp_time_limit: float | None = None,
        lp_iteration_limit: int | None = None,
        rounding: str = "randomized",
        warm_start: WarmStart | None = None,
    ):
        if scope is not None and scope < 1:
            raise ValueError("scope must be positive (or None for full scope)")
        if capacity_factor is not None and capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        if rounding not in ("randomized", "argmax"):
            raise ValueError(
                f"unknown rounding {rounding!r}; use 'randomized' or 'argmax'"
            )
        self.scope = scope
        self.capacity_factor = capacity_factor
        self.rounding_trials = rounding_trials
        self.capacity_tolerance = capacity_tolerance
        self.seed = seed
        self.backend = backend
        self.rounding = rounding
        self.hash_salt = hash_salt
        self.repair = repair
        self.decompose = decompose
        self.jobs = jobs
        self.cache = cache
        self.lp_time_limit = lp_time_limit
        self.lp_iteration_limit = lp_iteration_limit
        self.warm_start = warm_start
        # Filled by each _plan call: backend name, warm-start outcome
        # ("hit"/"miss"/"off"), matched-object count, solver iterations,
        # and argmax repair moves.  Planner strategies copy this into
        # PlanResult.diagnostics.
        self.last_solver_info: dict = {}

    def _signature(self) -> str:
        """Canonical configuration signature for cache keying.

        ``jobs`` itself is excluded: within one engine the result is
        worker-count-independent by construction, so plans computed at
        any parallelism are interchangeable.  The *engine* is included
        because the legacy sequential-stream path and the spawned-seed
        path round differently for the same seed.
        """
        knobs = {
            "scope": self.scope,
            "capacity_factor": self.capacity_factor,
            "rounding_trials": self.rounding_trials,
            "capacity_tolerance": self.capacity_tolerance,
            "seed": self.seed,
            "backend": self.backend,
            "hash_salt": self.hash_salt,
            "repair": self.repair,
            "decompose": self.decompose,
            # "spawned-seeds-batched" invalidates caches written by the
            # pre-batched engine, whose trials drew rounds one at a time
            # instead of in pre-drawn blocks.
            "engine": "legacy" if self.jobs is None else "spawned-seeds-batched",
        }
        # Solve limits and non-default rounding join the key only when
        # set, so existing caches stay valid for the (default)
        # unlimited randomized configuration.
        if self.lp_time_limit is not None:
            knobs["lp_time_limit"] = self.lp_time_limit
        if self.lp_iteration_limit is not None:
            knobs["lp_iteration_limit"] = self.lp_iteration_limit
        if self.rounding != "randomized":
            knobs["rounding"] = self.rounding
        return json.dumps(knobs, sort_keys=True)

    def plan(self, problem: PlacementProblem) -> LPRRResult:
        """Compute a correlation-aware placement for ``problem``.

        With a cache configured, a fingerprint hit returns the stored
        result (``from_cache=True``) without building or solving any
        LP; otherwise the freshly planned result is stored before
        returning.  A warm-started plan skips the cache in both
        directions: its result depends on the previous fractional
        solution, which is not part of the cache signature.
        """
        if self.cache is None or self.warm_start is not None:
            return self._plan(problem)

        from repro.parallel.cache import problem_fingerprint, signature_key

        key = signature_key(problem_fingerprint(problem), self._signature())
        doc = self.cache.load("plan", key)
        if doc is not None:
            try:
                with obs.span("lprr.plan.cached", objects=problem.num_objects):
                    result = replace(
                        LPRRResult.from_dict(doc, problem), from_cache=True
                    )
            except Exception:
                # A parseable-but-wrong artifact (half-written store,
                # schema drift) must not poison every warm replan:
                # degrade to a miss and solve fresh.
                obs.counter("cache.corrupt").inc()
                obs.counter("cache.plan.corrupt").inc()
            else:
                obs.counter("lprr.plans").inc()
                return result
        result = self._plan(problem)
        self.cache.store("plan", key, result.to_dict())
        return result

    def _solve_lp(self, subproblem: PlacementProblem) -> FractionalPlacement:
        """Solve the scoped LP, consulting the ``lp`` cache when set.

        LP artifacts are keyed by subproblem + backend only, so a
        replan with a different seed or trial count still reuses the
        expensive solve and only re-rounds.  Warm-started solves skip
        the cache (same reasoning as in :meth:`plan`).
        """
        if self.cache is None or self.warm_start is not None:
            return self._solve_lp_fresh(subproblem)

        from repro.core.serialization import (
            fractional_from_dict,
            fractional_to_dict,
        )
        from repro.parallel.cache import problem_fingerprint, signature_key

        key = signature_key(
            problem_fingerprint(subproblem),
            json.dumps({"backend": self.backend}, sort_keys=True),
        )
        doc = self.cache.load("lp", key)
        if doc is not None:
            try:
                with obs.span("lprr.lp.cached", objects=subproblem.num_objects):
                    return fractional_from_dict(doc, subproblem)
            except Exception:
                obs.counter("cache.corrupt").inc()
                obs.counter("cache.lp.corrupt").inc()
        fractional = self._solve_lp_fresh(subproblem)
        self.cache.store("lp", key, fractional_to_dict(fractional))
        return fractional

    def _solve_lp_fresh(self, subproblem: PlacementProblem) -> FractionalPlacement:
        return solve_placement_lp(
            subproblem,
            backend=self.backend,
            time_limit=self.lp_time_limit,
            iteration_limit=self.lp_iteration_limit,
            warm_start=self.warm_start,
        )

    def _round(self, fractional: FractionalPlacement) -> RoundingResult:
        """Round per ``self.rounding`` via the engine selected by ``jobs``."""
        if self.rounding == "argmax":
            return self._round_argmax(fractional)
        if self.jobs is None:
            return round_best_of(
                fractional,
                trials=self.rounding_trials,
                rng=self.seed,
                capacity_tolerance=self.capacity_tolerance,
            )
        from repro.parallel import parallel_round_best_of

        return parallel_round_best_of(
            fractional,
            trials=self.rounding_trials,
            root_seed=self.seed,
            jobs=self.jobs,
            capacity_tolerance=self.capacity_tolerance,
        )

    def _round_argmax(self, fractional: FractionalPlacement) -> RoundingResult:
        """Deterministic rounding: per-row argmax + greedy repair.

        A single trial with no randomness; capacity overflow is
        repaired greedily along the fractions (see
        :func:`repro.lpsolve.firstorder.greedy_capacity_repair`), and
        anything it cannot drain is left to the planner-level repair.
        """
        from repro.lpsolve.firstorder import greedy_capacity_repair, round_argmax

        problem = fractional.problem
        assignment = round_argmax(fractional.fractions)
        assignment, moves = greedy_capacity_repair(
            assignment,
            fractional.fractions,
            problem.sizes,
            problem.capacities,
            tolerance=self.capacity_tolerance,
        )
        self.last_solver_info["repair_moves"] = moves
        placement = Placement(problem, assignment)
        cost = placement.communication_cost()
        return RoundingResult(
            placement=placement,
            cost=cost,
            trials=1,
            trial_costs=(cost,),
            rounds=0,
        )

    def _plan(self, problem: PlacementProblem) -> LPRRResult:
        scope = problem.num_objects if self.scope is None else min(
            self.scope, problem.num_objects
        )
        with obs.span(
            "lprr.plan",
            objects=problem.num_objects,
            nodes=problem.num_nodes,
            scope=scope,
        ) as plan_span:
            with obs.span("lprr.scope"):
                scoped_ids = top_important(problem, scope)
                scoped_set = set(scoped_ids)

            assignment = np.empty(problem.num_objects, dtype=np.int64)
            with obs.span(
                "lprr.hash", out_of_scope=problem.num_objects - len(scoped_set)
            ):
                for i, obj in enumerate(problem.object_ids):
                    if obj not in scoped_set:
                        assignment[i] = hash_node(
                            obj, problem.num_nodes, self.hash_salt
                        )

            capacities = self._effective_capacities(problem, scoped_ids)
            subproblem = problem.subproblem(scoped_ids, capacities=capacities)
            self.last_solver_info = {"backend": self.backend}
            if self.backend == "fo":
                if self.warm_start is None:
                    self.last_solver_info["warm_start"] = "off"
                else:
                    _, hits = self.warm_start.matrix(subproblem)
                    self.last_solver_info["warm_start"] = "hit" if hits else "miss"
                    self.last_solver_info["warm_hits"] = hits
            fractional = None
            with obs.span("lprr.lp", decompose=self.decompose):
                if self.decompose:
                    rounding, lower_bound, stats = self._plan_decomposed(subproblem)
                else:
                    fractional = self._solve_lp(subproblem)
                    rounding = self._round(fractional)
                    lower_bound = fractional.lower_bound
                    stats = fractional.stats
            self.last_solver_info["iterations"] = stats.iterations
            scoped_placement = rounding.placement
            repaired = False
            if self.repair and not scoped_placement.is_feasible(
                self.capacity_tolerance
            ):
                # Theorem 3 only holds in expectation; this draw violated
                # the conservative capacities, so the paper's algorithm
                # gives no further guidance.  Take the cheaper of two
                # capacity-respecting completions: minimum-cost repair of
                # the rounded placement, or the greedy heuristic run on the
                # same scoped subproblem.
                with obs.span("lprr.repair"):
                    candidates = [
                        repair_capacity(
                            scoped_placement, tolerance=self.capacity_tolerance
                        )
                    ]
                    greedy = greedy_placement(subproblem)
                    if greedy.is_feasible(self.capacity_tolerance):
                        candidates.append(greedy)
                    scoped_placement = min(
                        candidates, key=lambda p: p.communication_cost()
                    )
                    repaired = True

            for local_i, obj in enumerate(subproblem.object_ids):
                assignment[problem.object_index(obj)] = scoped_placement.assignment[
                    local_i
                ]

            placement = Placement(problem, assignment)
            plan_span.set(
                repaired=repaired,
                lp_lower_bound=float(lower_bound),
                cost=placement.communication_cost(),
            )
        obs.counter("lprr.plans").inc()
        return LPRRResult(
            placement=placement,
            scope_objects=tuple(scoped_ids),
            lp_lower_bound=lower_bound,
            lp_stats=stats,
            rounding=rounding,
            effective_capacities=capacities,
            repaired=repaired,
            fractional=fractional,
        )

    def _plan_decomposed(
        self, subproblem: PlacementProblem
    ) -> tuple[RoundingResult, float, LPStats]:
        """Solve and round one LP per correlation component.

        Singleton components (no correlated partner) are hash-placed;
        component roundings are independent, exactly like the rounding
        of a monolithic LP whose optimal rows are identical within each
        component.  With ``jobs`` set, components fan out across the
        process pool (see :func:`repro.parallel.solve_components`);
        otherwise the legacy sequential loop runs.
        """
        assignment = np.empty(subproblem.num_objects, dtype=np.int64)
        components, leftovers = component_subproblems(
            subproblem, capacities=subproblem.capacities
        )
        for obj in leftovers:
            assignment[subproblem.object_index(obj)] = hash_node(
                obj, subproblem.num_nodes, self.hash_salt
            )

        lower_bound = 0.0
        total_vars = total_cons = total_nnz = 0
        total_seconds = 0.0
        total_iterations = 0
        total_rounds = 0
        # Argmax rounding has no per-trial seed streams to spawn, so
        # the parallel fan-out buys nothing over the sequential loop.
        if self.jobs is None or self.rounding == "argmax":
            base_seed = 0 if self.seed is None else self.seed
            for index, component in enumerate(components):
                with obs.span(
                    "lprr.component", index=index, objects=component.num_objects
                ):
                    fractional = self._solve_lp(component)
                    lower_bound += fractional.lower_bound
                    total_vars += fractional.stats.num_variables
                    total_cons += fractional.stats.num_constraints
                    total_nnz += fractional.stats.num_nonzeros
                    total_seconds += fractional.stats.solve_seconds
                    total_iterations += fractional.stats.iterations
                    if self.rounding == "argmax":
                        rounding = self._round_argmax(fractional)
                    else:
                        rounding = round_best_of(
                            fractional,
                            trials=self.rounding_trials,
                            rng=base_seed + index,
                            capacity_tolerance=self.capacity_tolerance,
                        )
                total_rounds += rounding.rounds
                for local_i, obj in enumerate(component.object_ids):
                    assignment[subproblem.object_index(obj)] = (
                        rounding.placement.assignment[local_i]
                    )
        else:
            from repro.parallel import solve_components

            outcomes = solve_components(
                components,
                backend=self.backend,
                trials=self.rounding_trials,
                root_seed=self.seed,
                jobs=self.jobs,
                capacity_tolerance=self.capacity_tolerance,
            )
            for outcome in outcomes:
                lower_bound += outcome.lower_bound
                total_vars += outcome.stats.num_variables
                total_cons += outcome.stats.num_constraints
                total_nnz += outcome.stats.num_nonzeros
                total_seconds += outcome.stats.solve_seconds
                total_iterations += outcome.stats.iterations
                total_rounds += outcome.rounds
                for local_i, obj in enumerate(outcome.object_ids):
                    assignment[subproblem.object_index(obj)] = (
                        outcome.assignment[local_i]
                    )

        merged = Placement(subproblem, assignment)
        stats = LPStats(
            num_variables=total_vars,
            num_constraints=total_cons,
            num_nonzeros=total_nnz,
            solve_seconds=total_seconds,
            iterations=total_iterations,
        )
        aggregate = RoundingResult(
            placement=merged,
            cost=merged.communication_cost(),
            trials=self.rounding_trials,
            trial_costs=(merged.communication_cost(),),
            rounds=total_rounds,
        )
        return aggregate, lower_bound, stats

    def _effective_capacities(
        self, problem: PlacementProblem, scoped_ids: list[ObjectId]
    ) -> np.ndarray:
        """Capacities for the scoped LP.

        With a capacity factor, each node gets ``factor * (scoped
        load / n)``, i.e. the paper's "no more than <factor> times the
        average per-node load".  Without one, the problem's own
        capacities are used verbatim.
        """
        n = problem.num_nodes
        if self.capacity_factor is None:
            return problem.capacities.copy()
        scoped_size = float(sum(problem.size_of(o) for o in scoped_ids))
        per_node = self.capacity_factor * scoped_size / n
        # The factor must leave room for all scoped objects in total.
        largest = max((problem.size_of(o) for o in scoped_ids), default=0.0)
        return np.full(n, max(per_node, largest))
