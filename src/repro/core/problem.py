"""The Capacity-Constrained Assignment (CCA) problem model.

This module implements the problem of Section 2.1 of the paper: objects
``T`` with sizes ``s(i)`` must be assigned to nodes ``N`` with
capacities ``c(k)`` so that the total communication cost
``sum r(i,j) * w(i,j)`` over object pairs split across nodes is
minimized (equations (1)-(2)).

A :class:`PlacementProblem` stores objects and nodes by id but keeps
all numeric data in parallel numpy arrays so that cost evaluation over
millions of pairs is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.resources import ResourceSpec
from repro.exceptions import ProblemDefinitionError

ObjectId = Hashable
NodeId = Hashable
PairCostFunction = Callable[[float, float], float]


def min_size_pair_cost(size_i: float, size_j: float) -> float:
    """Default pair communication cost: the smaller object's size.

    Intersecting two posting lists ships the smaller list to the node
    holding the larger one, so the bytes moved equal the smaller size.
    This matches the cost accounting of the paper's search-engine
    prototype (Section 4.1).
    """
    return min(size_i, size_j)


def sum_size_pair_cost(size_i: float, size_j: float) -> float:
    """Alternative pair cost: both objects move (sum of sizes)."""
    return size_i + size_j


def unit_pair_cost(size_i: float, size_j: float) -> float:
    """Alternative pair cost: every remote pair costs one unit."""
    return 1.0


@dataclass(frozen=True)
class PairData:
    """One correlated object pair.

    Attributes:
        i: Index of the first object (always ``< j``).
        j: Index of the second object.
        correlation: ``r(i, j)`` — probability the pair is requested
            together in an operation.
        cost: ``w(i, j)`` — communication overhead when the pair is
            split across nodes.
    """

    i: int
    j: int
    correlation: float
    cost: float

    @property
    def weight(self) -> float:
        """Objective contribution ``r(i,j) * w(i,j)`` if split."""
        return self.correlation * self.cost


class PlacementProblem:
    """A CCA instance: objects, nodes, correlations, and pair costs.

    Use :meth:`build` for the ergonomic dict-based constructor; the raw
    constructor takes pre-validated arrays.

    Attributes:
        object_ids: Object identifiers, in index order.
        sizes: Object sizes, aligned with ``object_ids``.
        node_ids: Node identifiers, in index order.
        capacities: Node capacities, aligned with ``node_ids``.
        pair_index: ``(m, 2)`` int array of correlated pairs ``(i, j)``
            with ``i < j``.
        correlations: ``r`` values per pair.
        pair_costs: ``w`` values per pair.
    """

    def __init__(
        self,
        object_ids: Sequence[ObjectId],
        sizes: np.ndarray,
        node_ids: Sequence[NodeId],
        capacities: np.ndarray,
        pair_index: np.ndarray,
        correlations: np.ndarray,
        pair_costs: np.ndarray,
        resources: Sequence[ResourceSpec] = (),
    ):
        self.object_ids: tuple[ObjectId, ...] = tuple(object_ids)
        self.sizes = np.asarray(sizes, dtype=float)
        self.node_ids: tuple[NodeId, ...] = tuple(node_ids)
        self.capacities = np.asarray(capacities, dtype=float)
        self.pair_index = np.asarray(pair_index, dtype=np.int64).reshape(-1, 2)
        self.correlations = np.asarray(correlations, dtype=float)
        self.pair_costs = np.asarray(pair_costs, dtype=float)
        self.resources: tuple[ResourceSpec, ...] = tuple(resources)
        self._object_index = {obj: i for i, obj in enumerate(self.object_ids)}
        self._node_index = {node: k for k, node in enumerate(self.node_ids)}
        self._validate()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Mapping[ObjectId, float],
        nodes: Mapping[NodeId, float] | int,
        correlations: Mapping[tuple[ObjectId, ObjectId], float],
        pair_cost: PairCostFunction | Mapping[tuple[ObjectId, ObjectId], float] | None = None,
        resources: Mapping[str, tuple[Mapping[ObjectId, float], Mapping[NodeId, float] | float]] | None = None,
    ) -> "PlacementProblem":
        """Build a problem from id-keyed mappings.

        Args:
            objects: Mapping from object id to size ``s(i) > 0``.
            nodes: Either a mapping from node id to capacity ``c(k)``,
                or an int ``n`` meaning ``n`` uniform nodes whose
                capacity is ``+inf`` (capacity-unconstrained).
            correlations: Mapping from object-id pairs to ``r(i,j)``.
                Pairs are canonicalized; duplicate mirrored entries
                (``(a, b)`` and ``(b, a)``) have their values summed.
            pair_cost: Pair communication cost ``w``: a callable of the
                two sizes, an explicit per-pair mapping, or None for
                the default :func:`min_size_pair_cost`.
            resources: Extra node-capacity dimensions (Section 3.3),
                mapping resource name to ``(object_loads, node_budgets)``
                where budgets may be a scalar for uniform nodes.

        Raises:
            ProblemDefinitionError: On unknown ids, self-pairs, or
                invalid numeric data.
        """
        object_ids = list(objects.keys())
        sizes = np.asarray([objects[o] for o in object_ids], dtype=float)
        if isinstance(nodes, int):
            node_ids: list[NodeId] = list(range(nodes))
            capacities = np.full(nodes, np.inf)
        else:
            node_ids = list(nodes.keys())
            capacities = np.asarray([nodes[k] for k in node_ids], dtype=float)

        index = {obj: i for i, obj in enumerate(object_ids)}
        merged: dict[tuple[int, int], float] = {}
        for (a, b), r in correlations.items():
            if a not in index or b not in index:
                missing = a if a not in index else b
                raise ProblemDefinitionError(f"correlation references unknown object {missing!r}")
            i, j = index[a], index[b]
            if i == j:
                raise ProblemDefinitionError(f"self-correlation for object {a!r}")
            key = (i, j) if i < j else (j, i)
            merged[key] = merged.get(key, 0.0) + float(r)

        pair_index = np.asarray(sorted(merged), dtype=np.int64).reshape(-1, 2)
        corr = np.asarray([merged[tuple(p)] for p in pair_index], dtype=float)

        if pair_cost is None:
            pair_cost = min_size_pair_cost
        if callable(pair_cost):
            costs = np.asarray(
                [pair_cost(sizes[i], sizes[j]) for i, j in pair_index], dtype=float
            )
        else:
            cost_by_key: dict[tuple[int, int], float] = {}
            for (a, b), w in pair_cost.items():
                if a not in index or b not in index:
                    missing = a if a not in index else b
                    raise ProblemDefinitionError(f"pair cost references unknown object {missing!r}")
                i, j = index[a], index[b]
                cost_by_key[(min(i, j), max(i, j))] = float(w)
            try:
                costs = np.asarray(
                    [cost_by_key[tuple(p)] for p in pair_index], dtype=float
                )
            except KeyError as exc:
                raise ProblemDefinitionError(
                    f"missing explicit pair cost for correlated pair index {exc}"
                ) from exc

        specs = []
        for name, (loads, budgets) in (resources or {}).items():
            for obj in loads:
                if obj not in index:
                    raise ProblemDefinitionError(
                        f"resource {name!r} references unknown object {obj!r}"
                    )
            specs.append(
                ResourceSpec.from_mappings(name, loads, budgets, object_ids, node_ids)
            )
        return cls(
            object_ids, sizes, node_ids, capacities, pair_index, corr, costs, specs
        )

    # ------------------------------------------------------------------
    # Validation and basic properties
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        t = len(self.object_ids)
        if len(self._object_index) != t:
            raise ProblemDefinitionError("duplicate object ids")
        if len(self._node_index) != len(self.node_ids):
            raise ProblemDefinitionError("duplicate node ids")
        if len(self.node_ids) == 0:
            raise ProblemDefinitionError("a problem needs at least one node")
        if self.sizes.shape != (t,):
            raise ProblemDefinitionError("sizes misaligned with object ids")
        if np.any(self.sizes <= 0) or not np.all(np.isfinite(self.sizes)):
            raise ProblemDefinitionError("object sizes must be positive and finite")
        if np.any(self.capacities < 0):
            raise ProblemDefinitionError("node capacities must be nonnegative")
        m = self.pair_index.shape[0]
        if self.correlations.shape != (m,) or self.pair_costs.shape != (m,):
            raise ProblemDefinitionError("pair arrays misaligned")
        if m:
            i, j = self.pair_index[:, 0], self.pair_index[:, 1]
            if np.any(i >= j):
                raise ProblemDefinitionError("pair indices must satisfy i < j")
            if np.any(i < 0) or np.any(j >= t):
                raise ProblemDefinitionError("pair indices out of range")
            if np.any(self.correlations < 0) or np.any(self.pair_costs < 0):
                raise ProblemDefinitionError("correlations and pair costs must be nonnegative")
            keys = i * t + j
            if len(np.unique(keys)) != m:
                raise ProblemDefinitionError("duplicate pairs in pair index")
        seen_resources = set()
        for spec in self.resources:
            if spec.name in seen_resources:
                raise ProblemDefinitionError(f"duplicate resource {spec.name!r}")
            seen_resources.add(spec.name)
            if spec.loads.shape != (t,):
                raise ProblemDefinitionError(
                    f"resource {spec.name!r}: loads misaligned with objects"
                )
            if spec.budgets.shape != (len(self.node_ids),):
                raise ProblemDefinitionError(
                    f"resource {spec.name!r}: budgets misaligned with nodes"
                )

    @property
    def num_objects(self) -> int:
        """``|T|``."""
        return len(self.object_ids)

    @property
    def num_nodes(self) -> int:
        """``|N|``."""
        return len(self.node_ids)

    @property
    def num_pairs(self) -> int:
        """``|E|`` — number of pairs with positive correlation."""
        return self.pair_index.shape[0]

    @property
    def pair_weights(self) -> np.ndarray:
        """Per-pair objective weights ``r(i,j) * w(i,j)``."""
        return self.correlations * self.pair_costs

    @property
    def total_size(self) -> float:
        """``S`` — the total size of all objects."""
        return float(self.sizes.sum())

    @property
    def total_capacity(self) -> float:
        """Aggregate capacity of all nodes."""
        return float(self.capacities.sum())

    @property
    def total_pair_weight(self) -> float:
        """Cost of the worst placement: every correlated pair split."""
        return float(self.pair_weights.sum())

    def is_trivially_infeasible(self) -> bool:
        """True when any total demand exceeds its total capacity."""
        if self.total_size > self.total_capacity + 1e-9:
            return True
        return any(spec.is_trivially_infeasible() for spec in self.resources)

    def resource(self, name: str) -> ResourceSpec:
        """Look up a resource spec by name."""
        for spec in self.resources:
            if spec.name == name:
                return spec
        raise ProblemDefinitionError(f"unknown resource {name!r}")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def object_index(self, obj: ObjectId) -> int:
        """Index of object ``obj``."""
        try:
            return self._object_index[obj]
        except KeyError:
            raise ProblemDefinitionError(f"unknown object {obj!r}") from None

    def node_index(self, node: NodeId) -> int:
        """Index of node ``node``."""
        try:
            return self._node_index[node]
        except KeyError:
            raise ProblemDefinitionError(f"unknown node {node!r}") from None

    def size_of(self, obj: ObjectId) -> float:
        """Size of object ``obj``."""
        return float(self.sizes[self.object_index(obj)])

    def pairs(self) -> Iterable[PairData]:
        """Iterate over correlated pairs as :class:`PairData`."""
        for (i, j), r, w in zip(self.pair_index, self.correlations, self.pair_costs):
            yield PairData(int(i), int(j), float(r), float(w))

    # ------------------------------------------------------------------
    # Derived problems
    # ------------------------------------------------------------------
    def subproblem(
        self,
        object_subset: Sequence[ObjectId],
        capacities: np.ndarray | None = None,
    ) -> "PlacementProblem":
        """Restrict the problem to a subset of objects.

        Pairs with either endpoint outside the subset are dropped; node
        set is preserved.  Used by important-object partial
        optimization (Section 3.1).

        Args:
            object_subset: Object ids to keep (order defines the new
                index order).
            capacities: Optional replacement capacity vector (e.g. a
                conservative fraction for the LP of the subproblem).
        """
        subset_idx = np.asarray([self.object_index(o) for o in object_subset], dtype=np.int64)
        if len(set(subset_idx.tolist())) != len(subset_idx):
            raise ProblemDefinitionError("object subset contains duplicates")
        remap = -np.ones(self.num_objects, dtype=np.int64)
        remap[subset_idx] = np.arange(len(subset_idx))

        if self.num_pairs:
            keep = (remap[self.pair_index[:, 0]] >= 0) & (remap[self.pair_index[:, 1]] >= 0)
            new_pairs = remap[self.pair_index[keep]]
            # Re-canonicalize: remapping can invert the i < j order.
            swap = new_pairs[:, 0] > new_pairs[:, 1]
            new_pairs[swap] = new_pairs[swap][:, ::-1]
            order = np.lexsort((new_pairs[:, 1], new_pairs[:, 0]))
            new_pairs = new_pairs[order]
            new_corr = self.correlations[keep][order]
            new_cost = self.pair_costs[keep][order]
        else:
            new_pairs = np.empty((0, 2), dtype=np.int64)
            new_corr = np.empty(0)
            new_cost = np.empty(0)

        caps = self.capacities if capacities is None else np.asarray(capacities, dtype=float)
        return PlacementProblem(
            [self.object_ids[i] for i in subset_idx],
            self.sizes[subset_idx],
            self.node_ids,
            caps,
            new_pairs,
            new_corr,
            new_cost,
            resources=[spec.subset(subset_idx) for spec in self.resources],
        )

    def with_capacities(self, capacities: np.ndarray | float) -> "PlacementProblem":
        """Return a copy with a replacement capacity vector or scalar."""
        caps = np.broadcast_to(np.asarray(capacities, dtype=float), (self.num_nodes,)).copy()
        return PlacementProblem(
            self.object_ids,
            self.sizes,
            self.node_ids,
            caps,
            self.pair_index,
            self.correlations,
            self.pair_costs,
            resources=self.resources,
        )

    def __repr__(self) -> str:
        return (
            f"PlacementProblem(objects={self.num_objects}, nodes={self.num_nodes}, "
            f"pairs={self.num_pairs})"
        )
