"""Additional node-capacity constraints (Section 3.3).

Beyond storage, the paper notes that "other node capacity constraints
such as network bandwidth and CPU processing capability may also be
present.  In principle, we can address these problems by introducing
more capacity constraints into our linear programming problem in a way
similar to (9)."

A :class:`ResourceSpec` is exactly that: a named per-object load vector
(e.g. expected queries/second served by each object's index) and a
per-node budget vector.  Problems carry any number of specs; the LP adds
one row per (resource, node), and the capacity-aware strategies (greedy,
best-fit, exact, repair) treat every resource like storage.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.exceptions import ProblemDefinitionError


class ResourceSpec:
    """One extra node-capacity dimension.

    Attributes:
        name: Resource name (e.g. ``"bandwidth"``, ``"cpu"``).
        loads: Per-object demand, aligned with the problem's object
            order.
        budgets: Per-node budget, aligned with the problem's node
            order.
    """

    def __init__(self, name: str, loads: np.ndarray, budgets: np.ndarray):
        self.name = str(name)
        self.loads = np.asarray(loads, dtype=float)
        self.budgets = np.asarray(budgets, dtype=float)
        if not self.name:
            raise ProblemDefinitionError("resource name must be non-empty")
        if np.any(self.loads < 0) or not np.all(np.isfinite(self.loads)):
            raise ProblemDefinitionError(
                f"resource {self.name!r}: loads must be finite and nonnegative"
            )
        if np.any(self.budgets < 0):
            raise ProblemDefinitionError(
                f"resource {self.name!r}: budgets must be nonnegative"
            )

    @classmethod
    def from_mappings(
        cls,
        name: str,
        loads: Mapping[Hashable, float],
        budgets: Mapping[Hashable, float] | float,
        object_ids: Sequence[Hashable],
        node_ids: Sequence[Hashable],
    ) -> "ResourceSpec":
        """Build a spec from id-keyed mappings.

        Args:
            name: Resource name.
            loads: Object id -> demand; missing objects default to 0.
            budgets: Node id -> budget, or a scalar applied to every
                node.
            object_ids: The problem's object order.
            node_ids: The problem's node order.
        """
        load_vec = np.asarray([float(loads.get(o, 0.0)) for o in object_ids])
        if isinstance(budgets, (int, float)):
            budget_vec = np.full(len(node_ids), float(budgets))
        else:
            try:
                budget_vec = np.asarray([float(budgets[k]) for k in node_ids])
            except KeyError as exc:
                raise ProblemDefinitionError(
                    f"resource {name!r}: missing budget for node {exc}"
                ) from exc
        return cls(name, load_vec, budget_vec)

    @property
    def total_load(self) -> float:
        """Aggregate demand over all objects."""
        return float(self.loads.sum())

    @property
    def total_budget(self) -> float:
        """Aggregate budget over all nodes."""
        return float(self.budgets.sum())

    def is_trivially_infeasible(self) -> bool:
        """True when total demand exceeds total budget."""
        return self.total_load > self.total_budget + 1e-9

    def subset(self, indices: np.ndarray) -> "ResourceSpec":
        """Spec restricted to a subset of objects (budgets unchanged)."""
        return ResourceSpec(self.name, self.loads[indices], self.budgets)

    def __repr__(self) -> str:
        return (
            f"ResourceSpec({self.name!r}, total_load={self.total_load:.6g}, "
            f"total_budget={self.total_budget:.6g})"
        )
