"""Placements and their evaluation.

A :class:`Placement` is a total assignment ``f: T -> N`` for a
:class:`~repro.core.problem.PlacementProblem`.  It evaluates the
paper's objective (1) — the total communication cost over pairs split
across nodes — and the capacity constraint (2), both vectorized.

:class:`PlacementMap` is the shared lookup/serialization protocol:
anything that can say where an object lives (``assign``/``locate``)
and round-trip itself through a JSON dict (``to_dict``/``from_dict``).
:class:`Placement` implements it exactly; :class:`~repro.pg.PGMap`
implements it at placement-group granularity.
"""

from __future__ import annotations

from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from repro.core.problem import NodeId, ObjectId, PlacementProblem
from repro.exceptions import PlacementError


@runtime_checkable
class PlacementMap(Protocol):
    """Anything that maps objects to nodes and serializes to JSON.

    Implementations: :class:`Placement` (exact, one entry per object)
    and :class:`~repro.pg.PGMap` (a small stable map over placement
    groups plus exact entries for important objects).  ``from_dict``
    is a classmethod on each implementation; its extra arguments
    differ (an exact placement needs the problem back, a PG map is
    self-contained), so it is not part of the runtime protocol.
    """

    def assign(self, obj: ObjectId) -> int:
        """The node *index* hosting ``obj``."""
        ...

    def locate(self, obj: ObjectId) -> NodeId:
        """The node *id* hosting ``obj``."""
        ...

    def to_dict(self) -> dict:
        """JSON-ready form with an embedded schema tag."""
        ...


class Placement:
    """An assignment of every object to exactly one node.

    Attributes:
        problem: The problem this placement solves.
        assignment: ``(t,)`` int array; ``assignment[i]`` is the node
            index hosting object ``i``.
    """

    def __init__(self, problem: PlacementProblem, assignment: np.ndarray):
        self.problem = problem
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.shape != (problem.num_objects,):
            raise PlacementError(
                f"assignment has shape {self.assignment.shape}, "
                f"expected ({problem.num_objects},)"
            )
        if problem.num_objects and (
            self.assignment.min() < 0 or self.assignment.max() >= problem.num_nodes
        ):
            raise PlacementError("assignment contains out-of-range node indices")

    @classmethod
    def from_mapping(
        cls, problem: PlacementProblem, mapping: Mapping[ObjectId, NodeId]
    ) -> "Placement":
        """Build a placement from an object-id -> node-id mapping."""
        assignment = np.empty(problem.num_objects, dtype=np.int64)
        seen = 0
        for obj, node in mapping.items():
            assignment[problem.object_index(obj)] = problem.node_index(node)
            seen += 1
        if seen != problem.num_objects:
            raise PlacementError(
                f"mapping covers {seen} of {problem.num_objects} objects"
            )
        return cls(problem, assignment)

    # ------------------------------------------------------------------
    # Objective and constraints
    # ------------------------------------------------------------------
    def communication_cost(self) -> float:
        """Objective (1): ``sum r(i,j) * w(i,j)`` over split pairs."""
        p = self.problem
        if not p.num_pairs:
            return 0.0
        split = (
            self.assignment[p.pair_index[:, 0]] != self.assignment[p.pair_index[:, 1]]
        )
        return float(p.pair_weights[split].sum())

    def colocated_weight(self) -> float:
        """Pair weight saved by co-location (complement of the cost)."""
        return self.problem.total_pair_weight - self.communication_cost()

    def node_loads(self) -> np.ndarray:
        """Total object size placed on each node."""
        return np.bincount(
            self.assignment,
            weights=self.problem.sizes,
            minlength=self.problem.num_nodes,
        )

    def node_object_counts(self) -> np.ndarray:
        """Number of objects placed on each node."""
        return np.bincount(self.assignment, minlength=self.problem.num_nodes)

    def capacity_violations(self, tolerance: float = 0.0) -> dict[NodeId, float]:
        """Nodes whose load exceeds capacity, mapped to the excess.

        Args:
            tolerance: Relative slack: a node only counts as violated
                when its load exceeds ``capacity * (1 + tolerance)``.
        """
        loads = self.node_loads()
        limits = self.problem.capacities * (1.0 + tolerance)
        violated = np.where(loads > limits + 1e-9)[0]
        return {
            self.problem.node_ids[k]: float(loads[k] - self.problem.capacities[k])
            for k in violated
        }

    def resource_loads(self, name: str) -> np.ndarray:
        """Per-node total demand for one extra resource (Section 3.3)."""
        spec = self.problem.resource(name)
        return np.bincount(
            self.assignment, weights=spec.loads, minlength=self.problem.num_nodes
        )

    def resource_violations(self, tolerance: float = 0.0) -> dict[str, dict[NodeId, float]]:
        """Per-resource nodes whose demand exceeds the budget."""
        result: dict[str, dict[NodeId, float]] = {}
        for spec in self.problem.resources:
            loads = np.bincount(
                self.assignment, weights=spec.loads, minlength=self.problem.num_nodes
            )
            limits = spec.budgets * (1.0 + tolerance)
            violated = np.where(loads > limits + 1e-9)[0]
            if violated.size:
                result[spec.name] = {
                    self.problem.node_ids[k]: float(loads[k] - spec.budgets[k])
                    for k in violated
                }
        return result

    def is_feasible(self, tolerance: float = 0.0, include_resources: bool = True) -> bool:
        """Whether constraint (2) — and, by default, every Section 3.3
        resource budget — holds up to a relative tolerance."""
        if self.capacity_violations(tolerance):
            return False
        return not (include_resources and self.resource_violations(tolerance))

    def load_imbalance(self) -> float:
        """Max node load divided by mean node load (1.0 = perfectly even)."""
        loads = self.node_loads()
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 0.0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def node_of(self, obj: ObjectId) -> NodeId:
        """The node id hosting ``obj``."""
        return self.problem.node_ids[self.assignment[self.problem.object_index(obj)]]

    def assign(self, obj: ObjectId) -> int:
        """The node index hosting ``obj`` (:class:`PlacementMap`)."""
        return int(self.assignment[self.problem.object_index(obj)])

    def locate(self, obj: ObjectId) -> NodeId:
        """The node id hosting ``obj`` (:class:`PlacementMap`)."""
        return self.node_of(obj)

    def to_dict(self) -> dict:
        """The placement as a JSON-ready dict (ids become strings)."""
        from repro.core.serialization import PLACEMENT_SCHEMA

        return {
            "schema": PLACEMENT_SCHEMA,
            "mapping": {
                str(obj): str(node) for obj, node in self.to_mapping().items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict, problem: PlacementProblem) -> "Placement":
        """Rebuild a placement against a (string-id) problem.

        Raises:
            TraceFormatError: On schema mismatch or ids absent from the
                problem.
        """
        from repro.core.serialization import PLACEMENT_SCHEMA
        from repro.exceptions import TraceFormatError

        if data.get("schema") != PLACEMENT_SCHEMA:
            raise TraceFormatError(
                f"expected schema {PLACEMENT_SCHEMA!r}, "
                f"got {data.get('schema')!r}"
            )
        try:
            mapping = {str(k): str(v) for k, v in data["mapping"].items()}
            return cls.from_mapping(problem, mapping)
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(
                f"malformed placement document: {exc}"
            ) from exc

    def to_mapping(self) -> dict[ObjectId, NodeId]:
        """The placement as an object-id -> node-id dict."""
        return {
            obj: self.problem.node_ids[k]
            for obj, k in zip(self.problem.object_ids, self.assignment)
        }

    def objects_on(self, node: NodeId) -> list[ObjectId]:
        """Object ids placed on ``node``."""
        k = self.problem.node_index(node)
        return [
            self.problem.object_ids[i]
            for i in np.where(self.assignment == k)[0]
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self.problem is other.problem and np.array_equal(
            self.assignment, other.assignment
        )

    def __repr__(self) -> str:
        return (
            f"Placement(cost={self.communication_cost():.6g}, "
            f"feasible={self.is_feasible()})"
        )
