"""The linear-programming relaxation of the CCA problem (Figure 4).

The integer program of the paper uses three variable families:

* ``x[i,k] ∈ {0,1}`` — object ``i`` is placed on node ``k``;
* ``y[i,j,k] = |x[i,k] - x[j,k]|`` for each correlated pair;
* ``z[i,j] = ½ Σ_k y[i,j,k]`` — the split indicator of a pair.

We relax ``x`` to ``[0, 1]`` and compact the program in two
optimum-preserving steps:

1. ``z`` is substituted out via its defining equality (8).
2. Because both objects place fully (``Σ_k x[i,k] = 1``), the positive
   and negative parts of ``x_i - x_j`` have equal mass over ``k``:
   ``Σ_k |x[i,k] - x[j,k]| = 2 Σ_k max(0, x[i,k] - x[j,k])``.  So one
   inequality ``y ≥ x[i,k] - x[j,k]`` per (pair, node) with the *full*
   pair weight in the objective replaces the paper's two inequalities
   (6)-(7) with half weight.  The objective minimizes nonnegative-
   weighted ``y``, so ``y = max(0, x_i - x_j)`` at the optimum and the
   optimal value is unchanged.

The result is the same LP optimum with ``|E|`` fewer variables and
``2|E||N| - |E||N|`` fewer rows than the literal Figure 4 program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.problem import PlacementProblem
from repro.exceptions import InfeasibleProblemError, SolverError
from repro.lpsolve import LinearProgram, LPStatus, Sense


@dataclass(frozen=True)
class LPStats:
    """Size and solve statistics for one placement LP (Section 3.1)."""

    num_variables: int
    num_constraints: int
    num_nonzeros: int
    solve_seconds: float
    iterations: int

    def __str__(self) -> str:
        return (
            f"{self.num_variables} vars, {self.num_constraints} constraints, "
            f"{self.num_nonzeros} nonzeros, solved in {self.solve_seconds:.3f}s"
        )


@dataclass(frozen=True)
class FractionalPlacement:
    """Optimal solution of the relaxed placement LP.

    Attributes:
        problem: The instance that was relaxed.
        fractions: ``(t, n)`` matrix; row ``i`` is object ``i``'s
            fractional distribution over nodes (each row sums to 1).
        lower_bound: The LP optimum — a lower bound on the optimal
            integral communication cost, and by Theorem 2 the exact
            expected cost of the randomized rounding.
        stats: Program size and solve statistics.
        capacity_duals: Shadow price of each node's capacity row (None
            for uncapacitated nodes or when the backend provides no
            duals).  A strongly negative value marks a node whose space
            binds the optimum — the capacity to grow first.
    """

    problem: PlacementProblem
    fractions: np.ndarray
    lower_bound: float
    stats: LPStats
    capacity_duals: np.ndarray | None = None

    def is_integral(self, tolerance: float = 1e-6) -> bool:
        """Whether the LP optimum is already an integral placement."""
        return bool(
            np.all(
                (self.fractions <= tolerance) | (self.fractions >= 1.0 - tolerance)
            )
        )

    def expected_node_loads(self) -> np.ndarray:
        """Expected per-node load ``Σ_i x[i,k] * s(i)`` (Theorem 3)."""
        return self.fractions.T @ self.problem.sizes


@dataclass(frozen=True)
class WarmStart:
    """A fractional solution carried between solves (docs/SOLVERS.md).

    Keyed by object and node *ids*, not indices, so a warm start
    survives scope changes between replans: objects that entered or
    left the heavy-hitter scope simply miss (and start uniform), while
    the stable majority resumes from its previous fractions.  Only the
    first-order backend consumes warm starts; the LP backends ignore
    them (HiGHS re-factorizes regardless).
    """

    node_ids: tuple[Any, ...]
    rows: dict[Any, tuple[float, ...]]

    @classmethod
    def from_fractional(cls, fractional: FractionalPlacement) -> "WarmStart":
        """Capture a solved relaxation as a reusable warm start."""
        problem = fractional.problem
        return cls(
            node_ids=problem.node_ids,
            rows={
                obj: tuple(fractional.fractions[i])
                for i, obj in enumerate(problem.object_ids)
            },
        )

    def matrix(self, problem: PlacementProblem) -> tuple[np.ndarray | None, int]:
        """Map the stored rows onto ``problem``'s index space.

        Returns ``(x0, hits)`` where ``hits`` counts objects whose
        previous fractions were found; unmatched objects get uniform
        rows.  Returns ``(None, 0)`` when nothing matches (node set
        changed entirely, or disjoint objects) — a cold start.
        """
        n = problem.num_nodes
        columns = {node: k for k, node in enumerate(self.node_ids)}
        node_map = [columns.get(node) for node in problem.node_ids]
        if all(k is None for k in node_map):
            return None, 0
        x0 = np.full((problem.num_objects, n), 1.0 / n)
        hits = 0
        for i, obj in enumerate(problem.object_ids):
            row = self.rows.get(obj)
            if row is None:
                continue
            mapped = np.full(n, 0.0)
            for k, source in enumerate(node_map):
                if source is not None and source < len(row):
                    mapped[k] = row[source]
            total = mapped.sum()
            if total > 0:
                x0[i] = mapped / total
                hits += 1
        if hits == 0:
            return None, 0
        return x0, hits


def build_placement_lp(problem: PlacementProblem) -> LinearProgram:
    """Construct the relaxed LP of Figure 4 for ``problem``.

    Variable layout: ``x[i,k]`` at index ``i*n + k``; ``y`` variables
    for pair ``p`` and node ``k`` at index ``t*n + p*n + k``.  Pairs
    with zero objective weight are excluded (they cannot affect the
    optimum), matching the paper's restriction to ``r(i,j) > 0``.

    All ``O(|E||N|)`` rows are assembled as whole COO blocks through
    :meth:`~repro.lpsolve.LinearProgram.add_constraints_from_arrays`;
    the resulting program is identical — same variable and constraint
    names, same row and triplet order — to the per-row reference
    :func:`_build_placement_lp_loop`.
    """
    t, n = problem.num_objects, problem.num_nodes
    lp = LinearProgram(f"cca-{t}x{n}")

    lp.add_variables_from_arrays(
        [f"x[{i},{k}]" for i in range(t) for k in range(n)],
        lower=0.0,
        upper=1.0,
    )

    active_pairs = np.where(problem.pair_weights > 0)[0]
    num_active = len(active_pairs)
    pair_i = problem.pair_index[active_pairs, 0]
    pair_j = problem.pair_index[active_pairs, 1]
    if num_active:
        lp.add_variables_from_arrays(
            [
                f"y[{i},{j},{k}]"
                for i, j in zip(pair_i.tolist(), pair_j.tolist())
                for k in range(n)
            ],
            lower=0.0,
            objective=np.repeat(problem.pair_weights[active_pairs], n),
        )

    ks = np.arange(n, dtype=np.int64)

    # (5): each object fully placed.
    lp.add_constraints_from_arrays(
        rows=np.repeat(np.arange(t, dtype=np.int64), n),
        cols=np.arange(t * n, dtype=np.int64),
        vals=np.ones(t * n),
        senses=Sense.EQ,
        rhs=np.ones(t),
        names=[f"assign[{i}]" for i in range(t)],
    )

    # (6)-(7) compacted: y >= x_i - x_j captures the positive part;
    # the negative part carries equal mass (see module docstring).
    y_base = t * n
    if num_active:
        y_cols = y_base + np.arange(num_active * n, dtype=np.int64).reshape(
            num_active, n
        )
        xi_cols = pair_i[:, None] * n + ks[None, :]
        xj_cols = pair_j[:, None] * n + ks[None, :]
        lp.add_constraints_from_arrays(
            rows=np.repeat(np.arange(num_active * n, dtype=np.int64), 3),
            cols=np.stack([y_cols, xi_cols, xj_cols], axis=2).reshape(-1),
            vals=np.tile([1.0, -1.0, 1.0], num_active * n),
            senses=Sense.GE,
            rhs=np.zeros(num_active * n),
        )

    # (9): per-node capacity; skip unconstrained (infinite) nodes.
    finite_k = np.flatnonzero(np.isfinite(problem.capacities))
    if finite_k.size:
        m = len(finite_k)
        lp.add_constraints_from_arrays(
            rows=np.repeat(np.arange(m, dtype=np.int64), t),
            cols=(
                np.arange(t, dtype=np.int64)[None, :] * n + finite_k[:, None]
            ).reshape(-1),
            vals=np.tile(np.asarray(problem.sizes, dtype=float), m),
            senses=Sense.LE,
            rhs=problem.capacities[finite_k],
            names=[f"capacity[{k}]" for k in finite_k.tolist()],
        )

    # Section 3.3: one more (9)-style row per extra resource and node.
    for spec in problem.resources:
        loaded = np.flatnonzero(np.asarray(spec.loads) > 0)
        budget_k = np.flatnonzero(np.isfinite(spec.budgets))
        if not loaded.size or not budget_k.size:
            continue
        m = len(budget_k)
        lp.add_constraints_from_arrays(
            rows=np.repeat(np.arange(m, dtype=np.int64), loaded.size),
            cols=(loaded[None, :] * n + budget_k[:, None]).reshape(-1),
            vals=np.tile(np.asarray(spec.loads, dtype=float)[loaded], m),
            senses=Sense.LE,
            rhs=np.asarray(spec.budgets, dtype=float)[budget_k],
            names=[f"{spec.name}[{k}]" for k in budget_k.tolist()],
        )
    return lp


def _build_placement_lp_loop(problem: PlacementProblem) -> LinearProgram:
    """Per-row reference assembly of the Figure 4 LP.

    Kept as the equivalence oracle for :func:`build_placement_lp` (the
    property tests assert identical program state) and as the "before"
    side of the ``repro bench`` LP-assembly scenario.
    """
    t, n = problem.num_objects, problem.num_nodes
    lp = LinearProgram(f"cca-{t}x{n}")

    for i in range(t):
        for k in range(n):
            lp.add_variable(f"x[{i},{k}]", lower=0.0, upper=1.0)

    active_pairs = np.where(problem.pair_weights > 0)[0]
    for p in active_pairs:
        i, j = problem.pair_index[p]
        weight = problem.pair_weights[p]
        for k in range(n):
            lp.add_variable(f"y[{i},{j},{k}]", lower=0.0, objective=weight)

    for i in range(t):
        lp.add_constraint(
            [(i * n + k, 1.0) for k in range(n)], Sense.EQ, 1.0, f"assign[{i}]"
        )

    y_base = t * n
    for idx, p in enumerate(active_pairs):
        i, j = problem.pair_index[p]
        for k in range(n):
            y_var = y_base + idx * n + k
            xi, xj = i * n + k, j * n + k
            lp.add_constraint(
                [(y_var, 1.0), (xi, -1.0), (xj, 1.0)], Sense.GE, 0.0
            )

    for k in range(n):
        cap = problem.capacities[k]
        if np.isfinite(cap):
            lp.add_constraint(
                [(i * n + k, float(problem.sizes[i])) for i in range(t)],
                Sense.LE,
                float(cap),
                f"capacity[{k}]",
            )

    for spec in problem.resources:
        for k in range(n):
            budget = spec.budgets[k]
            if not np.isfinite(budget):
                continue
            terms = [
                (i * n + k, float(spec.loads[i]))
                for i in range(t)
                if spec.loads[i] > 0
            ]
            if terms:
                lp.add_constraint(
                    terms, Sense.LE, float(budget), f"{spec.name}[{k}]"
                )
    return lp


def solve_placement_lp(
    problem: PlacementProblem,
    backend: str = "auto",
    time_limit: float | None = None,
    iteration_limit: int | None = None,
    warm_start: WarmStart | None = None,
) -> FractionalPlacement:
    """Solve the relaxed placement LP and extract the fractional scheme.

    Args:
        problem: The CCA instance.
        backend: Relaxation backend name: ``"auto"``, ``"highs"``,
            ``"highs-ipm"``, or ``"simplex"`` solve the Figure 4 LP
            exactly; ``"fo"`` runs the first-order projected-gradient
            solver (:mod:`repro.lpsolve.firstorder`) on the same
            objective — approximate but 10-100x more scalable and warm-
            startable.
        time_limit: Optional solver wall-clock budget in seconds; for
            LP backends an exceeded budget surfaces as
            :class:`SolverError`, which the resilient planning chain
            treats as "try the next backend"; the first-order backend
            instead returns its current iterate (and loses byte-
            reproducibility — leave unset for deterministic runs).
        iteration_limit: Optional solver iteration budget, same
            semantics for LP backends; caps the first-order backend
            deterministically.
        warm_start: Optional previous fractional solution; consumed
            only by the ``"fo"`` backend (LP backends ignore it).

    Returns:
        The optimal :class:`FractionalPlacement`.

    Raises:
        InfeasibleProblemError: If the capacities cannot hold the
            objects (detected up front or reported by the solver).
        SolverError: On unexpected solver failure, including an
            exhausted time or iteration budget.
    """
    if problem.is_trivially_infeasible():
        raise InfeasibleProblemError(
            f"total object size {problem.total_size:.6g} exceeds "
            f"total capacity {problem.total_capacity:.6g}"
        )
    if backend == "fo":
        return _solve_placement_first_order(
            problem,
            time_limit=time_limit,
            iteration_limit=iteration_limit,
            warm_start=warm_start,
        )
    with obs.span("lp", objects=problem.num_objects, nodes=problem.num_nodes):
        with obs.span("lp.build"):
            lp = build_placement_lp(problem)
        obs.gauge("lp.num_variables").set(lp.num_variables)
        obs.gauge("lp.num_constraints").set(lp.num_constraints)
        obs.gauge("lp.num_nonzeros").set(lp.num_nonzeros)
        with obs.timed("lp.solve", backend=backend) as solve_span:
            result = lp.solve(
                backend=backend,
                time_limit=time_limit,
                iteration_limit=iteration_limit,
            )
        elapsed = solve_span.duration
        solve_span.set(status=result.status.name, iterations=result.iterations)
        obs.histogram("lp.solve_seconds").observe(elapsed)
        obs.counter("lp.solves").inc()

    if result.status is LPStatus.INFEASIBLE:
        raise InfeasibleProblemError(
            f"placement LP infeasible: {result.message}"
        )
    if result.status is not LPStatus.OPTIMAL:
        raise SolverError(
            f"placement LP ended with status {result.status}: {result.message}"
        )

    t, n = problem.num_objects, problem.num_nodes
    fractions = np.clip(result.x[: t * n].reshape(t, n), 0.0, 1.0)
    row_sums = fractions.sum(axis=1, keepdims=True)
    # Guard against solver round-off; rows are 1 up to tolerance already.
    np.divide(fractions, row_sums, out=fractions, where=row_sums > 0)

    capacity_duals = None
    if result.duals is not None:
        capacity_duals = np.full(n, np.nan)
        names = {lp.constraint_name(r): r for r in range(lp.num_constraints)}
        for k in range(n):
            row = names.get(f"capacity[{k}]")
            if row is not None:
                capacity_duals[k] = result.duals[row]

    stats = LPStats(
        num_variables=lp.num_variables,
        num_constraints=lp.num_constraints,
        num_nonzeros=lp.num_nonzeros,
        solve_seconds=elapsed,
        iterations=result.iterations,
    )
    return FractionalPlacement(
        problem, fractions, float(result.objective), stats, capacity_duals
    )


def _solve_placement_first_order(
    problem: PlacementProblem,
    time_limit: float | None,
    iteration_limit: int | None,
    warm_start: WarmStart | None,
) -> FractionalPlacement:
    """Solve the relaxation approximately with the first-order backend.

    The gradient solver works on the compact ``(t, n)`` fractional
    matrix directly — no ``y`` variables, no explicit rows — so the
    reported :class:`LPStats` describe that formulation (``t*n``
    variables, one "constraint" per simplex row and per capacity-like
    budget).  One semantic caveat: ``lower_bound`` here is the relaxed
    objective *at the returned iterate*, an upper bound on the true LP
    optimum rather than a certified lower bound on the integral cost.
    The optimality-gap harness (``repro gap``) exists to measure what
    that approximation costs.

    Emits one ``plan.warm_start`` journal record per solve with the
    warm/cold decision and iteration count.
    """
    from repro.lpsolve.firstorder import FirstOrderOptions, solve_first_order

    t, n = problem.num_objects, problem.num_nodes
    x0 = None
    hits = 0
    if warm_start is not None:
        x0, hits = warm_start.matrix(problem)
    warm = x0 is not None

    knobs: dict[str, Any] = {"time_limit": time_limit}
    if iteration_limit is not None:
        knobs["max_iterations"] = iteration_limit
    options = FirstOrderOptions(**knobs)

    with obs.span("lp", objects=t, nodes=n, backend="fo"):
        finite_caps = int(np.isfinite(problem.capacities).sum())
        budget_rows = sum(
            int(np.isfinite(spec.budgets).sum()) for spec in problem.resources
        )
        obs.gauge("lp.num_variables").set(t * n)
        obs.gauge("lp.num_constraints").set(t + finite_caps + budget_rows)
        with obs.timed("lp.solve", backend="fo") as solve_span:
            solution = solve_first_order(
                problem.sizes,
                problem.capacities,
                problem.pair_index,
                problem.pair_weights,
                n,
                resources=tuple(
                    (np.asarray(spec.loads), np.asarray(spec.budgets))
                    for spec in problem.resources
                ),
                x0=x0,
                warm=warm,
                options=options,
            )
        elapsed = solve_span.duration
        solve_span.set(
            status="CONVERGED" if solution.converged else "ITERATION_LIMIT",
            iterations=solution.iterations,
        )
        obs.histogram("lp.solve_seconds").observe(elapsed)
        obs.counter("lp.solves").inc()
        obs.record(
            "plan.warm_start",
            backend="fo",
            warm="hit" if warm else ("miss" if warm_start is not None else "off"),
            hits=hits,
            objects=t,
            iterations=solution.iterations,
            converged=solution.converged,
        )

    stats = LPStats(
        num_variables=t * n,
        num_constraints=t + finite_caps + budget_rows,
        num_nonzeros=int(2 * np.count_nonzero(problem.pair_weights) + t * n),
        solve_seconds=elapsed,
        iterations=solution.iterations,
    )
    return FractionalPlacement(
        problem,
        solution.fractions,
        float(solution.objective),
        stats,
        capacity_duals=solution.duals,
    )
