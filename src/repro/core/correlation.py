"""Pair-correlation estimation from multi-object operation traces.

The paper defines the correlation ``r(i, j)`` of an object pair as the
probability that both objects are requested together in an operation.
For operations touching more than two objects, Section 3.2 reduces the
operation to one or more two-object operations:

* **Intersection-like** operations (multi-keyword search, database
  joins) are approximated by a single two-object operation on the two
  *smallest* requested objects, so ``r(i, j)`` becomes the probability
  that ``i`` and ``j`` are the two smallest objects of an operation.
* **Union-like** operations are approximated by a sequence of pairs,
  each joining the *largest* requested object with one other object.

All three estimators below take a trace — an iterable of operations,
each an iterable of object ids — and return a dict mapping canonical
id pairs to empirical probabilities (pair count / number of operations
counted).  Every estimator makes exactly **one pass** over the trace,
so single-use iterables (generators, streaming readers) work without
materializing the trace in memory: operations are interned and mined
in vectorized chunks (working set ``O(chunk + distinct pairs)``), and
any trace the vectorized engine cannot mine exactly falls back to the
equivalent per-operation loop, so results — including dict insertion
order — never depend on which engine ran.

The per-operation reduction is exposed as :func:`operation_pairs` and
the incremental surface as the :class:`PairEstimator` protocol, shared
by the exact :class:`CorrelationEstimator` here and the memory-bounded
sketch backend in :mod:`repro.online.sketch`.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

ObjectId = Hashable
Operation = Sequence[ObjectId]
Pair = tuple[ObjectId, ObjectId]
PairProbabilities = dict[tuple[ObjectId, ObjectId], float]


def _canonical(a: ObjectId, b: ObjectId) -> tuple[ObjectId, ObjectId]:
    """Order a pair deterministically (by repr when not comparable)."""
    try:
        return (a, b) if a <= b else (b, a)  # type: ignore[operator]
    except TypeError:
        return (a, b) if repr(a) <= repr(b) else (b, a)


def _finalize(counts: Counter, total_operations: float, min_support: int) -> PairProbabilities:
    if total_operations == 0:
        return {}
    return {
        pair: count / total_operations
        for pair, count in counts.items()
        if count >= min_support
    }


def operation_pairs(
    operation: Operation,
    mode: str = "cooccurrence",
    sizes: Mapping[ObjectId, float] | None = None,
) -> list[Pair]:
    """Reduce one operation to the pairs it contributes (Section 3.2).

    This is the single shared reduction behind every correlation
    estimator — exact or sketched:

    * ``"cooccurrence"`` — every distinct pair of the operation.
    * ``"two_smallest"`` — the two smallest known objects (intersection
      approximation); ties on size break by id repr.
    * ``"union_largest"`` — the largest known object paired with each
      other one (union approximation).

    Args:
        operation: One operation as an iterable of object ids
            (duplicates ignored).
        mode: One of :attr:`CorrelationEstimator.MODES`.
        sizes: Object sizes; required for the size-aware modes, where
            objects missing from the mapping are ignored.

    Returns:
        Canonical pairs, possibly empty; each pair appears at most once.
    """
    if mode != "cooccurrence":
        if mode not in CorrelationEstimator.MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {CorrelationEstimator.MODES}"
            )
        if sizes is None:
            raise ValueError(f"mode {mode!r} requires object sizes")
    return _pairs_from_distinct(list(set(operation)), mode, sizes)


def _pairs_from_distinct(
    distinct: list[ObjectId],
    mode: str,
    sizes: Mapping[ObjectId, float] | None,
) -> list[Pair]:
    """The Section 3.2 reduction over already-deduplicated objects.

    ``distinct`` must carry the iteration order of the operation's
    ``set`` — both the repr sort (ties) and the union pair order depend
    on it, and the batch miner replays recorded operations through this
    helper so its fallback path stays byte-identical to the legacy
    per-operation loop.
    """
    if mode == "cooccurrence":
        objects = sorted(distinct, key=repr)
        return [
            _canonical(objects[a], objects[b])
            for a in range(len(objects))
            for b in range(a + 1, len(objects))
        ]
    assert sizes is not None
    known = [o for o in distinct if o in sizes]
    if len(known) < 2:
        return []
    if mode == "two_smallest":
        known.sort(key=lambda o: (sizes[o], repr(o)))
        return [_canonical(known[0], known[1])]
    largest = max(known, key=lambda o: (sizes[o], repr(o)))
    return [_canonical(largest, other) for other in known if other != largest]


#: Operations mined per vectorized batch.  Bounds the miner's working
#: set to O(chunk + distinct pairs) — the same asymptotics as the
#: legacy streaming loop — while amortizing the numpy dispatch.
_CHUNK_OPS = 4096

#: Raw pair-key backlog that triggers a compaction of the key-space
#: accumulator (see :func:`_compact_keys`).
_COMPACT_PAIRS = 1 << 20


def _compact_keys(
    key_parts: list[np.ndarray], count_parts: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge packed-key streams into (unique keys, summed counts).

    The streams concatenate in emission order, so sorting the unique
    keys by their first index reproduces the Counter's insertion order.
    Counts are summed through ``bincount`` float64 accumulation, exact
    for totals below 2**53 (a trace that large is out of scope).
    """
    keys = np.concatenate(key_parts)
    weights = np.concatenate(count_parts)
    uniq, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
    sums = np.bincount(inverse, weights=weights, minlength=len(uniq))
    order = np.argsort(first)
    return uniq[order], sums.astype(np.int64)[order]


class _TraceEncoder:
    """Interns object ids to dense codes and watches fast-path gates.

    The vectorized miner operates on integer codes, so correctness
    hinges on the code <-> object mapping preserving every property the
    legacy loop relies on: value order (for :func:`_canonical`), repr
    order (for the cooccurrence sort and size tie-breaks), and the
    first-inserted-key-wins identity of ``Counter`` keys.  Those hold
    when every id is a ``str``, or every id is an ``int``/``float``
    (no bools, no NaNs, no cross-type equal values) — anything else
    trips ``fast`` off and the miner falls back to the exact loop over
    the recorded operations.
    """

    __slots__ = (
        "code", "objects", "reprs", "fast", "_has_str", "_has_num", "_repr_seen"
    )

    def __init__(self) -> None:
        self.code: dict[ObjectId, int] = {}
        self.objects: list[ObjectId] = []
        self.reprs: list[str] = []
        self.fast = True
        self._has_str = False
        self._has_num = False
        self._repr_seen: set[str] = set()

    def encode(self, distinct: list[ObjectId]) -> list[int]:
        """Codes for one operation's distinct objects, interning new ones."""
        code = self.code
        out = []
        for obj in distinct:
            c = code.get(obj)
            if c is None:
                c = len(self.objects)
                code[obj] = c
                self.objects.append(obj)
                r = repr(obj)
                if self.fast:
                    t = type(obj)
                    if t is str:
                        self._has_str = True
                    elif t is int:
                        self._has_num = True
                    elif t is float:
                        self._has_num = True
                        if obj != obj:  # NaN breaks total order
                            self.fast = False
                    else:
                        self.fast = False
                    if r in self._repr_seen:
                        # Duplicate reprs make the cooccurrence sort
                        # order depend on per-operation set order.
                        self.fast = False
                    else:
                        self._repr_seen.add(r)
                self.reprs.append(r)
            elif self.fast:
                stored = self.objects[c]
                if stored is not obj and type(stored) is not type(obj):
                    # Equal-but-distinct ids (1 vs True, 1 vs 1.0):
                    # the Counter key must be the operation's own
                    # object, not our representative.
                    self.fast = False
            out.append(c)
        return out

    def fast_ok(self) -> bool:
        """Whether the vectorized path is still exact for this table."""
        return self.fast and not (self._has_str and self._has_num)


def _invert_order(order: list[int]) -> np.ndarray:
    """Permutation -> rank array (``rank[order[i]] = i``)."""
    rank = np.empty(len(order), dtype=np.int64)
    rank[np.asarray(order, dtype=np.int64)] = np.arange(len(order), dtype=np.int64)
    return rank


def _chunk_ranks(
    enc: _TraceEncoder,
    cache: dict,
    mode: str,
    sizes: Mapping[ObjectId, float] | None,
) -> dict | None:
    """Per-code rank arrays for the current intern table (cached).

    Returns ``None`` — flipping the encoder's fast bit off — when a
    size value cannot be compared exactly as a float, which would make
    the vectorized size sort diverge from the legacy tuple sort.
    """
    n = len(enc.objects)
    if cache.get("n") != n:
        cache.clear()
        cache["n"] = n
        cache["repr_rank"] = _invert_order(
            sorted(range(n), key=enc.reprs.__getitem__)
        )
        # Total order is guaranteed by the encoder's type gates.
        cache["value_rank"] = _invert_order(
            sorted(range(n), key=enc.objects.__getitem__)
        )
    if mode != "cooccurrence" and "size_rank" not in cache:
        assert sizes is not None
        in_sizes = np.fromiter(
            (obj in sizes for obj in enc.objects), dtype=bool, count=n
        )
        size_vals = np.zeros(n, dtype=np.float64)
        for c in np.flatnonzero(in_sizes):
            value = sizes[enc.objects[int(c)]]
            try:
                as_float = float(value)
                exact = as_float == value
            except (TypeError, ValueError, OverflowError):
                enc.fast = False
                return None
            if not exact:  # NaN or a value float64 cannot hold exactly
                enc.fast = False
                return None
            size_vals[c] = as_float
        cache["in_sizes"] = in_sizes
        # lexsort: last key is primary -> size first, repr breaks ties,
        # mirroring the legacy (sizes[o], repr(o)) sort key.
        cache["size_rank"] = _invert_order(
            np.lexsort((cache["repr_rank"], size_vals)).tolist()
        )
    return cache


def _mine_chunk(
    flat: np.ndarray,
    lengths: np.ndarray,
    enc: _TraceEncoder,
    mode: str,
    sizes: Mapping[ObjectId, float] | None,
    cache: dict,
) -> np.ndarray | None:
    """One chunk's packed pair keys, duplicates kept, in emission order.

    Returns ``None`` when a gate trips, in which case the caller replays
    the chunk through :func:`_pairs_from_distinct`.
    """
    n = len(enc.objects)
    if n >= 2**31:  # pair keys must fit an int64 product
        enc.fast = False
        return None
    ranks = _chunk_ranks(enc, cache, mode, sizes)
    if ranks is None:
        return None

    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    parts_x: list[np.ndarray] = []
    parts_y: list[np.ndarray] = []
    parts_pos: list[np.ndarray] = []

    if mode == "cooccurrence":
        repr_rank = ranks["repr_rank"]
        emitted = lengths * (lengths - 1) // 2
        pair_base = np.concatenate(([0], np.cumsum(emitted)[:-1]))
        for length in np.unique(lengths):
            length = int(length)
            if length < 2:
                continue
            rows = np.flatnonzero(lengths == length)
            mat = flat[starts[rows][:, None] + np.arange(length)]
            order = np.argsort(repr_rank[mat], axis=1)
            mat = np.take_along_axis(mat, order, axis=1)
            ai, bi = np.triu_indices(length, k=1)
            per_op = length * (length - 1) // 2
            parts_x.append(mat[:, ai].ravel())
            parts_y.append(mat[:, bi].ravel())
            parts_pos.append(
                (pair_base[rows][:, None] + np.arange(per_op)).ravel()
            )
    else:
        size_rank = ranks["size_rank"]
        mask = ranks["in_sizes"][flat]
        running = np.concatenate(([0], np.cumsum(mask)))
        known_len = running[starts + lengths] - running[starts]
        known_flat = flat[mask]
        known_starts = np.concatenate(([0], np.cumsum(known_len)[:-1]))
        if mode == "two_smallest":
            for length in np.unique(known_len):
                length = int(length)
                if length < 2:
                    continue
                rows = np.flatnonzero(known_len == length)
                mat = known_flat[known_starts[rows][:, None] + np.arange(length)]
                order = np.argsort(size_rank[mat], axis=1)[:, :2]
                picked = np.take_along_axis(mat, order, axis=1)
                parts_x.append(picked[:, 0])
                parts_y.append(picked[:, 1])
                parts_pos.append(rows)
        else:  # union_largest
            emitted = np.where(known_len >= 2, known_len - 1, 0)
            pair_base = np.concatenate(([0], np.cumsum(emitted)[:-1]))
            for length in np.unique(known_len):
                length = int(length)
                if length < 2:
                    continue
                rows = np.flatnonzero(known_len == length)
                mat = known_flat[known_starts[rows][:, None] + np.arange(length)]
                biggest = np.argmax(size_rank[mat], axis=1)
                keep = np.arange(length)[None, :] != biggest[:, None]
                others = mat[keep].reshape(-1, length - 1)
                parts_x.append(
                    np.repeat(mat[np.arange(len(rows)), biggest], length - 1)
                )
                parts_y.append(others.ravel())
                parts_pos.append(
                    (pair_base[rows][:, None] + np.arange(length - 1)).ravel()
                )

    if not parts_x:
        return np.empty(0, dtype=np.int64)
    cx = np.concatenate(parts_x)
    cy = np.concatenate(parts_y)
    emission = np.argsort(np.concatenate(parts_pos))
    cx = cx[emission]
    cy = cy[emission]
    value_rank = ranks["value_rank"]
    swap = value_rank[cx] > value_rank[cy]
    lo = np.where(swap, cy, cx)
    hi = np.where(swap, cx, cy)
    # Codes stay below 2**31, so a packed int64 key is collision-free
    # and — unlike ``lo * n + hi`` — independent of the table size,
    # letting key streams from different chunks merge directly.
    return (lo << np.int64(32)) | hi


def _single_pass(
    trace: Iterable[Operation],
    mode: str,
    sizes: Mapping[ObjectId, float] | None,
    min_support: int,
) -> PairProbabilities:
    """Count pairs in one pass; ``trace`` may be a one-shot iterable.

    Operations are deduplicated and interned as they stream by, then
    mined in vectorized chunks of :data:`_CHUNK_OPS`; the per-chunk
    counts fold into one :class:`~collections.Counter` in emission
    order, so the result — values *and* dict insertion order — is
    byte-identical to the legacy per-operation loop, which remains the
    fallback whenever an exactness gate trips (see
    :class:`_TraceEncoder`).
    """
    counts: Counter = Counter()
    total = 0
    enc = _TraceEncoder()
    ranks_cache: dict = {}
    chunk_ops: list[list[ObjectId]] = []
    chunk_flat: list[int] = []
    chunk_lens: list[int] = []
    # Order-preserving key-space accumulator: parallel (keys, counts)
    # streams, compacted whenever the raw backlog grows past a bound so
    # memory stays O(unique pairs + compaction window).
    key_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []
    pending = 0

    def compact() -> None:
        nonlocal pending
        keys, sums = _compact_keys(key_parts, count_parts)
        key_parts[:] = [keys]
        count_parts[:] = [sums]
        pending = 0

    def flush() -> None:
        nonlocal pending
        if not chunk_lens:
            return
        mined = None
        if enc.fast_ok():
            mined = _mine_chunk(
                np.asarray(chunk_flat, dtype=np.int64),
                np.asarray(chunk_lens, dtype=np.int64),
                enc,
                mode,
                sizes,
                ranks_cache,
            )
        if mined is None:
            # A gate tripped: this chunk (and, the gates being sticky,
            # every later one) replays the exact legacy loop over the
            # recorded per-operation distinct lists.  The gate object
            # was first seen in this chunk, so earlier vectorized
            # chunks were unaffected by it.
            for distinct in chunk_ops:
                counts.update(_pairs_from_distinct(distinct, mode, sizes))
        else:
            key_parts.append(mined)
            count_parts.append(np.ones(len(mined), dtype=np.int64))
            pending += len(mined)
            if pending > _COMPACT_PAIRS:
                compact()
        chunk_ops.clear()
        chunk_flat.clear()
        chunk_lens.clear()

    for operation in trace:
        if total == 0 and mode != "cooccurrence":
            if mode not in CorrelationEstimator.MODES:
                raise ValueError(
                    f"unknown mode {mode!r}; expected one of "
                    f"{CorrelationEstimator.MODES}"
                )
            if sizes is None:
                raise ValueError(f"mode {mode!r} requires object sizes")
        total += 1
        distinct = list(set(operation))
        chunk_ops.append(distinct)
        chunk_lens.append(len(distinct))
        chunk_flat.extend(enc.encode(distinct))
        if len(chunk_lens) >= _CHUNK_OPS:
            flush()
    flush()

    if key_parts:
        keys, sums = _compact_keys(key_parts, count_parts)
        objects = enc.objects
        merged: Counter = Counter()
        for key, count in zip(keys.tolist(), sums.tolist()):
            merged[(objects[key >> 32], objects[key & 0xFFFFFFFF])] = count
        # Loop-fallback chunks, if any, ran strictly after every
        # vectorized chunk, so their new pairs append behind the
        # vectorized ones — matching the legacy insertion order.
        merged.update(counts)
        counts = merged
    return _finalize(counts, total, min_support)


def cooccurrence_correlations(
    trace: Iterable[Operation], min_support: int = 1
) -> PairProbabilities:
    """Raw co-occurrence estimator: every pair in an operation counts.

    This is the paper's base definition of ``r(i, j)`` and is exact for
    traces of two-object operations.

    Args:
        trace: Operations; each operation is an iterable of object ids
            (duplicates within an operation are ignored).  A single-use
            iterable is fine — the trace is read exactly once.
        min_support: Drop pairs observed fewer than this many times.

    Returns:
        Mapping from canonical pairs to empirical probabilities.
    """
    return _single_pass(trace, "cooccurrence", None, min_support)


def two_smallest_correlations(
    trace: Iterable[Operation],
    sizes: Mapping[ObjectId, float],
    min_support: int = 1,
) -> PairProbabilities:
    """Intersection-like estimator: count only the two smallest objects.

    Ties on size are broken by object id (via repr) so the estimator is
    deterministic.  Operations with fewer than two distinct known
    objects contribute nothing but still count toward the denominator,
    mirroring the paper's per-operation probability definition.

    Args:
        trace: Operations as iterables of object ids, read in a single
            pass (generators work).
        sizes: Object sizes used to find the two smallest.  Objects
            missing from this mapping are ignored.
        min_support: Drop pairs observed fewer than this many times.
    """
    return _single_pass(trace, "two_smallest", sizes, min_support)


def union_largest_correlations(
    trace: Iterable[Operation],
    sizes: Mapping[ObjectId, float],
    min_support: int = 1,
) -> PairProbabilities:
    """Union-like estimator: pair the largest object with each other.

    Models transferring all requested objects to the node hosting the
    largest one (Section 3.2), so an operation over ``q`` objects
    contributes ``q - 1`` pairs, all sharing the largest object.

    Args:
        trace: Operations as iterables of object ids, read in a single
            pass (generators work).
        sizes: Object sizes used to find the largest.
        min_support: Drop pairs observed fewer than this many times.
    """
    return _single_pass(trace, "union_largest", sizes, min_support)


@runtime_checkable
class PairEstimator(Protocol):
    """Anything that estimates pair correlations from an operation stream.

    Implemented exactly by :class:`CorrelationEstimator` and in bounded
    memory by
    :class:`~repro.online.sketch.SketchCorrelationEstimator`; the
    adaptive placer and the online controller accept either.
    """

    @property
    def num_operations(self) -> int: ...

    def observe(self, operation: Operation) -> None: ...

    def observe_all(self, trace: Iterable[Operation]) -> None: ...

    def correlations(self, min_support: int = 1) -> PairProbabilities: ...

    def top_pairs(self, k: int) -> list[tuple[Pair, float]]: ...

    def decay(self, factor: float) -> None: ...


class CorrelationEstimator:
    """Incremental pair-correlation estimation over a stream of operations.

    Useful when the trace does not fit in memory or arrives online.
    The estimation mode mirrors the module-level functions.  Memory
    grows with the number of *distinct* pairs; for a bounded-memory
    backend with the same :class:`PairEstimator` surface see
    :class:`~repro.online.sketch.SketchCorrelationEstimator`.

    Example:
        >>> est = CorrelationEstimator(mode="cooccurrence")
        >>> est.observe(["a", "b"])
        >>> est.observe(["a", "b", "c"])
        >>> est.correlations()[("a", "b")]
        1.0
    """

    MODES = ("cooccurrence", "two_smallest", "union_largest")

    def __init__(
        self,
        mode: str = "cooccurrence",
        sizes: Mapping[ObjectId, float] | None = None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        if mode != "cooccurrence" and sizes is None:
            raise ValueError(f"mode {mode!r} requires object sizes")
        self.mode = mode
        self.sizes = sizes
        self._counts: Counter = Counter()
        self._total = 0.0

    @property
    def num_operations(self) -> int:
        """Operations observed so far (discounted after :meth:`decay`)."""
        return int(self._total)

    def observe(self, operation: Operation) -> None:
        """Fold one operation into the estimate."""
        self._total += 1
        self._counts.update(operation_pairs(operation, self.mode, self.sizes))

    def observe_all(self, trace: Iterable[Operation]) -> None:
        """Fold every operation of ``trace`` into the estimate."""
        for operation in trace:
            self.observe(operation)

    def observe_trace(self, trace: Iterable[Operation]) -> int:
        """Fold a whole trace in one batched pass; returns ops ingested.

        Produces byte-identical state to :meth:`observe_all`: pairs
        enter the counter in the same stream order (so dict insertion
        order matches) and the operation total follows the same float
        accumulation.  The win is one ``Counter.update`` instead of one
        per operation — the hot ingest path for periodic replanning.
        """
        pairs: list[Pair] = []
        ops = 0
        for operation in trace:
            ops += 1
            pairs.extend(operation_pairs(operation, self.mode, self.sizes))
        self._counts.update(pairs)
        # ``observe`` accumulates the total one float += 1 at a time.
        # A single ``+= ops`` is only guaranteed to match when the
        # running total is an exact integer small enough that every
        # intermediate step is representable; after a decay left a
        # fractional total, replay the per-operation accumulation.
        if float(self._total).is_integer() and self._total + ops < 2**53:
            self._total += float(ops)
        else:
            total = self._total
            for _ in range(ops):
                total += 1
            self._total = total
        return ops

    def decay(self, factor: float) -> None:
        """Exponentially age the history: scale every count by ``factor``.

        Probabilities (count / total) are unchanged by a decay, but the
        *support* of old pairs shrinks, so correlations that stop being
        observed fade below ``min_support`` and eventually vanish.

        Args:
            factor: Multiplier in ``[0, 1]``; 1 is a no-op, 0 forgets
                everything.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        if factor == 1.0:
            return
        self._total *= factor
        if factor == 0.0:
            self._counts.clear()
            return
        for pair in self._counts:
            self._counts[pair] *= factor

    def correlations(self, min_support: int = 1) -> PairProbabilities:
        """Current pair-probability estimates."""
        return _finalize(self._counts, self._total, min_support)

    def top_pairs(self, k: int) -> list[tuple[tuple[ObjectId, ObjectId], float]]:
        """The ``k`` most correlated pairs, descending."""
        probs = self.correlations()
        return sorted(probs.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
