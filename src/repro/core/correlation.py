"""Pair-correlation estimation from multi-object operation traces.

The paper defines the correlation ``r(i, j)`` of an object pair as the
probability that both objects are requested together in an operation.
For operations touching more than two objects, Section 3.2 reduces the
operation to one or more two-object operations:

* **Intersection-like** operations (multi-keyword search, database
  joins) are approximated by a single two-object operation on the two
  *smallest* requested objects, so ``r(i, j)`` becomes the probability
  that ``i`` and ``j`` are the two smallest objects of an operation.
* **Union-like** operations are approximated by a sequence of pairs,
  each joining the *largest* requested object with one other object.

All three estimators below take a trace — an iterable of operations,
each an iterable of object ids — and return a dict mapping canonical
id pairs to empirical probabilities (pair count / number of operations
counted).  Every estimator makes exactly **one pass** over the trace,
so single-use iterables (generators, streaming readers) work without
materializing the trace in memory.

The per-operation reduction is exposed as :func:`operation_pairs` and
the incremental surface as the :class:`PairEstimator` protocol, shared
by the exact :class:`CorrelationEstimator` here and the memory-bounded
sketch backend in :mod:`repro.online.sketch`.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping, Protocol, Sequence, runtime_checkable

ObjectId = Hashable
Operation = Sequence[ObjectId]
Pair = tuple[ObjectId, ObjectId]
PairProbabilities = dict[tuple[ObjectId, ObjectId], float]


def _canonical(a: ObjectId, b: ObjectId) -> tuple[ObjectId, ObjectId]:
    """Order a pair deterministically (by repr when not comparable)."""
    try:
        return (a, b) if a <= b else (b, a)  # type: ignore[operator]
    except TypeError:
        return (a, b) if repr(a) <= repr(b) else (b, a)


def _finalize(counts: Counter, total_operations: float, min_support: int) -> PairProbabilities:
    if total_operations == 0:
        return {}
    return {
        pair: count / total_operations
        for pair, count in counts.items()
        if count >= min_support
    }


def operation_pairs(
    operation: Operation,
    mode: str = "cooccurrence",
    sizes: Mapping[ObjectId, float] | None = None,
) -> list[Pair]:
    """Reduce one operation to the pairs it contributes (Section 3.2).

    This is the single shared reduction behind every correlation
    estimator — exact or sketched:

    * ``"cooccurrence"`` — every distinct pair of the operation.
    * ``"two_smallest"`` — the two smallest known objects (intersection
      approximation); ties on size break by id repr.
    * ``"union_largest"`` — the largest known object paired with each
      other one (union approximation).

    Args:
        operation: One operation as an iterable of object ids
            (duplicates ignored).
        mode: One of :attr:`CorrelationEstimator.MODES`.
        sizes: Object sizes; required for the size-aware modes, where
            objects missing from the mapping are ignored.

    Returns:
        Canonical pairs, possibly empty; each pair appears at most once.
    """
    if mode == "cooccurrence":
        objects = sorted(set(operation), key=repr)
        return [
            _canonical(objects[a], objects[b])
            for a in range(len(objects))
            for b in range(a + 1, len(objects))
        ]
    if mode not in CorrelationEstimator.MODES:
        raise ValueError(
            f"unknown mode {mode!r}; expected one of {CorrelationEstimator.MODES}"
        )
    if sizes is None:
        raise ValueError(f"mode {mode!r} requires object sizes")
    known = [o for o in set(operation) if o in sizes]
    if len(known) < 2:
        return []
    if mode == "two_smallest":
        known.sort(key=lambda o: (sizes[o], repr(o)))
        return [_canonical(known[0], known[1])]
    largest = max(known, key=lambda o: (sizes[o], repr(o)))
    return [_canonical(largest, other) for other in known if other != largest]


def _single_pass(
    trace: Iterable[Operation],
    mode: str,
    sizes: Mapping[ObjectId, float] | None,
    min_support: int,
) -> PairProbabilities:
    """Count pairs in one pass; ``trace`` may be a one-shot iterable."""
    counts: Counter = Counter()
    total = 0
    for operation in trace:
        total += 1
        counts.update(operation_pairs(operation, mode, sizes))
    return _finalize(counts, total, min_support)


def cooccurrence_correlations(
    trace: Iterable[Operation], min_support: int = 1
) -> PairProbabilities:
    """Raw co-occurrence estimator: every pair in an operation counts.

    This is the paper's base definition of ``r(i, j)`` and is exact for
    traces of two-object operations.

    Args:
        trace: Operations; each operation is an iterable of object ids
            (duplicates within an operation are ignored).  A single-use
            iterable is fine — the trace is read exactly once.
        min_support: Drop pairs observed fewer than this many times.

    Returns:
        Mapping from canonical pairs to empirical probabilities.
    """
    return _single_pass(trace, "cooccurrence", None, min_support)


def two_smallest_correlations(
    trace: Iterable[Operation],
    sizes: Mapping[ObjectId, float],
    min_support: int = 1,
) -> PairProbabilities:
    """Intersection-like estimator: count only the two smallest objects.

    Ties on size are broken by object id (via repr) so the estimator is
    deterministic.  Operations with fewer than two distinct known
    objects contribute nothing but still count toward the denominator,
    mirroring the paper's per-operation probability definition.

    Args:
        trace: Operations as iterables of object ids, read in a single
            pass (generators work).
        sizes: Object sizes used to find the two smallest.  Objects
            missing from this mapping are ignored.
        min_support: Drop pairs observed fewer than this many times.
    """
    return _single_pass(trace, "two_smallest", sizes, min_support)


def union_largest_correlations(
    trace: Iterable[Operation],
    sizes: Mapping[ObjectId, float],
    min_support: int = 1,
) -> PairProbabilities:
    """Union-like estimator: pair the largest object with each other.

    Models transferring all requested objects to the node hosting the
    largest one (Section 3.2), so an operation over ``q`` objects
    contributes ``q - 1`` pairs, all sharing the largest object.

    Args:
        trace: Operations as iterables of object ids, read in a single
            pass (generators work).
        sizes: Object sizes used to find the largest.
        min_support: Drop pairs observed fewer than this many times.
    """
    return _single_pass(trace, "union_largest", sizes, min_support)


@runtime_checkable
class PairEstimator(Protocol):
    """Anything that estimates pair correlations from an operation stream.

    Implemented exactly by :class:`CorrelationEstimator` and in bounded
    memory by
    :class:`~repro.online.sketch.SketchCorrelationEstimator`; the
    adaptive placer and the online controller accept either.
    """

    @property
    def num_operations(self) -> int: ...

    def observe(self, operation: Operation) -> None: ...

    def observe_all(self, trace: Iterable[Operation]) -> None: ...

    def correlations(self, min_support: int = 1) -> PairProbabilities: ...

    def top_pairs(self, k: int) -> list[tuple[Pair, float]]: ...

    def decay(self, factor: float) -> None: ...


class CorrelationEstimator:
    """Incremental pair-correlation estimation over a stream of operations.

    Useful when the trace does not fit in memory or arrives online.
    The estimation mode mirrors the module-level functions.  Memory
    grows with the number of *distinct* pairs; for a bounded-memory
    backend with the same :class:`PairEstimator` surface see
    :class:`~repro.online.sketch.SketchCorrelationEstimator`.

    Example:
        >>> est = CorrelationEstimator(mode="cooccurrence")
        >>> est.observe(["a", "b"])
        >>> est.observe(["a", "b", "c"])
        >>> est.correlations()[("a", "b")]
        1.0
    """

    MODES = ("cooccurrence", "two_smallest", "union_largest")

    def __init__(
        self,
        mode: str = "cooccurrence",
        sizes: Mapping[ObjectId, float] | None = None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        if mode != "cooccurrence" and sizes is None:
            raise ValueError(f"mode {mode!r} requires object sizes")
        self.mode = mode
        self.sizes = sizes
        self._counts: Counter = Counter()
        self._total = 0.0

    @property
    def num_operations(self) -> int:
        """Operations observed so far (discounted after :meth:`decay`)."""
        return int(self._total)

    def observe(self, operation: Operation) -> None:
        """Fold one operation into the estimate."""
        self._total += 1
        self._counts.update(operation_pairs(operation, self.mode, self.sizes))

    def observe_all(self, trace: Iterable[Operation]) -> None:
        """Fold every operation of ``trace`` into the estimate."""
        for operation in trace:
            self.observe(operation)

    def decay(self, factor: float) -> None:
        """Exponentially age the history: scale every count by ``factor``.

        Probabilities (count / total) are unchanged by a decay, but the
        *support* of old pairs shrinks, so correlations that stop being
        observed fade below ``min_support`` and eventually vanish.

        Args:
            factor: Multiplier in ``[0, 1]``; 1 is a no-op, 0 forgets
                everything.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        if factor == 1.0:
            return
        self._total *= factor
        if factor == 0.0:
            self._counts.clear()
            return
        for pair in self._counts:
            self._counts[pair] *= factor

    def correlations(self, min_support: int = 1) -> PairProbabilities:
        """Current pair-probability estimates."""
        return _finalize(self._counts, self._total, min_support)

    def top_pairs(self, k: int) -> list[tuple[tuple[ObjectId, ObjectId], float]]:
        """The ``k`` most correlated pairs, descending."""
        probs = self.correlations()
        return sorted(probs.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
