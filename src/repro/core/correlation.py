"""Pair-correlation estimation from multi-object operation traces.

The paper defines the correlation ``r(i, j)`` of an object pair as the
probability that both objects are requested together in an operation.
For operations touching more than two objects, Section 3.2 reduces the
operation to one or more two-object operations:

* **Intersection-like** operations (multi-keyword search, database
  joins) are approximated by a single two-object operation on the two
  *smallest* requested objects, so ``r(i, j)`` becomes the probability
  that ``i`` and ``j`` are the two smallest objects of an operation.
* **Union-like** operations are approximated by a sequence of pairs,
  each joining the *largest* requested object with one other object.

All three estimators below take a trace — an iterable of operations,
each an iterable of object ids — and return a dict mapping canonical
id pairs to empirical probabilities (pair count / number of operations
counted).
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence

ObjectId = Hashable
Operation = Sequence[ObjectId]
PairProbabilities = dict[tuple[ObjectId, ObjectId], float]


def _canonical(a: ObjectId, b: ObjectId) -> tuple[ObjectId, ObjectId]:
    """Order a pair deterministically (by repr when not comparable)."""
    try:
        return (a, b) if a <= b else (b, a)  # type: ignore[operator]
    except TypeError:
        return (a, b) if repr(a) <= repr(b) else (b, a)


def _finalize(counts: Counter, total_operations: int, min_support: int) -> PairProbabilities:
    if total_operations == 0:
        return {}
    return {
        pair: count / total_operations
        for pair, count in counts.items()
        if count >= min_support
    }


def cooccurrence_correlations(
    trace: Iterable[Operation], min_support: int = 1
) -> PairProbabilities:
    """Raw co-occurrence estimator: every pair in an operation counts.

    This is the paper's base definition of ``r(i, j)`` and is exact for
    traces of two-object operations.

    Args:
        trace: Operations; each operation is an iterable of object ids
            (duplicates within an operation are ignored).
        min_support: Drop pairs observed fewer than this many times.

    Returns:
        Mapping from canonical pairs to empirical probabilities.
    """
    counts: Counter = Counter()
    total = 0
    for operation in trace:
        total += 1
        objects = sorted(set(operation), key=repr)
        for a_pos in range(len(objects)):
            for b_pos in range(a_pos + 1, len(objects)):
                counts[_canonical(objects[a_pos], objects[b_pos])] += 1
    return _finalize(counts, total, min_support)


def two_smallest_correlations(
    trace: Iterable[Operation],
    sizes: Mapping[ObjectId, float],
    min_support: int = 1,
) -> PairProbabilities:
    """Intersection-like estimator: count only the two smallest objects.

    Ties on size are broken by object id (via repr) so the estimator is
    deterministic.  Operations with fewer than two distinct known
    objects contribute nothing but still count toward the denominator,
    mirroring the paper's per-operation probability definition.

    Args:
        trace: Operations as iterables of object ids.
        sizes: Object sizes used to find the two smallest.  Objects
            missing from this mapping are ignored.
        min_support: Drop pairs observed fewer than this many times.
    """
    counts: Counter = Counter()
    total = 0
    for operation in trace:
        total += 1
        known = [o for o in set(operation) if o in sizes]
        if len(known) < 2:
            continue
        known.sort(key=lambda o: (sizes[o], repr(o)))
        counts[_canonical(known[0], known[1])] += 1
    return _finalize(counts, total, min_support)


def union_largest_correlations(
    trace: Iterable[Operation],
    sizes: Mapping[ObjectId, float],
    min_support: int = 1,
) -> PairProbabilities:
    """Union-like estimator: pair the largest object with each other.

    Models transferring all requested objects to the node hosting the
    largest one (Section 3.2), so an operation over ``q`` objects
    contributes ``q - 1`` pairs, all sharing the largest object.

    Args:
        trace: Operations as iterables of object ids.
        sizes: Object sizes used to find the largest.
        min_support: Drop pairs observed fewer than this many times.
    """
    counts: Counter = Counter()
    total = 0
    for operation in trace:
        total += 1
        known = [o for o in set(operation) if o in sizes]
        if len(known) < 2:
            continue
        largest = max(known, key=lambda o: (sizes[o], repr(o)))
        for other in known:
            if other != largest:
                counts[_canonical(largest, other)] += 1
    return _finalize(counts, total, min_support)


class CorrelationEstimator:
    """Incremental pair-correlation estimation over a stream of operations.

    Useful when the trace does not fit in memory or arrives online.
    The estimation mode mirrors the module-level functions.

    Example:
        >>> est = CorrelationEstimator(mode="cooccurrence")
        >>> est.observe(["a", "b"])
        >>> est.observe(["a", "b", "c"])
        >>> est.correlations()[("a", "b")]
        1.0
    """

    MODES = ("cooccurrence", "two_smallest", "union_largest")

    def __init__(
        self,
        mode: str = "cooccurrence",
        sizes: Mapping[ObjectId, float] | None = None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        if mode != "cooccurrence" and sizes is None:
            raise ValueError(f"mode {mode!r} requires object sizes")
        self.mode = mode
        self.sizes = sizes
        self._counts: Counter = Counter()
        self._total = 0

    @property
    def num_operations(self) -> int:
        """Operations observed so far."""
        return self._total

    def observe(self, operation: Operation) -> None:
        """Fold one operation into the estimate."""
        single = [operation]
        if self.mode == "cooccurrence":
            partial = cooccurrence_correlations(single)
        elif self.mode == "two_smallest":
            partial = two_smallest_correlations(single, self.sizes or {})
        else:
            partial = union_largest_correlations(single, self.sizes or {})
        self._total += 1
        for pair in partial:
            # Each helper returns probability over one operation, i.e.
            # count / 1, so the value is the raw pair count.
            self._counts[pair] += int(round(partial[pair]))

    def observe_all(self, trace: Iterable[Operation]) -> None:
        """Fold every operation of ``trace`` into the estimate."""
        for operation in trace:
            self.observe(operation)

    def correlations(self, min_support: int = 1) -> PairProbabilities:
        """Current pair-probability estimates."""
        return _finalize(self._counts, self._total, min_support)

    def top_pairs(self, k: int) -> list[tuple[tuple[ObjectId, ObjectId], float]]:
        """The ``k`` most correlated pairs, descending."""
        probs = self.correlations()
        return sorted(probs.items(), key=lambda item: (-item[1], repr(item[0])))[:k]
