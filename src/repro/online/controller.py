"""The online control loop: ingest, estimate, detect drift, replan.

:class:`OnlinePlanner` turns the offline LPRR pipeline into a
continuously-running daemon over timestamped operation streams:

1. **Ingest** — tumbling periods of operations are folded into a
   memory-bounded correlation estimate
   (:class:`~repro.online.sketch.SketchCorrelationEstimator` by
   default), aged exponentially so old correlations fade.
2. **Detect** — each period ends with a
   :class:`~repro.online.drift.DriftDetector` verdict: top-K pair
   churn and estimated-cost inflation against the last replan.
3. **Replan** — on drift, a placement problem is built from the
   heavy-hitter pairs and planned through
   :func:`~repro.resilience.healing.plan_with_fallbacks`, scoped to
   the heavy-hitter *objects* (the paper's important-object partial
   optimization — everything else stays put).
4. **Migrate** — the new plan is applied through
   :func:`~repro.core.migration.select_migrations` under a per-period
   migration-byte budget, so convergence never floods the network.
   When a budget truncates the plan, the unapplied remainder is
   carried into following stable periods (one budget's worth each, as
   ``"migrate"`` decisions) until the target is reached or no
   remaining move is profitable under the fresh estimate.

Every decision is recorded in a :class:`PeriodDecision` and surfaced
in an :class:`OnlineReport` whose JSON is a pure function of the seed
and the stream — no wall-clock ever enters, so same-seed runs are
byte-identical.  Spans (``online.run`` > ``online.period`` >
``online.replan``) and metrics (``online.periods``, ``online.replans``,
``online.operations``, ``online.migrated_bytes``,
``online.sketch_cells``) flow through :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping

import numpy as np

from repro import obs
from repro.core.correlation import PairEstimator
from repro.core.lp import WarmStart
from repro.core.migration import select_migrations
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, PlanResult
from repro.online.drift import DriftDecision, DriftDetector, DriftThresholds
from repro.online.sketch import SketchCorrelationEstimator
from repro.online.windows import DecayingEstimator, StreamPeriod, tumbling_periods

ObjectId = Hashable

ONLINE_REPORT_SCHEMA = "repro.online.report/v1"


def heavy_hitter_plan(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """Plan a problem scoped to the objects of its correlated pairs.

    This is the ``"online"`` planner of the registry: the problem's
    pair set is assumed already pruned to the heavy hitters (that is
    what the sketch estimate *is*), so the optimization scope is
    exactly the objects appearing in some pair — out-of-scope objects
    are hashed by the inner planner and pinned by the controller.
    Planning itself runs through the resilient fallback chain, so a
    failing LP backend degrades the plan instead of stalling the loop.

    Args:
        problem: The CCA instance (typically built from sketch
            estimates).
        config: Planning knobs; an integer ``config.scope`` (or a
            ``PlanScope`` ``top``) further caps the heavy-object
            scope, and a ``PlanScope.pg`` scope passes through to the
            placement-group planner unchanged.

    Returns:
        A :class:`PlanResult` with ``planner="online"`` and
        ``diagnostics["heavy_objects"]`` recording the scope used.
    """
    from dataclasses import replace

    from repro.core.strategies import PlanScope
    from repro.resilience.healing import plan_with_fallbacks

    paired: set[int] = set()
    for i, j in problem.pair_index:
        paired.add(int(i))
        paired.add(int(j))
    scope = len(paired)
    spec = config.scope_spec
    if spec.kind == "pg":
        result = plan_with_fallbacks(problem, config=config)
    else:
        if spec.top is not None:
            scope = min(scope, spec.top)
        result = plan_with_fallbacks(
            problem,
            config=config.with_options(scope=PlanScope.heavy_pairs(top=scope)),
        )
    diagnostics = {**result.diagnostics, "heavy_objects": scope}
    return replace(result, planner="online", diagnostics=diagnostics)


@dataclass(frozen=True)
class OnlineConfig:
    """Everything the online control loop can be told.

    Attributes:
        num_nodes: Placement nodes (uniform, capacity-unconstrained;
            the planner's ``capacity_factor`` still balances load).
        window_s: Tumbling period length in seconds.
        mode: Pair-reduction mode (see
            :attr:`~repro.core.correlation.CorrelationEstimator.MODES`).
        sketch_width: Count-Min row width of the default estimator.
        sketch_depth: Count-Min rows of the default estimator.
        heavy_hitters: Space-Saving capacity (the top-K pair budget).
        decay: Per-period history multiplier in ``(0, 1]``; 1 never
            forgets.
        min_support: Minimum (decayed) pair count for an estimate to
            enter the placement problem.
        seed: Seed for the sketch hashing (planning seeds live in
            ``planning.seed``).
        thresholds: Drift triggers.
        budget_fraction: Per-replan migration budget as a fraction of
            total object size.
        planning: Knobs forwarded to the fallback-chain planner.
        bootstrap_operations: Observed operations required before the
            initial placement is planned.
    """

    num_nodes: int
    window_s: float = 3600.0
    mode: str = "cooccurrence"
    sketch_width: int = 1024
    sketch_depth: int = 4
    heavy_hitters: int = 256
    decay: float = 1.0
    min_support: int = 1
    seed: int = 0
    thresholds: DriftThresholds = field(default_factory=DriftThresholds)
    budget_fraction: float = 0.05
    planning: PlanConfig = field(default_factory=PlanConfig)
    bootstrap_operations: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.budget_fraction < 0:
            raise ValueError("budget_fraction must be nonnegative")
        if self.bootstrap_operations < 1:
            raise ValueError("bootstrap_operations must be at least 1")


@dataclass(frozen=True)
class PeriodDecision:
    """What the controller did with one stream period.

    Attributes:
        period: Zero-based period index.
        start_s: Period start time.
        end_s: Period end time.
        operations: Operations ingested this period.
        tracked_pairs: Pairs in the estimate after ingestion.
        action: ``"observe"`` (no placement change), ``"bootstrap"``
            (initial plan), ``"replan"`` (drift-triggered), or
            ``"migrate"`` (resuming a budget-truncated migration
            during a stable period).
        drift: The drift verdict (None before bootstrap).
        planner: Delegate planner that produced the plan (bootstrap /
            replan periods only).
        moves: Objects migrated this period.
        bytes_moved: Migration traffic this period.
        budget_bytes: The period's migration budget (replan / migrate
            periods only).
        cost_estimate: Placement cost under the period's estimate,
            after any migration.
    """

    period: int
    start_s: float
    end_s: float
    operations: int
    tracked_pairs: int
    action: str
    drift: DriftDecision | None = None
    planner: str | None = None
    moves: int = 0
    bytes_moved: float = 0.0
    budget_bytes: float | None = None
    cost_estimate: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (floats rounded for byte-stable output)."""
        return {
            "period": self.period,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6),
            "operations": self.operations,
            "tracked_pairs": self.tracked_pairs,
            "action": self.action,
            "drift": None if self.drift is None else self.drift.to_dict(),
            "planner": self.planner,
            "moves": self.moves,
            "bytes_moved": round(self.bytes_moved, 6),
            "budget_bytes": (
                None if self.budget_bytes is None else round(self.budget_bytes, 6)
            ),
            "cost_estimate": round(self.cost_estimate, 9),
        }


@dataclass(frozen=True)
class OnlineReport:
    """The deliverable of one online run — byte-reproducible JSON.

    Derived entirely from the seed, the configuration, and the stream;
    no wall-clock or process state enters, so the same inputs always
    produce identical :meth:`to_json` output.

    Attributes:
        num_nodes: Nodes the run placed onto.
        window_s: Period length.
        seed: Sketch seed of the run.
        memory_cells: Bounded estimator state (sketch cells + tracker
            capacity) — constant for the whole run.
        periods: Per-period decisions, in order.
        final_placement: Object id (stringified) -> node index.
        final_cost_estimate: Final placement cost under the final
            estimate.
    """

    num_nodes: int
    window_s: float
    seed: int
    memory_cells: int
    periods: tuple[PeriodDecision, ...]
    final_placement: dict[str, int]
    final_cost_estimate: float

    @property
    def replans(self) -> int:
        """Drift-triggered replans across the run."""
        return sum(1 for p in self.periods if p.action == "replan")

    @property
    def total_operations(self) -> int:
        """Operations ingested across the run."""
        return sum(p.operations for p in self.periods)

    @property
    def total_bytes_moved(self) -> float:
        """Migration traffic across the run (bootstrap excluded)."""
        return sum(
            p.bytes_moved
            for p in self.periods
            if p.action in ("replan", "migrate")
        )

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "schema": ONLINE_REPORT_SCHEMA,
            "num_nodes": self.num_nodes,
            "window_s": round(self.window_s, 6),
            "seed": self.seed,
            "memory_cells": self.memory_cells,
            "replans": self.replans,
            "total_operations": self.total_operations,
            "total_bytes_moved": round(self.total_bytes_moved, 6),
            "final_cost_estimate": round(self.final_cost_estimate, 9),
            "final_placement": dict(sorted(self.final_placement.items())),
            "periods": [p.to_dict() for p in self.periods],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — byte-identical per seed."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable period-by-period summary."""
        lines = [
            f"online run: {len(self.periods)} periods x {self.window_s:g}s, "
            f"{self.total_operations} operations, {self.num_nodes} nodes",
            f"estimator memory: {self.memory_cells} cells (bounded)",
            f"replans: {self.replans}, migrated {self.total_bytes_moved:g} bytes",
            "",
            f"{'period':>6} {'ops':>6} {'pairs':>6} {'action':<10} "
            f"{'churn':>7} {'moves':>6} {'bytes':>10} {'est.cost':>10}",
        ]
        for p in self.periods:
            churn = "-" if p.drift is None else f"{p.drift.churn:.3f}"
            lines.append(
                f"{p.period:>6} {p.operations:>6} {p.tracked_pairs:>6} "
                f"{p.action:<10} {churn:>7} {p.moves:>6} "
                f"{p.bytes_moved:>10.1f} {p.cost_estimate:>10.4f}"
            )
        lines.append("")
        lines.append(f"final estimated cost: {self.final_cost_estimate:.6g}")
        return "\n".join(lines)


class OnlinePlanner:
    """Continuous placement maintenance over a timestamped stream.

    Args:
        sizes: Object id -> size; the placement universe is fixed for
            the run.  Objects outside it are dropped from incoming
            operations before estimation, and correlations referencing
            them (e.g. from a pre-loaded custom estimator) never reach
            the placement problem — out-of-universe traffic is
            ignored, not fatal.
        config: The control-loop configuration.
        estimator: Optional estimator backend implementing
            :class:`~repro.core.correlation.PairEstimator`; defaults
            to a :class:`SketchCorrelationEstimator` built from the
            config's sketch knobs.  Exact estimation (unbounded
            memory) is one
            :class:`~repro.core.correlation.CorrelationEstimator`
            away.

    Example:
        >>> planner = OnlinePlanner({"a": 1.0, "b": 1.0}, OnlineConfig(
        ...     num_nodes=2, window_s=10.0,
        ... ))
        >>> report = planner.run([TimedOperation(0.0, ("a", "b"))] * 30)
        >>> report.periods[0].action
        'bootstrap'
    """

    def __init__(
        self,
        sizes: Mapping[ObjectId, float],
        config: OnlineConfig,
        estimator: PairEstimator | None = None,
        on_publish: "Callable[[int, dict[ObjectId, int]], None] | None" = None,
    ):
        self.sizes = dict(sizes)
        if not self.sizes:
            raise ValueError("sizes must cover at least one object")
        self.config = config
        # Plan-publication hook: called with (period_index, mapping)
        # after every period that changed the assignment (bootstrap,
        # replan, migrate).  The serving layer uses this to hot-swap a
        # router's PlanSnapshot (see repro.serve.snapshot); the mapping
        # passed is a fresh copy, safe to freeze.
        self.on_publish = on_publish
        if estimator is None:
            estimator = SketchCorrelationEstimator(
                mode=config.mode,
                sizes=self.sizes if config.mode != "cooccurrence" else None,
                width=config.sketch_width,
                depth=config.sketch_depth,
                heavy_hitters=config.heavy_hitters,
                seed=config.seed,
            )
        self.estimator = estimator
        self._window = DecayingEstimator(estimator, factor=config.decay)
        self._detector = DriftDetector(config.thresholds)
        self._assignment: dict[ObjectId, int] | None = None
        self._pending_target: dict[ObjectId, int] | None = None
        self._total_size = float(sum(self.sizes.values()))
        # Fractional solution of the last plan, replayed into the next
        # one when the first-order backend is configured — consecutive
        # replans then skip the annealing phase (see docs/SOLVERS.md).
        self._warm_start: WarmStart | None = None

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------
    @property
    def placement_mapping(self) -> dict[ObjectId, int]:
        """The current object -> node-index assignment.

        Raises:
            RuntimeError: Before the bootstrap plan has run.
        """
        if self._assignment is None:
            raise RuntimeError("no placement yet: the loop has not bootstrapped")
        return dict(self._assignment)

    @property
    def memory_cells(self) -> int:
        """Bounded estimator state, when the backend reports it (else 0)."""
        return int(getattr(self.estimator, "memory_cells", 0))

    def _in_universe(self, correlations: Mapping) -> dict:
        """Drop correlations referencing objects outside ``sizes``.

        The default estimator never produces such pairs (operations
        are filtered before observation), but a custom backend may
        arrive pre-loaded with them — they must not reach
        :meth:`PlacementProblem.build`, which rejects unknown objects.
        """
        return {
            pair: r
            for pair, r in correlations.items()
            if pair[0] in self.sizes and pair[1] in self.sizes
        }

    def _problem(self, correlations: Mapping) -> PlacementProblem:
        return PlacementProblem.build(
            self.sizes, self.config.num_nodes, correlations
        )

    def _placement_on(self, problem: PlacementProblem) -> Placement:
        assert self._assignment is not None
        return Placement.from_mapping(
            problem, {obj: self._assignment[obj] for obj in problem.object_ids}
        )

    def _planning_config(self) -> PlanConfig:
        """The planning knobs for this period, warm-started when the
        first-order backend carried a fractional solution forward."""
        config = self.config.planning
        if self._warm_start is not None and config.backend == "fo":
            config = config.with_options(warm_start=self._warm_start)
        return config

    def _remember_plan(self, result: PlanResult) -> None:
        """Keep the plan's fractional solution as the next warm start.

        Only plans that carried one (first-order/exact-scope LPRR)
        update the stored state; a fallback to greedy or hash leaves
        the previous warm start in place, which is still the best
        available iterate.  Warm-start *hits* (the solver actually
        reused prior fractions) bump ``online.warm_start_hits``.
        """
        fractional = result.fractional
        if fractional is not None:
            self._warm_start = WarmStart.from_fractional(fractional)
        if result.diagnostics.get("warm_start") == "hit":
            obs.counter("online.warm_start_hits").inc()

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def run(
        self, stream: Iterable, window_s: float | None = None
    ) -> OnlineReport:
        """Drive the loop over a whole stream and report every decision.

        Args:
            stream: Timestamped queries
                (:class:`~repro.workloads.stream.TimedQuery`) or
                operations
                (:class:`~repro.online.windows.TimedOperation`) in
                non-decreasing time order.
            window_s: Override the config's period length.

        Returns:
            The run's byte-reproducible :class:`OnlineReport`.
        """
        window = self.config.window_s if window_s is None else window_s
        decisions: list[PeriodDecision] = []
        with obs.span("online.run", nodes=self.config.num_nodes):
            obs.record(
                "online.run.start",
                nodes=self.config.num_nodes,
                window_s=round(window, 6),
                seed=self.config.seed,
                thresholds=self.config.thresholds.to_dict(),
                budget_fraction=self.config.budget_fraction,
                memory_cells=self.memory_cells,
            )
            for period in tumbling_periods(stream, window):
                decisions.append(self.observe_period(period))
            obs.record(
                "online.run.end",
                periods=len(decisions),
                replans=sum(1 for d in decisions if d.action == "replan"),
                total_operations=sum(d.operations for d in decisions),
                total_bytes_moved=round(
                    sum(
                        d.bytes_moved
                        for d in decisions
                        if d.action in ("replan", "migrate")
                    ),
                    6,
                ),
            )
        final_cost = decisions[-1].cost_estimate if decisions else 0.0
        final_mapping = (
            {} if self._assignment is None
            else {str(obj): int(node) for obj, node in self._assignment.items()}
        )
        return OnlineReport(
            num_nodes=self.config.num_nodes,
            window_s=window,
            seed=self.config.seed,
            memory_cells=self.memory_cells,
            periods=tuple(decisions),
            final_placement=final_mapping,
            final_cost_estimate=final_cost,
        )

    def observe_period(self, period: StreamPeriod) -> PeriodDecision:
        """Ingest one period and decide: observe, bootstrap, or replan."""
        config = self.config
        with obs.span(
            "online.period", index=period.index, operations=period.num_operations
        ) as span:
            # Out-of-universe objects cannot be placed; drop them here
            # so they neither crash problem construction nor waste
            # heavy-hitter capacity.  The filtered period then ingests
            # through the batched trace path in one call.
            self._window.observe_trace(
                [
                    tuple(obj for obj in operation if obj in self.sizes)
                    for operation in period.operations
                ]
            )
            obs.counter("online.periods").inc()
            obs.counter("online.operations").inc(period.num_operations)
            obs.gauge("online.sketch_cells").set(self.memory_cells)

            correlations = self._in_universe(
                self._window.correlations(config.min_support)
            )
            if self._assignment is None:
                decision = self._maybe_bootstrap(period, correlations)
            else:
                decision = self._maybe_replan(period, correlations)
            span.set(action=decision.action)
            # The full decision — drift verdict, chosen planner, budget,
            # bytes moved — is the flight-recorder record for this
            # period, keyed to virtual stream time.  ``period`` is in
            # the payload already, and the rounded to_dict() is exactly
            # what the report serializes, so the journal stays as
            # byte-reproducible as the report itself.
            obs.record(
                "online.period", t=round(period.start_s, 6), **decision.to_dict()
            )
            self._window.advance_period()
        if self.on_publish is not None and decision.action in (
            "bootstrap",
            "replan",
            "migrate",
        ):
            self.on_publish(period.index, self.placement_mapping)
        return decision

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _maybe_bootstrap(
        self, period: StreamPeriod, correlations: Mapping
    ) -> PeriodDecision:
        config = self.config
        enough = (
            self.estimator.num_operations >= config.bootstrap_operations
            and correlations
        )
        if not enough:
            return PeriodDecision(
                period=period.index,
                start_s=period.start_s,
                end_s=period.end_s,
                operations=period.num_operations,
                tracked_pairs=len(correlations),
                action="observe",
            )
        problem = self._problem(correlations)
        result = heavy_hitter_plan(problem, config=self._planning_config())
        self._remember_plan(result)
        self._assignment = {
            obj: int(node)
            for obj, node in zip(problem.object_ids, result.placement.assignment)
        }
        cost = result.placement.communication_cost()
        self._detector.rebase(correlations, cost)
        return PeriodDecision(
            period=period.index,
            start_s=period.start_s,
            end_s=period.end_s,
            operations=period.num_operations,
            tracked_pairs=len(correlations),
            action="bootstrap",
            planner=result.diagnostics.get("delegate", result.planner),
            cost_estimate=cost,
        )

    def _maybe_replan(
        self, period: StreamPeriod, correlations: Mapping
    ) -> PeriodDecision:
        config = self.config
        problem = self._problem(correlations)
        current = self._placement_on(problem)
        cost_now = current.communication_cost()
        drift = self._detector.assess(
            correlations, cost_now, period.num_operations
        )
        # An empty estimate can register maximal churn, but there is
        # nothing to plan toward — stay put until pairs reappear.
        if not drift.replan or not correlations:
            if self._pending_target is not None and correlations:
                return self._continue_migration(period, problem, current, drift)
            return PeriodDecision(
                period=period.index,
                start_s=period.start_s,
                end_s=period.end_s,
                operations=period.num_operations,
                tracked_pairs=len(correlations),
                action="observe",
                drift=drift,
                cost_estimate=cost_now,
            )

        with obs.span("online.replan", period=period.index) as span:
            result = heavy_hitter_plan(problem, config=self._planning_config())
            self._remember_plan(result)
            # Pin every object outside the heavy pairs to where it is:
            # the plan's hash placement of cold objects must not eat the
            # migration budget.
            heavy_objects = {
                problem.object_ids[int(i)]
                for pair in problem.pair_index
                for i in pair
            }
            target_assignment = current.assignment.copy()
            for local_i, obj in enumerate(problem.object_ids):
                if obj in heavy_objects:
                    target_assignment[local_i] = result.placement.assignment[local_i]
            target = Placement(problem, target_assignment)

            budget = config.budget_fraction * self._total_size
            migration = select_migrations(current, target, budget_bytes=budget)
            applied = migration.apply(current)
            self._assignment = {
                obj: int(node)
                for obj, node in zip(problem.object_ids, applied.assignment)
            }
            # A truncated migration leaves profitable moves on the
            # table; remember the full target so stable periods keep
            # converging toward it, one budget's worth at a time.
            if np.array_equal(applied.assignment, target.assignment):
                self._pending_target = None
            else:
                self._pending_target = {
                    obj: int(target_assignment[local_i])
                    for local_i, obj in enumerate(problem.object_ids)
                }
            cost_after = applied.communication_cost()
            self._detector.rebase(correlations, cost_after)
            obs.counter("online.replans").inc()
            obs.counter("online.migrated_bytes").inc(migration.bytes_moved)
            span.set(moves=migration.num_moves, bytes=migration.bytes_moved)

        return PeriodDecision(
            period=period.index,
            start_s=period.start_s,
            end_s=period.end_s,
            operations=period.num_operations,
            tracked_pairs=len(correlations),
            action="replan",
            drift=drift,
            planner=result.diagnostics.get("delegate", result.planner),
            moves=migration.num_moves,
            bytes_moved=migration.bytes_moved,
            budget_bytes=budget,
            cost_estimate=cost_after,
        )

    def _continue_migration(
        self,
        period: StreamPeriod,
        problem: PlacementProblem,
        current: Placement,
        drift: DriftDecision,
    ) -> PeriodDecision:
        """Resume a budget-truncated migration during a stable period.

        Spends this period's budget on the most profitable remaining
        moves toward the pending target (re-ranked under the fresh
        estimate).  If no remaining move is both affordable and
        profitable, the stale target is abandoned rather than chased.
        """
        assert self._pending_target is not None
        config = self.config
        target = Placement.from_mapping(
            problem,
            {obj: self._pending_target[obj] for obj in problem.object_ids},
        )
        budget = config.budget_fraction * self._total_size
        migration = select_migrations(current, target, budget_bytes=budget)
        if migration.num_moves == 0:
            self._pending_target = None
            return PeriodDecision(
                period=period.index,
                start_s=period.start_s,
                end_s=period.end_s,
                operations=period.num_operations,
                tracked_pairs=problem.num_pairs,
                action="observe",
                drift=drift,
                cost_estimate=current.communication_cost(),
            )
        with obs.span("online.migrate", period=period.index) as span:
            applied = migration.apply(current)
            self._assignment = {
                obj: int(node)
                for obj, node in zip(problem.object_ids, applied.assignment)
            }
            if np.array_equal(applied.assignment, target.assignment):
                self._pending_target = None
            cost_after = applied.communication_cost()
            self._detector.rebase_cost(cost_after)
            obs.counter("online.migrated_bytes").inc(migration.bytes_moved)
            span.set(moves=migration.num_moves, bytes=migration.bytes_moved)
        return PeriodDecision(
            period=period.index,
            start_s=period.start_s,
            end_s=period.end_s,
            operations=period.num_operations,
            tracked_pairs=problem.num_pairs,
            action="migrate",
            drift=drift,
            moves=migration.num_moves,
            bytes_moved=migration.bytes_moved,
            budget_bytes=budget,
            cost_estimate=cost_after,
        )
