"""Windowing over timestamped operation streams.

The online control loop consumes traffic over *time*: the stream is cut
into tumbling (fixed-length, non-overlapping) periods, and at each
period boundary the correlation estimate can be exponentially decayed
so correlations that stop occurring age out instead of haunting the
placement forever.

Works directly over :class:`~repro.workloads.stream.TimedQuery`
streams (a query's keywords are its operation) as well as over plain
:class:`TimedOperation` records, so the same controller drives search
workloads and generic multi-object operation traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from repro.core.correlation import PairEstimator
from repro.workloads.stream import TimedQuery

ObjectId = Hashable
Operation = tuple[ObjectId, ...]


@dataclass(frozen=True)
class TimedOperation:
    """A multi-object operation stamped with its arrival time."""

    time_s: float
    objects: Operation


def as_timed_operation(item: "TimedQuery | TimedOperation") -> TimedOperation:
    """Normalize a stream element to a :class:`TimedOperation`.

    Accepts :class:`~repro.workloads.stream.TimedQuery` (the query's
    keyword tuple becomes the operation) or :class:`TimedOperation`
    (passed through).
    """
    if isinstance(item, TimedOperation):
        return item
    if isinstance(item, TimedQuery):
        return TimedOperation(item.time_s, tuple(item.query.keywords))
    raise TypeError(
        f"expected TimedQuery or TimedOperation, got {type(item).__name__}"
    )


@dataclass(frozen=True)
class StreamPeriod:
    """One tumbling window of a stream.

    Attributes:
        index: Zero-based period number.
        start_s: Inclusive period start.
        end_s: Exclusive period end (``start_s + window_s``).
        operations: The period's operations, in arrival order.  An
            operation landing exactly on ``end_s`` belongs to the
            *next* period.
    """

    index: int
    start_s: float
    end_s: float
    operations: tuple[Operation, ...]

    @property
    def num_operations(self) -> int:
        """Operations in the period."""
        return len(self.operations)


def tumbling_periods(
    stream: Iterable["TimedQuery | TimedOperation"],
    window_s: float,
    origin_s: float | None = None,
) -> Iterator[StreamPeriod]:
    """Cut a timestamped stream into consecutive fixed-length periods.

    Period 0 is anchored at the first observed timestamp's window —
    ``floor(first_time / window_s) * window_s`` — so streams with
    absolute epoch timestamps do not produce millions of leading empty
    periods.  Quiet periods in the middle of the stream are emitted
    empty (the control loop still ticks); trailing empty periods are
    not.  The stream is consumed in one pass, so generators work.

    Args:
        stream: Timestamped queries or operations in non-decreasing
            time order.
        window_s: Period length in seconds.
        origin_s: Explicit start of period 0, overriding the
            first-timestamp anchor; every timestamp must be at or
            after it.

    Raises:
        ValueError: On a non-positive window, when a timestamp runs
            backwards (the slicing would silently misfile operations),
            or when a timestamp precedes an explicit ``origin_s``.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    index = 0
    boundary: float | None = None if origin_s is None else origin_s + window_s
    current: list[Operation] = []
    last_time: float | None = None
    for item in stream:
        timed = as_timed_operation(item)
        if last_time is None:
            if origin_s is not None and timed.time_s < origin_s:
                raise ValueError(
                    f"timestamp {timed.time_s:g}s precedes the stream "
                    f"origin {origin_s:g}s"
                )
            if boundary is None:
                boundary = math.floor(timed.time_s / window_s) * window_s + window_s
        elif timed.time_s < last_time:
            raise ValueError(
                "stream timestamps must be non-decreasing: got "
                f"{timed.time_s:g}s after {last_time:g}s"
            )
        last_time = timed.time_s
        while timed.time_s >= boundary:
            yield StreamPeriod(
                index, boundary - window_s, boundary, tuple(current)
            )
            current = []
            index += 1
            boundary += window_s
        current.append(timed.objects)
    if last_time is not None:
        yield StreamPeriod(index, boundary - window_s, boundary, tuple(current))


class DecayingEstimator:
    """A :class:`PairEstimator` aged exponentially at period boundaries.

    Wraps any estimator implementing the protocol; calling
    :meth:`advance_period` multiplies all history by ``factor``, so an
    observation's weight after ``p`` further periods is ``factor**p``
    — a correlation that disappears from the stream halves out of the
    estimate with half-life ``log(0.5) / log(factor)`` periods.

    Args:
        estimator: The wrapped estimator (exact or sketch).
        factor: Per-period decay multiplier in ``(0, 1]``; 1 disables
            aging (a pure tumbling accumulation).
    """

    def __init__(self, estimator: PairEstimator, factor: float = 1.0):
        if not 0.0 < factor <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        self.estimator = estimator
        self.factor = factor
        self.periods_advanced = 0

    def advance_period(self) -> None:
        """Apply one period's worth of decay to the wrapped history."""
        if self.factor < 1.0:
            self.estimator.decay(self.factor)
        self.periods_advanced += 1

    # ------------------------------------------------------------------
    # PairEstimator delegation
    # ------------------------------------------------------------------
    @property
    def num_operations(self) -> int:
        """Discounted operation count of the wrapped estimator."""
        return self.estimator.num_operations

    def observe(self, operation: Sequence[ObjectId]) -> None:
        """Fold one operation into the wrapped estimator."""
        self.estimator.observe(operation)

    def observe_all(self, trace: Iterable[Sequence[ObjectId]]) -> None:
        """Fold every operation of ``trace`` into the wrapped estimator."""
        self.estimator.observe_all(trace)

    def observe_trace(self, trace: Iterable[Sequence[ObjectId]]) -> int:
        """Fold a whole trace via the wrapped batched ingest, if any.

        Estimators exposing ``observe_trace`` (the exact and sketch
        backends both do) get the vectorized path; anything else falls
        back to per-operation :meth:`observe` with the same result.
        """
        batched = getattr(self.estimator, "observe_trace", None)
        if batched is not None:
            return int(batched(trace))
        ops = 0
        for operation in trace:
            self.estimator.observe(operation)
            ops += 1
        return ops

    def observe_columns(self, columns) -> int:
        """Fold a columnar trace via the wrapped columnar ingest.

        Estimators exposing ``observe_columns`` (the sketch backend
        does) get the vectorized pair extraction of
        :class:`~repro.workloads.traces.TraceColumns`; anything else
        replays the row view through :meth:`observe_trace`, which is
        byte-identical by construction.
        """
        batched = getattr(self.estimator, "observe_columns", None)
        if batched is not None:
            return int(batched(columns))
        return self.observe_trace(columns.operations())

    def decay(self, factor: float) -> None:
        """Explicit extra decay (beyond the per-period factor)."""
        self.estimator.decay(factor)

    def correlations(self, min_support: int = 1):
        """Current pair-probability estimates."""
        return self.estimator.correlations(min_support)

    def top_pairs(self, k: int):
        """The ``k`` most correlated pairs, descending."""
        return self.estimator.top_pairs(k)
