"""Streaming correlation mining and online replanning.

This package turns the offline LPRR pipeline into a continuous control
loop over timestamped operation streams:

* :mod:`repro.online.sketch` — memory-bounded correlation estimation: a
  seeded Count-Min sketch plus a Space-Saving heavy-hitter tracker,
  combined into :class:`SketchCorrelationEstimator` with provable
  overcount bounds.
* :mod:`repro.online.windows` — tumbling periods and exponential decay
  over :class:`~repro.workloads.stream.TimedQuery` /
  :class:`TimedOperation` streams.
* :mod:`repro.online.drift` — replan triggers from top-K pair churn and
  estimated-cost inflation.
* :mod:`repro.online.controller` — the :class:`OnlinePlanner` daemon:
  ingest, estimate, detect drift, replan through the resilient fallback
  chain, migrate under a byte budget, and report byte-reproducibly.

See ``docs/ONLINE.md`` for the theory (sketch error bounds, drift
thresholds, migration budgets) and determinism guarantees.
"""

from repro.online.controller import (
    ONLINE_REPORT_SCHEMA,
    OnlineConfig,
    OnlinePlanner,
    OnlineReport,
    PeriodDecision,
    heavy_hitter_plan,
)
from repro.online.drift import (
    DriftDecision,
    DriftDetector,
    DriftThresholds,
    pair_churn,
)
from repro.online.sketch import (
    CountMinSketch,
    SketchCorrelationEstimator,
    SpaceSavingPairs,
)
from repro.online.windows import (
    DecayingEstimator,
    StreamPeriod,
    TimedOperation,
    as_timed_operation,
    tumbling_periods,
)

__all__ = [
    "ONLINE_REPORT_SCHEMA",
    "CountMinSketch",
    "DecayingEstimator",
    "DriftDecision",
    "DriftDetector",
    "DriftThresholds",
    "OnlineConfig",
    "OnlinePlanner",
    "OnlineReport",
    "PeriodDecision",
    "SketchCorrelationEstimator",
    "SpaceSavingPairs",
    "StreamPeriod",
    "TimedOperation",
    "as_timed_operation",
    "heavy_hitter_plan",
    "pair_churn",
    "tumbling_periods",
]
