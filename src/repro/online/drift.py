"""Replan triggers for the online control loop.

Replanning costs migration bytes and an LP solve, so the controller
only does it when the estimated correlations have *materially* moved
away from the ones the current placement was built for.  Two
complementary signals, both computed from the memory-bounded estimate:

* **Top-K pair churn** — the Jaccard distance between the top-K pair
  *sets* at the last replan and now.  Catches regime changes where new
  pairs become important (the paper's Figure 2B stability measurement
  is the offline analogue).
* **Estimated-cost inflation** — the current placement's communication
  cost under the *fresh* correlation estimate, relative to its cost at
  the last replan.  Catches drift that reshuffles weight among pairs
  the placement already splits, even when the top-K set is unchanged.

Either signal crossing its threshold requests a replan; periods with
too few operations are never judged (sampling noise would dominate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

ObjectId = Hashable
Pair = tuple[ObjectId, ObjectId]


@dataclass(frozen=True)
class DriftThresholds:
    """When the controller is allowed to replan.

    Attributes:
        churn: Replan when the top-K Jaccard distance exceeds this
            (0 = identical sets, 1 = disjoint).
        inflation: Replan when the placement's estimated cost exceeds
            ``inflation`` times its cost at the last replan.
        top_k: How many strongest pairs the churn signal compares.
        min_operations: Periods observing fewer operations than this
            are never judged for drift.
    """

    churn: float = 0.4
    inflation: float = 1.25
    top_k: int = 32
    min_operations: int = 20

    def __post_init__(self) -> None:
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn threshold must be in [0, 1]")
        if self.inflation < 1.0:
            raise ValueError("inflation threshold must be at least 1")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")
        if self.min_operations < 0:
            raise ValueError("min_operations must be nonnegative")

    def to_dict(self) -> dict:
        """JSON-ready form (journaled at the start of an online run)."""
        return {
            "churn": self.churn,
            "inflation": self.inflation,
            "top_k": self.top_k,
            "min_operations": self.min_operations,
        }


@dataclass(frozen=True)
class DriftDecision:
    """One period's drift verdict.

    Attributes:
        replan: Whether a replan is requested.
        churn: Measured top-K Jaccard distance.
        cost_now: Current placement cost under the fresh estimate.
        cost_reference: Its cost (under the then-fresh estimate) at the
            last replan.
        reasons: Which triggers fired (``"churn"``, ``"inflation"``);
            empty when stable or unjudged.
        judged: False when the period had too few operations to judge.
    """

    replan: bool
    churn: float
    cost_now: float
    cost_reference: float
    reasons: tuple[str, ...] = ()
    judged: bool = True

    @property
    def inflation(self) -> float | None:
        """Cost ratio now/reference, or None when the reference is 0."""
        if self.cost_reference > 0:
            return self.cost_now / self.cost_reference
        return None

    def to_dict(self) -> dict:
        """JSON-ready form (floats rounded for byte-stable output)."""
        inflation = self.inflation
        return {
            "replan": self.replan,
            "judged": self.judged,
            "churn": round(self.churn, 9),
            "cost_now": round(self.cost_now, 9),
            "cost_reference": round(self.cost_reference, 9),
            "inflation": None if inflation is None else round(inflation, 9),
            "reasons": list(self.reasons),
        }


def pair_churn(
    reference: Iterable[Pair], fresh: Iterable[Pair]
) -> float:
    """Jaccard distance between two pair sets (0 same, 1 disjoint).

    Two empty sets are identical by convention (distance 0).
    """
    a, b = set(reference), set(fresh)
    union = a | b
    if not union:
        return 0.0
    return 1.0 - len(a & b) / len(union)


def _top_pair_set(
    correlations: Mapping[Pair, float], k: int
) -> frozenset[Pair]:
    ranked = sorted(correlations.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return frozenset(pair for pair, _p in ranked[:k])


@dataclass
class DriftDetector:
    """Tracks the reference state drift is measured against.

    :meth:`rebase` records the correlation snapshot and placement cost
    right after a (re)plan; :meth:`assess` compares each subsequent
    period against that reference.

    Attributes:
        thresholds: The trigger configuration.
    """

    thresholds: DriftThresholds = field(default_factory=DriftThresholds)
    _reference_pairs: frozenset[Pair] = frozenset()
    _reference_cost: float = 0.0

    def rebase(
        self, correlations: Mapping[Pair, float], placement_cost: float
    ) -> None:
        """Reset the reference to a freshly planned state."""
        self._reference_pairs = _top_pair_set(
            correlations, self.thresholds.top_k
        )
        self._reference_cost = float(placement_cost)

    def rebase_cost(self, placement_cost: float) -> None:
        """Update only the cost reference, keeping the pair snapshot.

        Used after a resumed (budget-truncated) migration step: the
        placement improved without a replan, so inflation should be
        measured against the improved cost while churn keeps comparing
        against the pairs the target plan was computed for.
        """
        self._reference_cost = float(placement_cost)

    def assess(
        self,
        correlations: Mapping[Pair, float],
        placement_cost: float,
        period_operations: int,
    ) -> DriftDecision:
        """Judge one period's estimate against the reference.

        Args:
            correlations: Fresh pair-probability estimates.
            placement_cost: The current placement's cost under them.
            period_operations: Operations observed this period — below
                ``thresholds.min_operations`` the period is not judged.

        Returns:
            The period's :class:`DriftDecision`.
        """
        fresh = _top_pair_set(correlations, self.thresholds.top_k)
        churn = pair_churn(self._reference_pairs, fresh)
        cost_now = float(placement_cost)
        if period_operations < self.thresholds.min_operations:
            return DriftDecision(
                replan=False,
                churn=churn,
                cost_now=cost_now,
                cost_reference=self._reference_cost,
                judged=False,
            )
        reasons = []
        if churn > self.thresholds.churn:
            reasons.append("churn")
        if cost_now > self.thresholds.inflation * self._reference_cost + 1e-12:
            reasons.append("inflation")
        return DriftDecision(
            replan=bool(reasons),
            churn=churn,
            cost_now=cost_now,
            cost_reference=self._reference_cost,
            reasons=tuple(reasons),
        )
