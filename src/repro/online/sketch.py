"""Memory-bounded pair-frequency sketches.

The offline pipeline estimates ``r(i, j)`` with exact ``Counter``s —
O(#distinct pairs) memory, which a query stream over a large vocabulary
blows through quickly.  This module bounds that memory with two classic
streaming summaries, both seeded and fully deterministic:

* :class:`CountMinSketch` — a ``depth x width`` counter matrix with
  pairwise hashing (Cormode & Muthukrishnan).  Estimates never
  *under*-count; with total increment mass ``N`` each estimate
  overcounts by at most ``(e / width) * N`` with probability at least
  ``1 - e^-depth``.
* :class:`SpaceSavingPairs` — the Space-Saving heavy-hitter tracker
  (Metwally, Agrawal & El Abbadi) specialized for object pairs: at most
  ``capacity`` pairs are tracked, every pair with true count above
  ``N / capacity`` is guaranteed to be tracked, and each tracked count
  overcounts by at most its recorded ``error``.

:class:`SketchCorrelationEstimator` combines the two behind the
:class:`~repro.core.correlation.PairEstimator` protocol: Space-Saving
supplies *which* pairs are heavy, the Count-Min estimate tightens
*how* heavy, and the per-operation pair reduction is the same
:func:`~repro.core.correlation.operation_pairs` the exact estimators
use.  Memory is O(width x depth + capacity) cells regardless of stream
length, and everything round-trips through ``to_dict``/``from_dict``
(JSON-serializable object ids assumed for the pair tracker).
"""

from __future__ import annotations

import hashlib
import math
import warnings
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.correlation import (
    CorrelationEstimator,
    PairProbabilities,
    operation_pairs,
)

ObjectId = Hashable
Operation = Sequence[ObjectId]
Pair = tuple[ObjectId, ObjectId]


class CountMinSketch:
    """A seeded, deterministic Count-Min sketch over hashable keys.

    Keys are hashed through BLAKE2b keyed with the seed, then spread
    over ``depth`` rows with the Kirsch-Mitzenmacher double-hashing
    construction — no reliance on Python's randomized ``hash()``, so
    the same (seed, stream) always produces the same cells.

    Args:
        width: Counters per row; the overcount bound is
            ``(e / width) * total``.
        depth: Independent rows; the bound holds with probability
            ``1 - e^-depth``.
        seed: Hash seed; sketches merge only when seeds (and shapes)
            match.
    """

    # Cap on the memoized key -> cell-indices table used by the batch
    # ingest path.  Bounded so the sketch's O(width x depth) memory
    # guarantee survives adversarial key universes; Zipf streams fit
    # their whole heavy tail long before the cap.
    _INDEX_CACHE_CAPACITY = 1 << 16

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be at least 1")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._cells = np.zeros((self.depth, self.width), dtype=float)
        self._total = 0.0
        self._key = hashlib.blake2b(
            str(self.seed).encode("utf-8"), digest_size=16
        ).digest()
        self._index_cache: dict[Hashable, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _indices(self, key: Hashable) -> list[int]:
        digest = hashlib.blake2b(
            repr(key).encode("utf-8"), digest_size=16, key=self._key
        ).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd, never degenerate
        return [(h1 + row * h2) % self.width for row in range(self.depth)]

    # ------------------------------------------------------------------
    # Updates and queries
    # ------------------------------------------------------------------
    def _cached_indices(self, key: Hashable) -> tuple[int, ...]:
        """Memoized :meth:`_indices` for the batch ingest path.

        Streams revisit hot keys constantly (that is the point of the
        heavy-hitter machinery), so the BLAKE2b digest of a repeated
        key is pure recomputation.  The table is cleared wholesale at
        capacity — deterministic, and cheaper than LRU bookkeeping.
        """
        cached = self._index_cache.get(key)
        if cached is None:
            if len(self._index_cache) >= self._INDEX_CACHE_CAPACITY:
                self._index_cache.clear()
            cached = tuple(self._indices(key))
            self._index_cache[key] = cached
        return cached

    def add(self, key: Hashable, count: float = 1.0) -> None:
        """Increment ``key`` by ``count`` (must be nonnegative)."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        for row, idx in enumerate(self._indices(key)):
            self._cells[row, idx] += count
        self._total += count

    def update_many(
        self,
        keys: Sequence[Hashable],
        counts: Sequence[float] | None = None,
    ) -> None:
        """Fold a batch of keys into the sketch in one vectorized pass.

        Byte-identical to calling :meth:`add` once per key in order:
        cell updates are applied with ``np.add.at`` in key-major,
        row-minor element order — the exact accumulation order of the
        sequential loop — and the running total accumulates one key at
        a time so floating-point association matches too.  Hashing is
        memoized per key (:meth:`_cached_indices`), which is where the
        batch path wins on the heavily repeating streams the online
        subsystem ingests.

        Args:
            keys: Keys to increment, in stream order.
            counts: Per-key nonnegative increments (default: 1 each).
        """
        keys = list(keys)
        if not keys:
            return
        if counts is None:
            count_list = [1.0] * len(keys)
        else:
            count_list = [float(c) for c in counts]
            if len(count_list) != len(keys):
                raise ValueError("counts must match the number of keys")
            if any(c < 0 for c in count_list):
                raise ValueError("count must be nonnegative")
        cols = np.fromiter(
            (idx for key in keys for idx in self._cached_indices(key)),
            dtype=np.int64,
            count=len(keys) * self.depth,
        )
        rows = np.tile(np.arange(self.depth, dtype=np.int64), len(keys))
        np.add.at(
            self._cells,
            (rows, cols),
            np.repeat(np.asarray(count_list, dtype=float), self.depth),
        )
        if counts is None and float(self._total).is_integer() and (
            self._total + len(keys) < 2**53
        ):
            # All-ones batch onto an integer-valued total: the sum is
            # exact either way, so skip the element loop.
            self._total += float(len(keys))
        else:
            total = self._total
            for c in count_list:
                total += c
            self._total = total

    def estimate(self, key: Hashable) -> float:
        """Point estimate for ``key``: never below the true count."""
        return float(
            min(self._cells[row, idx] for row, idx in enumerate(self._indices(key)))
        )

    def scale(self, factor: float) -> None:
        """Multiply every cell by ``factor`` (exponential aging)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("scale factor must be in [0, 1]")
        self._cells *= factor
        self._total *= factor

    def merge(self, other: "CountMinSketch") -> None:
        """Add another sketch's cells into this one (same shape + seed)."""
        if (self.width, self.depth, self.seed) != (
            other.width,
            other.depth,
            other.seed,
        ):
            raise ValueError("can only merge sketches with identical shape and seed")
        self._cells += other._cells
        self._total += other._total

    # ------------------------------------------------------------------
    # Bounds and accounting
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total increment mass folded in (after any scaling)."""
        return self._total

    @property
    def num_cells(self) -> int:
        """Counter cells held — the sketch's entire state, O(width x depth)."""
        return self.width * self.depth

    @property
    def epsilon(self) -> float:
        """Relative overcount bound: estimate <= true + epsilon * total."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Failure probability of the epsilon bound: ``e^-depth``."""
        return math.exp(-self.depth)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready state; :meth:`from_dict` restores it exactly."""
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "total": self._total,
            "cells": self._cells.tolist(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "CountMinSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(width=doc["width"], depth=doc["depth"], seed=doc["seed"])
        cells = np.asarray(doc["cells"], dtype=float)
        if cells.shape != (sketch.depth, sketch.width):
            raise ValueError("serialized cells do not match width/depth")
        sketch._cells = cells
        sketch._total = float(doc["total"])
        return sketch


class SpaceSavingPairs:
    """Space-Saving heavy-hitter tracking specialized for object pairs.

    At most ``capacity`` pairs live in the summary at once.  When a new
    pair arrives at a full summary, the minimum-count entry is evicted
    and the newcomer inherits its count (recorded as ``error`` — the
    maximum possible overcount of the new entry).  Guarantees: every
    pair whose true count exceeds ``total / capacity`` is tracked, and
    ``count - error <= true count <= count`` for every tracked pair.

    Eviction ties break on the pair's ``repr`` so runs are
    deterministic regardless of hash randomization.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._entries: dict[Pair, list[float]] = {}  # pair -> [count, error]
        self._total = 0.0
        self.max_tracked = 0
        self.evictions = 0

    def add(self, pair: Pair, count: float = 1.0) -> None:
        """Fold one observation of ``pair`` into the summary."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        self._total += count
        entry = self._entries.get(pair)
        if entry is not None:
            entry[0] += count
        elif len(self._entries) < self.capacity:
            self._entries[pair] = [count, 0.0]
        else:
            # Victim = min by (count, repr).  Scan counts numerically
            # first and compute repr only for ties — the repr of every
            # tracked pair per eviction was the ingest hot spot.
            lowest = min(entry[0] for entry in self._entries.values())
            victim = min(
                (p for p, entry in self._entries.items() if entry[0] == lowest),
                key=repr,
            )
            floor = self._entries.pop(victim)[0]
            self._entries[pair] = [floor + count, floor]
            self.evictions += 1
        self.max_tracked = max(self.max_tracked, len(self._entries))

    def count(self, pair: Pair) -> float:
        """Tracked (over-)count of ``pair``; 0 when untracked."""
        entry = self._entries.get(pair)
        return float(entry[0]) if entry is not None else 0.0

    def error(self, pair: Pair) -> float:
        """Maximum overcount of ``pair``'s tracked count."""
        entry = self._entries.get(pair)
        return float(entry[1]) if entry is not None else 0.0

    def items(self) -> list[tuple[Pair, float, float]]:
        """Tracked ``(pair, count, error)`` rows, heaviest first.

        Ordering is total (count descending, then pair repr) so output
        is byte-stable across runs.
        """
        return sorted(
            ((pair, float(c), float(e)) for pair, (c, e) in self._entries.items()),
            key=lambda row: (-row[1], repr(row[0])),
        )

    def scale(self, factor: float) -> None:
        """Multiply every count and error by ``factor`` (aging)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("scale factor must be in [0, 1]")
        if factor == 0.0:
            self._entries.clear()
            self._total = 0.0
            return
        for entry in self._entries.values():
            entry[0] *= factor
            entry[1] *= factor
        self._total *= factor

    @property
    def total(self) -> float:
        """Total observation mass folded in (after any scaling)."""
        return self._total

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> dict:
        """JSON-ready state (object ids must be JSON-serializable)."""
        return {
            "capacity": self.capacity,
            "total": self._total,
            "max_tracked": self.max_tracked,
            "evictions": self.evictions,
            "entries": [
                [list(pair), c, e] for pair, c, e in self.items()
            ],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "SpaceSavingPairs":
        """Rebuild a tracker from :meth:`to_dict` output.

        JSON turns tuple pairs into lists; they come back as tuples.
        """
        tracker = cls(capacity=doc["capacity"])
        for raw_pair, count, error in doc["entries"]:
            tracker._entries[tuple(raw_pair)] = [float(count), float(error)]
        if len(tracker._entries) > tracker.capacity:
            raise ValueError("serialized entries exceed capacity")
        tracker._total = float(doc["total"])
        tracker.max_tracked = int(doc["max_tracked"])
        tracker.evictions = int(doc["evictions"])
        return tracker


class SketchCorrelationEstimator:
    """Memory-bounded :class:`~repro.core.correlation.PairEstimator`.

    Drop-in replacement for the exact
    :class:`~repro.core.correlation.CorrelationEstimator`: same modes,
    same per-operation pair reduction, same ``correlations`` /
    ``top_pairs`` surface — but state is a Count-Min sketch plus a
    Space-Saving tracker, so memory stays O(width x depth + capacity)
    no matter how many distinct pairs the stream contains.  Reported
    counts are ``min(space-saving count, count-min estimate)``, the
    tighter of the two overestimates.

    Args:
        mode: Pair-reduction mode (see
            :attr:`CorrelationEstimator.MODES`).
        sizes: Object sizes (required for the size-aware modes).
        width: Count-Min row width.
        depth: Count-Min rows.
        heavy_hitters: Space-Saving capacity — the K of "top-K pairs".
        seed: Hash seed; fixes every estimate for a given stream.
    """

    def __init__(
        self,
        mode: str = "cooccurrence",
        sizes: Mapping[ObjectId, float] | None = None,
        width: int = 1024,
        depth: int = 4,
        heavy_hitters: int = 256,
        seed: int = 0,
    ):
        if mode not in CorrelationEstimator.MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {CorrelationEstimator.MODES}"
            )
        if mode != "cooccurrence" and sizes is None:
            raise ValueError(f"mode {mode!r} requires object sizes")
        self.mode = mode
        self.sizes = sizes
        self.sketch = CountMinSketch(width=width, depth=depth, seed=seed)
        self.heavy = SpaceSavingPairs(capacity=heavy_hitters)
        self._total_ops = 0.0

    # ------------------------------------------------------------------
    # PairEstimator protocol
    # ------------------------------------------------------------------
    @property
    def num_operations(self) -> int:
        """Operations observed so far (discounted after :meth:`decay`)."""
        return int(self._total_ops)

    def observe(self, operation: Operation) -> None:
        """Fold one operation into both summaries."""
        self._total_ops += 1
        for pair in operation_pairs(operation, self.mode, self.sizes):
            self.sketch.add(pair)
            self.heavy.add(pair)

    def observe_all(self, trace: Iterable[Operation]) -> None:
        """Fold every operation of ``trace`` into the estimate."""
        for operation in trace:
            self.observe(operation)

    def observe_trace(self, trace: Iterable[Operation]) -> int:
        """Fold a whole trace in one batched pass; returns ops ingested.

        Byte-identical to :meth:`observe_all`: the per-operation pair
        reduction is unchanged and both summaries see the same pairs
        in the same stream order, but all Count-Min updates go through
        the vectorized, hash-memoizing
        :meth:`CountMinSketch.update_many` instead of one
        hash-and-scatter per pair.  This is the ingest path the online
        controller drives once per period.
        """
        pairs: list[Pair] = []
        ops = 0
        for operation in trace:
            ops += 1
            pairs.extend(operation_pairs(operation, self.mode, self.sizes))
        return self._ingest_pairs(pairs, ops)

    def observe_columns(self, columns) -> int:
        """Fold a :class:`~repro.workloads.traces.TraceColumns` trace.

        The columnar fast path: cooccurrence pair extraction runs on
        the code arrays (:meth:`TraceColumns.cooccurrence_pairs`)
        instead of the per-operation ``operation_pairs`` loop, then
        both summaries ingest the identical pair stream — so the
        result is byte-identical to
        ``observe_trace(columns.operations())``, which remains the
        equivalence oracle.  Size-aware modes have no columnar
        reduction yet and take the oracle path.
        """
        if self.mode != "cooccurrence":
            return self.observe_trace(columns.operations())
        return self._ingest_pairs(columns.cooccurrence_pairs(), len(columns))

    def _ingest_pairs(self, pairs: list[Pair], ops: int) -> int:
        """Feed an extracted pair stream to both summaries, in order."""
        self.sketch.update_many(pairs)
        for pair in pairs:
            self.heavy.add(pair)
        if float(self._total_ops).is_integer() and self._total_ops + ops < 2**53:
            self._total_ops += float(ops)
        else:
            total = self._total_ops
            for _ in range(ops):
                total += 1.0
            self._total_ops = total
        return ops

    def decay(self, factor: float) -> None:
        """Exponentially age both summaries and the operation total."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        self.sketch.scale(factor)
        self.heavy.scale(factor)
        self._total_ops *= factor

    def estimate_count(self, pair: Pair) -> float:
        """Best available (over-)count for one pair."""
        tracked = self.heavy.count(pair)
        cms = self.sketch.estimate(pair)
        return min(tracked, cms) if tracked > 0 else cms

    def correlations(self, min_support: int = 1) -> PairProbabilities:
        """Probability estimates for the tracked heavy-hitter pairs.

        Only pairs in the Space-Saving summary are reported — the
        memory bound is the point — with each count tightened by the
        Count-Min estimate before normalization.
        """
        if self._total_ops <= 0:
            return {}
        result: PairProbabilities = {}
        for pair, count, _error in self.heavy.items():
            tightened = min(count, self.sketch.estimate(pair))
            if tightened >= min_support:
                result[pair] = tightened / self._total_ops
        return result

    def top_pairs(self, k: int) -> list[tuple[Pair, float]]:
        """The ``k`` most correlated tracked pairs, descending."""
        probs = self.correlations()
        return sorted(probs.items(), key=lambda item: (-item[1], repr(item[0])))[:k]

    # ------------------------------------------------------------------
    # Memory accounting and serialization
    # ------------------------------------------------------------------
    @property
    def memory_cells(self) -> int:
        """Bounded state size: sketch cells plus tracker capacity."""
        return self.sketch.num_cells + self.heavy.capacity

    def to_dict(self) -> dict:
        """JSON-ready state; :meth:`from_dict` restores it exactly."""
        return {
            "mode": self.mode,
            "sizes": (
                None
                if self.sizes is None
                else {str(k): float(v) for k, v in sorted(self.sizes.items(), key=lambda kv: repr(kv[0]))}
            ),
            "total_operations": self._total_ops,
            "sketch": self.sketch.to_dict(),
            "heavy": self.heavy.to_dict(),
        }

    @classmethod
    def from_dict(
        cls,
        doc: Mapping,
        sizes: Mapping[ObjectId, float] | None = None,
    ) -> "SketchCorrelationEstimator":
        """Rebuild an estimator from :meth:`to_dict` output.

        Args:
            doc: Output of :meth:`to_dict` (possibly JSON
                round-tripped).
            sizes: Object sizes overriding the serialized ones.  JSON
                maps have string keys, so serialized sizes only match
                streams of *string* object ids; size-aware modes over
                any other id type must pass ``sizes`` here — restoring
                from the serialized keys alone warns, because the
                estimator would silently find no known objects.
        """
        estimator = cls.__new__(cls)
        estimator.mode = doc["mode"]
        if sizes is not None:
            estimator.sizes = dict(sizes)
        else:
            estimator.sizes = doc["sizes"]
            if estimator.mode != "cooccurrence" and estimator.sizes is not None:
                warnings.warn(
                    f"restoring a {estimator.mode!r} estimator from "
                    "JSON-stringified size keys; pairs over non-string object "
                    "ids will be dropped — pass sizes= explicitly",
                    UserWarning,
                    stacklevel=2,
                )
        estimator.sketch = CountMinSketch.from_dict(doc["sketch"])
        estimator.heavy = SpaceSavingPairs.from_dict(doc["heavy"])
        estimator._total_ops = float(doc["total_operations"])
        return estimator
