"""repro — Correlation-Aware Object Placement for Multi-Object Operations.

A faithful reproduction of Zhong, Shen & Seiferas (ICDCS 2008): the
Capacity-Constrained Assignment problem, its LP relaxation with
randomized rounding (LPRR), the baselines it was evaluated against,
and the full-text-search case study used in the paper's evaluation.

Quick start::

    from repro import PlacementProblem, PlanConfig, plan

    problem = PlacementProblem.build(
        objects={"car": 4.0, "dealer": 3.0, "software": 5.0, "download": 2.0},
        nodes={0: 8.0, 1: 8.0},
        correlations={("car", "dealer"): 0.30, ("software", "download"): 0.25},
    )
    result = plan(problem, "lprr", PlanConfig(seed=0))
    baseline = plan(problem, "hash")
    print(result.cost, baseline.cost)
"""

from repro.core import (
    CorrelationEstimator,
    ExactSolution,
    FractionalPlacement,
    LPRRPlanner,
    LPRRResult,
    Migration,
    MigrationPlan,
    LPStats,
    PairData,
    Placement,
    PlacementMap,
    PlacementProblem,
    PlanConfig,
    Planner,
    PlanResult,
    PlanScope,
    ResourceSpec,
    RoundingResult,
    WarmStart,
    available_planners,
    available_strategies,
    best_fit_decreasing_placement,
    build_placement_lp,
    cooccurrence_correlations,
    get_planner,
    get_strategy,
    greedy_placement,
    hash_node,
    importance_ranking,
    importance_scores,
    diff_placements,
    min_size_pair_cost,
    plan,
    random_hash_placement,
    register_planner,
    repair_capacity,
    round_best_of,
    round_fractional,
    round_robin_placement,
    scoped_placement,
    select_migrations,
    solve_exact,
    solve_placement_lp,
    top_important,
    two_smallest_correlations,
    union_largest_correlations,
)
from repro import obs
from repro.cluster import Topology, synthetic_topology
from repro.pg import PGMap
from repro.exceptions import (
    CircuitOpenError,
    InfeasibleProblemError,
    PlacementError,
    ProblemDefinitionError,
    ReplicationError,
    ReproError,
    SolverError,
    TraceFormatError,
)

__version__ = "1.9.0"

__all__ = [
    "CircuitOpenError",
    "CorrelationEstimator",
    "ExactSolution",
    "FractionalPlacement",
    "InfeasibleProblemError",
    "LPRRPlanner",
    "LPRRResult",
    "Migration",
    "MigrationPlan",
    "LPStats",
    "PGMap",
    "PairData",
    "Placement",
    "PlacementError",
    "PlacementMap",
    "PlacementProblem",
    "PlanConfig",
    "PlanResult",
    "PlanScope",
    "Planner",
    "ResourceSpec",
    "ProblemDefinitionError",
    "ReplicationError",
    "ReproError",
    "RoundingResult",
    "SolverError",
    "Topology",
    "WarmStart",
    "TraceFormatError",
    "available_planners",
    "available_strategies",
    "best_fit_decreasing_placement",
    "build_placement_lp",
    "cooccurrence_correlations",
    "get_planner",
    "get_strategy",
    "greedy_placement",
    "hash_node",
    "obs",
    "importance_ranking",
    "importance_scores",
    "diff_placements",
    "min_size_pair_cost",
    "plan",
    "random_hash_placement",
    "register_planner",
    "repair_capacity",
    "round_best_of",
    "round_fractional",
    "round_robin_placement",
    "scoped_placement",
    "select_migrations",
    "solve_exact",
    "solve_placement_lp",
    "synthetic_topology",
    "top_important",
    "two_smallest_correlations",
    "union_largest_correlations",
    "__version__",
]
