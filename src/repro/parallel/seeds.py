"""Deterministic per-task seed derivation for parallel workers.

Parallel randomized rounding must satisfy two contracts at once:

1. **Worker-count independence** — the same root seed must produce the
   same placement whether the trials run inline (``jobs=1``), on two
   workers, or on sixteen.
2. **Stream independence** — no two trials may share (or overlap) a
   random stream, or "independent" trials silently correlate and the
   best-of-``k`` variance reduction evaporates.

Both fall out of :class:`numpy.random.SeedSequence`: spawning ``k``
children of ``SeedSequence(root)`` yields ``k`` statistically
independent, reproducible streams whose identity depends only on
``(root, child_index)`` — never on which process consumes them.  Each
task is keyed by its *global index*, so any partition of tasks onto
workers replays identically.
"""

from __future__ import annotations

import numpy as np


def spawn_seed_sequences(
    root_seed: int | None, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences of ``root_seed``.

    Child ``i`` is a pure function of ``(root_seed, i)``; the list is
    safe to slice arbitrarily across workers.  A ``None`` root seed is
    normalized to 0 so cached and replayed runs stay reproducible.
    """
    if count < 0:
        raise ValueError("count must be nonnegative")
    root = 0 if root_seed is None else int(root_seed)
    return list(np.random.SeedSequence(root).spawn(count))


def spawn_generators(
    root_seed: int | None, count: int
) -> list[np.random.Generator]:
    """Like :func:`spawn_seed_sequences` but materialized as generators."""
    return [np.random.default_rng(ss) for ss in spawn_seed_sequences(root_seed, count)]
