"""Best-of-``k`` randomized rounding fanned out across workers.

Algorithm 2.1's repeated trials (Section 2.3) are embarrassingly
parallel: each trial needs only the fractional LP solution and its own
random stream.  :func:`parallel_round_best_of` gives every trial a
:class:`~numpy.random.SeedSequence` child keyed by its global trial
index (see :mod:`repro.parallel.seeds`), runs contiguous trial batches
on a :class:`~repro.parallel.runner.TaskRunner`, and reduces over
``(cost, trial_index)`` — so the selected placement is a pure function
of ``(fractional, trials, root_seed)`` and *never* of the worker count.

The selection rule mirrors :func:`repro.core.rounding.round_best_of`:
among capacity-respecting trials (when a tolerance is given) the
cheapest wins, earliest index breaking ties; if no trial respects
capacity, the overall cheapest is returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.lp import FractionalPlacement
from repro.core.placement import Placement
from repro.core.rounding import RoundingResult, round_trials_batched
from repro.parallel.runner import TaskRunner, chunk_evenly, record_pool_metrics
from repro.parallel.seeds import spawn_seed_sequences


@dataclass(frozen=True)
class TrialOutcome:
    """One rounding trial's result, reduced to what selection needs."""

    index: int
    cost: float
    rounds: int
    feasible: bool
    assignment: np.ndarray


def _run_trial_batch(
    task: tuple[FractionalPlacement, list, int, float | None],
) -> tuple[list[TrialOutcome], float]:
    """Run a contiguous batch of trials (one pool task).

    Batching amortizes the per-task cost of pickling the fractional
    solution: a worker receives it once per batch, not once per trial.
    The batch itself runs on the vectorized sweep of
    :func:`~repro.core.rounding.round_trials_batched` — every trial
    still draws from its own spawned seed, so the outcome is a pure
    function of the global trial indices regardless of batching.
    Returns the outcomes plus the batch's wall-clock, which the parent
    folds into the pool-utilization gauge.
    """
    fractional, seed_seqs, start_index, tolerance = task
    started = time.perf_counter()
    assignments, rounds = round_trials_batched(fractional, seed_seqs)
    outcomes = []
    for offset in range(len(seed_seqs)):
        placement = Placement(fractional.problem, assignments[offset])
        outcomes.append(
            TrialOutcome(
                index=start_index + offset,
                cost=placement.communication_cost(),
                rounds=int(rounds[offset]),
                feasible=tolerance is None or placement.is_feasible(tolerance),
                assignment=placement.assignment,
            )
        )
    return outcomes, time.perf_counter() - started


def select_best(
    outcomes: list[TrialOutcome], capacity_tolerance: float | None
) -> TrialOutcome:
    """The winning trial under the best-of-``k`` selection rule."""
    if not outcomes:
        raise ValueError("no trial outcomes to select from")
    pool = outcomes
    if capacity_tolerance is not None:
        feasible = [o for o in outcomes if o.feasible]
        if feasible:
            pool = feasible
    return min(pool, key=lambda o: (o.cost, o.index))


def parallel_round_best_of(
    fractional: FractionalPlacement,
    trials: int = 10,
    root_seed: int | None = 0,
    jobs: int | None = 1,
    capacity_tolerance: float | None = None,
    runner: TaskRunner | None = None,
) -> RoundingResult:
    """Deterministic best-of-``k`` rounding, fanned out over workers.

    Args:
        fractional: The LP solution to round.
        trials: Number of independent rounding trials (``>= 1``).
        root_seed: Root of the per-trial seed tree; the result is
            identical for every ``jobs`` value given the same root.
        jobs: Worker processes; ``1`` runs inline (serial fallback).
        capacity_tolerance: Same soft-feasibility rule as
            :func:`repro.core.rounding.round_best_of`.
        runner: Reuse an existing :class:`TaskRunner` (e.g. one pool
            shared across pipeline stages) instead of creating one.

    Returns:
        A :class:`~repro.core.rounding.RoundingResult`; ``trial_costs``
        is ordered by global trial index.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")

    seed_seqs = spawn_seed_sequences(root_seed, trials)
    owns_runner = runner is None
    if owns_runner:
        runner = TaskRunner(jobs)
    assert runner is not None
    batches = chunk_evenly(list(range(trials)), runner.jobs)
    tasks = [
        (fractional, [seed_seqs[i] for i in batch], batch[0], capacity_tolerance)
        for batch in batches
    ]

    cost_hist = obs.histogram("rounding.trial_cost")
    rounds_hist = obs.histogram("rounding.trial_rounds")
    try:
        with obs.timed(
            "rounding.parallel", trials=trials, jobs=runner.jobs
        ) as rounding_span:
            results = runner.map(
                _run_trial_batch, tasks, trace_label="rounding.worker"
            )
            outcomes = [o for batch_outcomes, _ in results for o in batch_outcomes]
            busy = sum(duration for _, duration in results)
            best = select_best(outcomes, capacity_tolerance)
            rounding_span.set(
                best_trial=best.index,
                best_cost=float(best.cost),
                feasible=best.feasible,
            )
    finally:
        if owns_runner:
            runner.close()

    for outcome in outcomes:
        cost_hist.observe(outcome.cost)
        rounds_hist.observe(outcome.rounds)
    obs.counter("rounding.trials").inc(trials)
    wall = rounding_span.duration
    if wall > 0:
        obs.gauge("rounding.trials_per_second").set(trials / wall)
    record_pool_metrics(wall, busy, runner.jobs, len(tasks))

    return RoundingResult(
        placement=Placement(fractional.problem, best.assignment),
        cost=float(best.cost),
        trials=trials,
        trial_costs=tuple(o.cost for o in outcomes),
        rounds=best.rounds,
        best_trial=best.index,
    )
