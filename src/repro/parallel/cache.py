"""Content-addressed plan cache: problem fingerprint → solved artifact.

Replanning workloads (the ``repro experiment`` sweeps, periodic
re-optimization against a fresh trace) repeatedly solve LPs for
problems that have not changed.  The cache keys every artifact by a
SHA-256 fingerprint of the *content* that determines it — the full
problem document (objects, sizes, capacities, pairs, resources) plus
the planner-configuration signature — so a hit is guaranteed to be the
byte-exact artifact the solver would have produced, and any change to
the problem or configuration silently misses to a fresh solve.

Two artifact kinds are stored, both as JSON documents from
:mod:`repro.core.serialization`:

* ``lp`` — a :class:`~repro.core.lp.FractionalPlacement`, keyed by the
  (sub)problem + backend.  Hits skip the LP solve but re-round, so a
  changed seed or trial count reuses the expensive half of the pipeline.
* ``plan`` — a full :class:`~repro.core.lprr.LPRRResult`, keyed by the
  problem + every planner knob.  Hits skip the entire pipeline.

Layout: ``<root>/<kind>/<key[:2]>/<key>.json``, written atomically
(temp file + rename) so concurrent planners can share a cache
directory.  Corrupt or unreadable entries are treated as misses, never
as errors.  Counters: ``cache.hits`` / ``cache.misses`` /
``cache.stores`` / ``cache.corrupt`` plus per-kind
``cache.<kind>.hits`` etc.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro import obs
from repro.core.problem import PlacementProblem


def problem_fingerprint(problem: PlacementProblem) -> str:
    """SHA-256 of the problem's canonical JSON document."""
    from repro.core.serialization import problem_to_dict

    blob = json.dumps(
        problem_to_dict(problem), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def signature_key(*parts: str) -> str:
    """Combine fingerprint/signature strings into one cache key."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class PlanCache:
    """A directory of content-addressed planning artifacts.

    Args:
        root: Cache directory (created on first store).

    All lookups and stores are best-effort: I/O errors and malformed
    entries degrade to cache misses so a broken cache can never break
    planning.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.json"

    def load(self, kind: str, key: str) -> dict | None:
        """The stored document for ``key``, or None on a miss.

        A present-but-unusable artifact — truncated JSON, binary
        garbage, or a non-object document from a torn write — counts as
        a miss (so the planner re-solves and overwrites it) and is
        additionally recorded under ``cache.corrupt``.
        """
        path = self._path(kind, key)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError:
            obs.counter("cache.misses").inc()
            obs.counter(f"cache.{kind}.misses").inc()
            obs.record("cache.load", cache_kind=kind, key=key, outcome="miss")
            return None
        except ValueError:  # JSONDecodeError, UnicodeDecodeError
            self._record_corrupt(kind, key)
            return None
        if not isinstance(doc, dict):
            self._record_corrupt(kind, key)
            return None
        obs.counter("cache.hits").inc()
        obs.counter(f"cache.{kind}.hits").inc()
        obs.record("cache.load", cache_kind=kind, key=key, outcome="hit")
        return doc

    def _record_corrupt(self, kind: str, key: str) -> None:
        obs.counter("cache.misses").inc()
        obs.counter(f"cache.{kind}.misses").inc()
        obs.counter("cache.corrupt").inc()
        obs.counter(f"cache.{kind}.corrupt").inc()
        obs.record("cache.load", cache_kind=kind, key=key, outcome="corrupt")

    def store(self, kind: str, key: str, doc: dict) -> None:
        """Atomically persist ``doc`` under ``key``."""
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # best-effort: a read-only cache dir is not an error
        obs.counter("cache.stores").inc()
        obs.counter(f"cache.{kind}.stores").inc()
        obs.record("cache.store", cache_kind=kind, key=key)

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
