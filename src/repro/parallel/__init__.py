"""repro.parallel — the parallel planning execution layer.

Three independent levers, all deterministic for a fixed root seed:

* **Trial fan-out** — :func:`parallel_round_best_of` runs best-of-``k``
  randomized-rounding trials across a process pool, reducing over
  ``(cost, trial_index)`` so the result is identical for every worker
  count (``jobs=1`` is a poolless inline fallback).
* **Component fan-out** — :func:`solve_components` solves the
  correlation graph's per-component LPs concurrently.
* **Plan cache** — :class:`PlanCache` memoizes LP solutions and whole
  LPRR results by content fingerprint, so replans of an unchanged
  problem skip the solve entirely.

See ``docs/PARALLELISM.md`` for the worker model, the seeding scheme,
and cache keying.
"""

from repro.parallel.cache import PlanCache, problem_fingerprint, signature_key
from repro.parallel.components import ComponentOutcome, solve_components
from repro.parallel.rounding import (
    TrialOutcome,
    parallel_round_best_of,
    select_best,
)
from repro.parallel.runner import (
    TaskRunner,
    chunk_evenly,
    record_pool_metrics,
    resolve_jobs,
)
from repro.parallel.seeds import spawn_generators, spawn_seed_sequences

__all__ = [
    "ComponentOutcome",
    "PlanCache",
    "TaskRunner",
    "TrialOutcome",
    "chunk_evenly",
    "parallel_round_best_of",
    "problem_fingerprint",
    "record_pool_metrics",
    "resolve_jobs",
    "select_best",
    "signature_key",
    "solve_components",
    "spawn_generators",
    "spawn_seed_sequences",
]
