"""Per-component LP solve + rounding, fanned out across workers.

:func:`repro.core.decompose.component_subproblems` splits the
correlation graph into independent CCA subproblems; under the paper's
conservative-capacity regime each component's LP and rounding touch no
shared state, so components are a natural parallel unit — coarser than
individual rounding trials, which keeps pickling overhead (one small
subproblem per task) far below the LP solve time it buys back.

Determinism matches the rounding fan-out: component ``i`` always gets
seed child ``i`` of the root (components are deterministically ordered
by :func:`~repro.core.decompose.correlation_components`), so the merged
placement depends only on ``(subproblem, root_seed)``, not on ``jobs``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.lp import LPStats, solve_placement_lp
from repro.core.problem import PlacementProblem
from repro.core.rounding import round_best_of
from repro.parallel.runner import TaskRunner, record_pool_metrics
from repro.parallel.seeds import spawn_seed_sequences


@dataclass(frozen=True)
class ComponentOutcome:
    """One component's solved-and-rounded result.

    ``assignment`` is local to the component subproblem's object order;
    the caller maps it back through object ids.
    """

    index: int
    object_ids: tuple
    assignment: np.ndarray
    lower_bound: float
    stats: LPStats
    rounds: int
    duration: float


def _solve_component(
    task: tuple[int, PlacementProblem, str, int, object, float | None],
) -> ComponentOutcome:
    """Solve and round one component (one pool task)."""
    index, component, backend, trials, seed_seq, tolerance = task
    started = time.perf_counter()
    fractional = solve_placement_lp(component, backend=backend)
    rounding = round_best_of(
        fractional,
        trials=trials,
        rng=np.random.default_rng(seed_seq),
        capacity_tolerance=tolerance,
    )
    return ComponentOutcome(
        index=index,
        object_ids=component.object_ids,
        assignment=rounding.placement.assignment,
        lower_bound=fractional.lower_bound,
        stats=fractional.stats,
        rounds=rounding.rounds,
        duration=time.perf_counter() - started,
    )


def solve_components(
    components: list[PlacementProblem],
    backend: str = "auto",
    trials: int = 10,
    root_seed: int | None = 0,
    jobs: int | None = 1,
    capacity_tolerance: float | None = None,
    runner: TaskRunner | None = None,
) -> list[ComponentOutcome]:
    """Solve and round every component, serial or across a pool.

    Components are dispatched largest-first (the order
    ``component_subproblems`` already yields), which is also the best
    schedule for a pool: the longest LP starts first, short ones pack
    in behind it.  Results come back in component order.
    """
    if not components:
        return []
    seed_seqs = spawn_seed_sequences(root_seed, len(components))
    tasks = [
        (i, component, backend, trials, seed_seqs[i], capacity_tolerance)
        for i, component in enumerate(components)
    ]
    owns_runner = runner is None
    if owns_runner:
        runner = TaskRunner(jobs)
    assert runner is not None
    try:
        with obs.timed(
            "lprr.components.parallel", components=len(components), jobs=runner.jobs
        ) as span:
            outcomes = runner.map(
                _solve_component, tasks, trace_label="components.worker"
            )
        span.set(lower_bound=float(sum(o.lower_bound for o in outcomes)))
    finally:
        if owns_runner:
            runner.close()
    busy = sum(o.duration for o in outcomes)
    record_pool_metrics(span.duration, busy, runner.jobs, len(tasks))
    obs.counter("lprr.components_solved").inc(len(components))
    return outcomes
