"""Task execution: serial inline or across a process pool.

:class:`TaskRunner` is the one place the codebase touches
``concurrent.futures``.  ``jobs=1`` runs every task inline in the
calling process — no pool, no pickling, no import-time side effects —
which is the serial fallback the planner uses by default.  ``jobs>1``
lazily creates a :class:`~concurrent.futures.ProcessPoolExecutor` and
maps tasks across it in submission order, so callers can rely on
``results[i]`` corresponding to ``items[i]`` regardless of worker
scheduling.

A broken pool (worker killed mid-batch) is retried on a fresh pool
with backoff and, if it keeps breaking, the batch runs inline — a
planning run never fails because of worker-process mortality (metrics:
``pool.broken``, ``pool.inline_fallbacks``).

Functions mapped across a pool must be picklable (module-level
functions; bound arguments go in the item tuples).  Child processes
never see the parent's registry, so cross-process *tracing* works by
propagation instead: when the parent is traced and a ``trace_label``
is passed to :meth:`TaskRunner.map`, each task is wrapped in
:func:`_traced_task`, which enables a private instrumentation unit in
the worker, runs the task under a root span, and ships the finished
span tree back beside the result.  The parent stitches every worker
tree under its open span (``Tracer.attach``), so one planning run
yields one tree with per-worker timelines.  Pool-health metrics still
aggregate via :func:`record_pool_metrics`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro import obs
from repro.obs.span import span_from_payload, span_to_payload


def _traced_task(payload: tuple[Callable[[Any], Any], str, Any]) -> tuple[Any, dict]:
    """Run one task in a worker under a private trace (picklable).

    Enables a fresh :class:`~repro.obs.runtime.Instrumentation` local
    to the worker process (saving and restoring whatever was active —
    fork-started workers inherit the parent's global), runs the task
    under a ``trace_label`` root span tagged with the worker ``pid``,
    and returns ``(result, span_payload)``.  The pid tag is what the
    Chrome exporter uses to give each worker its own track.
    """
    fn, label, item = payload
    previous = obs.current()
    inst = obs.enable(obs.Instrumentation())
    try:
        with inst.tracer.span(label, pid=os.getpid()) as root:
            result = fn(item)
    finally:
        if previous is not None:
            obs.enable(previous)
        else:
            obs.disable()
    return result, span_to_payload(root)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a jobs request: ``None``/0 → 1, negative → cpu count."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


class TaskRunner:
    """Maps functions over items, inline or on a process pool.

    Args:
        jobs: Worker count.  ``1`` executes inline (serial fallback);
            ``>1`` uses a process pool of that size; negative means
            "one per CPU".
        pool_retries: How many times a :class:`BrokenProcessPool`
            (a worker killed by the OOM killer, a crashed interpreter)
            is answered by rebuilding the pool and retrying the whole
            batch, with exponential backoff, before the batch falls
            back to inline execution in the calling process.
        retry_backoff_s: Initial backoff before a pool rebuild; doubles
            per retry.  ``0`` disables sleeping (used by tests).

    Use as a context manager so the pool (if any) is torn down::

        with TaskRunner(jobs=4) as runner:
            results = runner.map(work, items)
    """

    def __init__(
        self,
        jobs: int | None = 1,
        pool_retries: int = 1,
        retry_backoff_s: float = 0.05,
    ):
        if pool_retries < 0:
            raise ValueError("pool_retries must be nonnegative")
        self.jobs = resolve_jobs(jobs)
        self.pool_retries = pool_retries
        self.retry_backoff_s = retry_backoff_s
        self._pool: ProcessPoolExecutor | None = None
        self._sleep = time.sleep  # injectable for tests

    def __enter__(self) -> "TaskRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the pool, if one was created."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        trace_label: str | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every item, preserving item order.

        With one worker (or at most one item) this is a plain inline
        loop; otherwise tasks are distributed across the pool.  Either
        way the result list aligns index-for-index with ``items``.

        ``trace_label`` opts the batch into cross-process tracing:
        when the parent is traced and the batch actually dispatches to
        the pool, each worker's spans come back under a root span with
        that label and are stitched into the parent's trace tree.
        Untraced runs pay nothing — tasks ship unwrapped.
        """
        tasks = list(items)
        obs.gauge("parallel.jobs").set(self.jobs)
        obs.counter("parallel.tasks").inc(len(tasks))
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        traced = trace_label is not None and obs.is_enabled()
        pool_fn: Callable[[Any], Any] = _traced_task if traced else fn
        pool_tasks = (
            [(fn, trace_label, task) for task in tasks] if traced else tasks
        )
        backoff = self.retry_backoff_s
        for attempt in range(self.pool_retries + 1):
            pool = self._ensure_pool()
            try:
                outputs = list(pool.map(pool_fn, pool_tasks))
            except BrokenProcessPool:
                # A dead worker poisons the whole executor; results of
                # the batch are unrecoverable, so retry from scratch.
                obs.counter("pool.broken").inc()
                self.close()
                if attempt < self.pool_retries and backoff > 0:
                    self._sleep(backoff)
                    backoff *= 2
                continue
            if not traced:
                return outputs
            active = obs.current()
            results = []
            for result, span_payload in outputs:
                results.append(result)
                if active is not None:
                    active.tracer.attach(span_from_payload(span_payload))
            return results
        # The pool keeps dying (resource exhaustion, unpicklable crash):
        # serve this batch inline so planning completes, degraded.  The
        # unwrapped ``fn`` runs in-process, under the parent's own trace.
        obs.counter("pool.inline_fallbacks").inc()
        return [fn(task) for task in tasks]


def chunk_evenly(items: Sequence[Any], chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``chunks`` contiguous, balanced runs.

    The first ``len(items) % chunks`` runs get one extra element, so
    sizes differ by at most one.  Empty runs are never returned.
    """
    if chunks < 1:
        raise ValueError("chunks must be positive")
    n = len(items)
    chunks = min(chunks, n) or 1
    base, extra = divmod(n, chunks)
    out: list[list[Any]] = []
    start = 0
    for c in range(chunks):
        size = base + (1 if c < extra else 0)
        if size:
            out.append(list(items[start : start + size]))
        start += size
    return out


def record_pool_metrics(
    wall_seconds: float, busy_seconds: float, jobs: int, tasks: int
) -> None:
    """Publish pool-health gauges for one parallel section.

    ``parallel.pool_utilization`` is worker busy-time over available
    worker-time (``wall * jobs``) — 1.0 means every worker computed for
    the whole section, values near ``1/jobs`` mean the section was
    effectively serial (one long task, or pool startup dominated).
    """
    obs.gauge("parallel.jobs").set(jobs)
    obs.gauge("parallel.last_tasks").set(tasks)
    if wall_seconds > 0 and jobs > 0:
        obs.gauge("parallel.pool_utilization").set(
            min(1.0, busy_seconds / (wall_seconds * jobs))
        )
