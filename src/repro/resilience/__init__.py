"""Resilience subsystem: fault injection, degraded serving, self-healing.

The pipeline this package hardens is the one the rest of the library
builds: plan a placement, materialize it on a cluster, serve a trace.
Here that pipeline meets failure on purpose —

* :mod:`repro.resilience.faults` injects deterministic, seeded crash /
  recover / slow / partition schedules over virtual (operation-index)
  time;
* :mod:`repro.resilience.degraded` quantifies what each fault epoch
  does to availability and communication cost, single-copy vs
  replicated;
* :mod:`repro.resilience.healing` keeps planning alive — retries with
  backoff, per-backend circuit breakers, and the ``"resilient"``
  fallback-chain planner;
* :mod:`repro.resilience.repair` re-places only what a crash lost,
  onto surviving capacity, and re-replicates under-replicated objects
  into the cheapest valid failure domain;
* :mod:`repro.resilience.chaos` runs the whole loop end to end and
  emits the byte-reproducible :class:`DegradedReport` behind the
  ``repro chaos`` CLI command.
"""

from repro.resilience.chaos import ChaosConfig, run_chaos, synthetic_scenario
from repro.resilience.degraded import (
    DegradedReport,
    EpochReport,
    ModeStats,
    mode_stats,
)
from repro.resilience.faults import (
    CRASH_DOMAIN,
    FAULT_KINDS,
    HEAL_DOMAIN,
    ClusterView,
    Epoch,
    FaultEvent,
    FaultSchedule,
    FaultState,
)
from repro.resilience.healing import (
    CircuitBreaker,
    FallbackStep,
    RetryPolicy,
    backend_breaker,
    plan_with_fallbacks,
    reset_backend_breakers,
    retry_with_backoff,
)
from repro.resilience.repair import (
    RepairOutcome,
    ReplicaRepairOutcome,
    re_replicate,
    replace_lost_objects,
)

__all__ = [
    "CRASH_DOMAIN",
    "FAULT_KINDS",
    "HEAL_DOMAIN",
    "ChaosConfig",
    "CircuitBreaker",
    "ClusterView",
    "DegradedReport",
    "Epoch",
    "EpochReport",
    "FallbackStep",
    "FaultEvent",
    "FaultSchedule",
    "FaultState",
    "ModeStats",
    "RepairOutcome",
    "ReplicaRepairOutcome",
    "RetryPolicy",
    "backend_breaker",
    "mode_stats",
    "plan_with_fallbacks",
    "re_replicate",
    "replace_lost_objects",
    "reset_backend_breakers",
    "retry_with_backoff",
    "run_chaos",
    "synthetic_scenario",
]
