"""End-to-end chaos runs: plan, inject faults, serve, repair, report.

:func:`run_chaos` is the resilience subsystem's integration point — it
drives a fault schedule against the cluster simulation and produces the
:class:`~repro.resilience.degraded.DegradedReport`:

1. Plan a single-copy placement (default: the ``"resilient"``
   fallback-chain planner) and build a replicated placement on top of
   the same primaries.
2. Walk the schedule's epochs over the operation trace.  At each epoch
   start, crashes and recoveries are applied to the live
   :class:`~repro.cluster.cluster.Cluster`; the epoch's trace slice is
   then executed (unservable operations come back ``served=False``)
   while the analytic layer scores single-copy vs replicated serving
   under the full view, partitions included.
3. After any epoch that stranded objects, incremental repair
   (:func:`~repro.resilience.repair.replace_lost_objects`) re-places
   the lost objects onto surviving capacity and replays the moves on
   the cluster, so following epochs serve from the repaired layout.

*Domain mode* (``ChaosConfig.topology`` set) changes the contest: both
sides are replicated under the same failure-domain spread constraints —
the optimized side planned through the replication-aware fallback chain
(``lprr:rep``), the baseline side by the domain-aware
:func:`~repro.core.replication.replicate_hash` — faults arrive as
domain-correlated ``crash_domain`` / ``heal_domain`` events, reads are
routed through the cheapest live replica, under-replicated objects are
re-replicated into the cheapest valid domain after each lossy epoch,
and the report carries a per-domain blast-radius table plus the
``data_loss`` flag the CLI turns into a nonzero exit code.

Slow-node and partition events affect the analytic serving stats but
not the byte simulation — the cluster model has no latency dimension,
which keeps the simulated bytes comparable across schedules.

Time is virtual throughout (operation indices); a run is a pure
function of ``(problem, operations, schedule, config)``, which is what
makes the report byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro import obs
from repro.cluster.cluster import Cluster
from repro.core.replication import (
    ReplicatedPlacement,
    greedy_replicated_placement,
    replicate_hash,
    spread_replicated_placement,
)
from repro.core.strategies import PlanConfig, plan
from repro.resilience.degraded import DegradedReport, EpochReport, mode_stats
from repro.resilience.faults import ClusterView, FaultSchedule
from repro.resilience.repair import re_replicate, replace_lost_objects

if TYPE_CHECKING:
    from repro.cluster.topology import Topology

ObjectId = Hashable
Operation = Sequence[ObjectId]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of a chaos run.

    Attributes:
        replicas: Copies per object in the replicated comparison
            placement (clamped to the node count).
        planner: Registry name of the planner for the single-copy
            placement (domain mode: for the optimized replicated
            placement; ``"resilient"`` routes through the ``lprr:rep``
            fallback chain).
        plan_config: Planning knobs forwarded to the planner.
        mode: Cluster operation mode (``"intersection"``/``"union"``).
        repair: Run incremental repair after epochs that lose objects
            (domain mode: re-replication into the cheapest valid
            domain).
        capacity_tolerance: Slack allowed when repair re-places onto
            survivors.
        topology: Failure-domain membership of the node indices; when
            set the run switches to *domain mode* — replicated LPRR vs
            replicated hash under domain-correlated faults.
    """

    replicas: int = 2
    planner: str = "resilient"
    plan_config: PlanConfig = field(default_factory=PlanConfig)
    mode: str = "intersection"
    repair: bool = True
    capacity_tolerance: float = 0.05
    topology: "Topology | None" = None


def synthetic_scenario(
    num_objects: int = 30,
    num_nodes: int = 5,
    num_operations: int = 60,
    seed: int = 0,
    capacity_factor: float = 2.0,
) -> tuple:
    """A small seeded (problem, trace) pair for chaos runs.

    Sizes, correlations, and the operation trace are all drawn from one
    seeded generator, so the scenario — like everything downstream of
    it — is a pure function of its arguments.  Operations lean toward
    correlated pairs (70%) so placements actually matter, with the rest
    uniform 2–3 object draws.

    Returns:
        ``(problem, operations)`` ready for :func:`run_chaos`.
    """
    from repro.core.problem import PlacementProblem

    if num_objects < 4 or num_nodes < 2:
        raise ValueError("scenario needs at least 4 objects and 2 nodes")
    rng = np.random.default_rng(seed)
    object_ids = [f"obj{i:03d}" for i in range(num_objects)]
    sizes = {o: float(rng.integers(1, 64)) for o in object_ids}

    correlations: dict[tuple[str, str], float] = {}
    for _ in range(2 * num_objects):
        a, b = rng.choice(num_objects, size=2, replace=False)
        key = tuple(sorted((object_ids[int(a)], object_ids[int(b)])))
        correlations[key] = correlations.get(key, 0.0) + float(
            rng.integers(1, 10)
        )

    per_node = capacity_factor * sum(sizes.values()) / num_nodes
    capacities = {f"node{k}": per_node for k in range(num_nodes)}
    problem = PlacementProblem.build(sizes, capacities, correlations)

    pair_keys = sorted(correlations)
    operations: list[tuple[str, ...]] = []
    for _ in range(num_operations):
        if pair_keys and rng.random() < 0.7:
            op = list(pair_keys[int(rng.integers(len(pair_keys)))])
            if rng.random() < 0.3:
                extra = object_ids[int(rng.integers(num_objects))]
                if extra not in op:
                    op.append(extra)
        else:
            count = int(rng.integers(2, 4))
            op = [
                object_ids[int(i)]
                for i in rng.choice(num_objects, size=count, replace=False)
            ]
        operations.append(tuple(op))
    return problem, operations


def _jsonish(value):
    """Coerce planner diagnostics into JSON-stable primitives."""
    if isinstance(value, dict):
        return {str(k): _jsonish(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonish(v) for v in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    return str(value)


def run_chaos(
    problem,
    operations: Sequence[Operation],
    schedule: FaultSchedule,
    config: ChaosConfig | None = None,
    seed: int | None = None,
) -> DegradedReport:
    """Run one fault schedule against one problem and trace.

    Args:
        problem: The CCA instance
            (:class:`~repro.core.problem.PlacementProblem`).
        operations: The multi-object operation trace; its length is the
            virtual-time horizon.
        schedule: Fault events over that horizon (its ``num_nodes``
            must match the problem).
        config: Run knobs (default :class:`ChaosConfig`).
        seed: Recorded in the report for provenance (the schedule is
            already fixed; pass the seed it was drawn from).

    Returns:
        The deterministic :class:`DegradedReport`.
    """
    config = config or ChaosConfig()
    if schedule.num_nodes != problem.num_nodes:
        raise ValueError(
            f"schedule is for {schedule.num_nodes} nodes, "
            f"problem has {problem.num_nodes}"
        )
    ops = [tuple(op) for op in operations]
    if not ops:
        raise ValueError("chaos run needs a nonempty operation trace")
    if config.topology is not None:
        return _run_domain_chaos(problem, ops, schedule, config, seed)

    with obs.span(
        "chaos.run", operations=len(ops), events=len(schedule)
    ) as run_span:
        obs.record(
            "chaos.start",
            operations=len(ops),
            events=len(schedule),
            planner=config.planner,
            mode=config.mode,
            replicas=config.replicas,
            repair=config.repair,
            seed=seed,
        )
        result = plan(problem, config.planner, config.plan_config)
        current = result.placement
        replicas = min(config.replicas, problem.num_nodes)
        replicated = greedy_replicated_placement(
            problem, replicas=replicas, primary_strategy=lambda p: current
        )
        healthy_single = current.communication_cost()
        healthy_replicated = replicated.communication_cost()

        cluster = Cluster(current)
        node_ids = problem.node_ids
        epochs: list[EpochReport] = []
        repair_moves = 0
        repair_bytes = 0.0
        data_loss = False

        for epoch in schedule.epochs(len(ops)):
            with obs.span("chaos.epoch", index=epoch.index):
                for event in epoch.events:
                    obs.record(
                        "chaos.fault",
                        t=event.time,
                        epoch=epoch.index,
                        fault=event.kind,
                        nodes=list(event.nodes),
                    )
                    if event.kind == "crash":
                        for k in event.nodes:
                            cluster.fail(node_ids[k])
                    elif event.kind == "recover":
                        for k in event.nodes:
                            cluster.recover(node_ids[k])

                view = epoch.view
                chunk = ops[epoch.start : epoch.end]
                results = cluster.execute_trace(chunk, mode=config.mode)
                single_stats = mode_stats(current, view, chunk)
                repl_stats = mode_stats(
                    replicated, view, chunk, healthy_replicated
                )
                if repl_stats.lost_objects:
                    data_loss = True

                repair_doc = None
                stranded = any(
                    int(k) in view.down for k in current.assignment
                )
                if config.repair and stranded:
                    failed_ids = [node_ids[k] for k in sorted(view.down)]
                    outcome = replace_lost_objects(
                        current,
                        failed_ids,
                        operations=chunk,
                        capacity_tolerance=config.capacity_tolerance,
                    )
                    for move in outcome.plan.migrations:
                        cluster.migrate(move.obj, move.destination)
                    current = outcome.placement
                    repair_doc = outcome.to_dict()
                    repair_moves += outcome.plan.num_moves
                    repair_bytes += outcome.plan.bytes_moved

                obs.record(
                    "chaos.epoch",
                    t=epoch.start,
                    epoch=epoch.index,
                    down=sorted(view.down),
                    unserved=sum(1 for r in results if not r.served),
                    repaired=repair_doc is not None,
                )
                epochs.append(
                    EpochReport(
                        index=epoch.index,
                        start=epoch.start,
                        end=epoch.end,
                        events=tuple(e.to_dict() for e in epoch.events),
                        down=tuple(sorted(view.down)),
                        slow=tuple(sorted(view.slow)),
                        isolated=tuple(sorted(view.isolated)),
                        single=single_stats,
                        replicated=repl_stats,
                        trace_bytes=float(
                            sum(r.bytes_transferred for r in results)
                        ),
                        trace_unserved=sum(1 for r in results if not r.served),
                        repair=repair_doc,
                    )
                )

        total = len(ops)
        avail_single = (
            sum(e.single.servable_operations for e in epochs) / total
        )
        avail_repl = (
            sum(e.replicated.servable_operations for e in epochs) / total
        )
        run_span.set(
            epochs=len(epochs),
            availability_single=avail_single,
            availability_replicated=avail_repl,
        )
        obs.counter("chaos.runs").inc()
        obs.record(
            "chaos.end",
            epochs=len(epochs),
            availability_single=round(avail_single, 9),
            availability_replicated=round(avail_repl, 9),
            repair_moves=repair_moves,
            repair_bytes=round(repair_bytes, 9),
        )

    return DegradedReport(
        seed=seed,
        num_objects=problem.num_objects,
        num_nodes=problem.num_nodes,
        replicas=replicas,
        operations=total,
        mode=config.mode,
        planner=config.planner,
        planning=_jsonish(dict(result.diagnostics)),
        schedule=schedule.to_dict(),
        healthy_cost_single=healthy_single,
        healthy_cost_replicated=healthy_replicated,
        epochs=tuple(epochs),
        availability_single=avail_single,
        availability_replicated=avail_repl,
        repair_moves=repair_moves,
        repair_bytes=repair_bytes,
        data_loss=data_loss,
    )


def _route_replicated_trace(
    replicated: ReplicatedPlacement,
    view: ClusterView,
    chunk: Sequence[Operation],
) -> tuple[float, int]:
    """Serve a trace slice through the cheapest live replicas.

    Each operation is routed within one partition side: the coordinator
    is the live node holding copies of the most requested objects
    (ties: prefer non-slow nodes, then the lowest index), and every
    object without a copy on the coordinator ships its size once.
    Operations whose objects cannot all be found live within a single
    side are unserved.

    Returns:
        ``(bytes_moved, unserved_operations)`` for the slice.
    """
    problem = replicated.problem
    index_of = {obj: i for i, obj in enumerate(problem.object_ids)}
    copies = [
        frozenset(int(k) for k in row) for row in replicated.assignment
    ]
    groups = view.groups()
    bytes_moved = 0.0
    unserved = 0
    for operation in chunk:
        known = [index_of[obj] for obj in operation if obj in index_of]
        if not known:
            continue
        chosen: frozenset[int] | None = None
        for g in groups:
            if all(copies[i] & g for i in known):
                chosen = g
                break
        if chosen is None:
            unserved += 1
            continue
        candidates = sorted(chosen)
        coordinator = max(
            candidates,
            key=lambda k: (
                sum(1 for i in known if k in copies[i]),
                k not in view.slow,
                -k,
            ),
        )
        bytes_moved += float(
            sum(
                problem.sizes[i]
                for i in known
                if coordinator not in copies[i]
            )
        )
    return bytes_moved, unserved


def _plan_replicated(
    problem, config: ChaosConfig, replicas: int
) -> tuple:
    """The optimized replicated placement and its planning result."""
    rep_config = config.plan_config.with_options(
        replicas=replicas, topology=config.topology
    )
    result = plan(problem, config.planner, rep_config)
    if isinstance(result.details, ReplicatedPlacement):
        return result, result.details
    # A single-copy planner was requested: keep its primaries and add
    # spread-constrained replicas on top.
    replicated = spread_replicated_placement(
        problem,
        config.topology,
        replicas=replicas,
        primary_strategy=lambda p: result.placement,
    )
    return result, replicated


def _run_domain_chaos(
    problem,
    ops: list,
    schedule: FaultSchedule,
    config: ChaosConfig,
    seed: int | None,
) -> DegradedReport:
    """Domain-mode chaos: replicated LPRR vs replicated hash.

    Both placements obey the same spread constraints over
    ``config.topology``; the report's ``single`` slots carry the
    spread-hash baseline (``baseline="rep:hash"``) so the availability
    comparison isolates correlation awareness, not replication itself.
    """
    topology = config.topology
    replicas = min(config.replicas, problem.num_nodes)

    with obs.span(
        "chaos.run", operations=len(ops), events=len(schedule)
    ) as run_span:
        obs.record(
            "chaos.start",
            operations=len(ops),
            events=len(schedule),
            planner=config.planner,
            mode=config.mode,
            replicas=replicas,
            repair=config.repair,
            seed=seed,
            topology=topology.to_dict(),
        )
        result, optimized = _plan_replicated(problem, config, replicas)
        plan_spread = optimized.spread
        baseline = replicate_hash(problem, topology, replicas=replicas)
        healthy_baseline = baseline.communication_cost()
        healthy_optimized = optimized.communication_cost()

        epochs: list[EpochReport] = []
        repair_moves = 0
        repair_bytes = 0.0
        data_loss = False
        impact: dict[str, dict] = {}

        for epoch in schedule.epochs(len(ops)):
            with obs.span("chaos.epoch", index=epoch.index):
                for event in epoch.events:
                    kind = "chaos.domain_fault" if event.domain else "chaos.fault"
                    fields = {
                        "t": event.time,
                        "epoch": epoch.index,
                        "fault": event.kind,
                        "nodes": list(event.nodes),
                    }
                    if event.domain:
                        fields["domain"] = event.domain
                    obs.record(kind, **fields)

                view = epoch.view
                chunk = ops[epoch.start : epoch.end]
                base_stats = mode_stats(baseline, view, chunk, healthy_baseline)
                opt_stats = mode_stats(optimized, view, chunk, healthy_optimized)
                if opt_stats.lost_objects:
                    data_loss = True
                trace_bytes, trace_unserved = _route_replicated_trace(
                    optimized, view, chunk
                )

                for label in sorted(view.down_domains):
                    row = impact.setdefault(
                        label,
                        {
                            "epochs": 0,
                            "operations": 0,
                            "unserved_operations": 0,
                            "lost_objects": 0,
                        },
                    )
                    row["epochs"] += 1
                    row["operations"] += opt_stats.operations
                    row["unserved_operations"] += (
                        opt_stats.operations - opt_stats.servable_operations
                    )
                    row["lost_objects"] = max(
                        row["lost_objects"], opt_stats.lost_objects
                    )

                repair_doc = None
                down = view.down
                stranded = bool(down) and bool(
                    (np.isin(optimized.assignment, sorted(down))).any()
                    or (np.isin(baseline.assignment, sorted(down))).any()
                )
                if config.repair and stranded:
                    outcome = re_replicate(
                        optimized,
                        view,
                        operations=chunk,
                        capacity_tolerance=config.capacity_tolerance,
                    )
                    optimized = outcome.placement
                    repair_doc = outcome.to_dict()
                    repair_moves += outcome.moves
                    repair_bytes += outcome.bytes_moved
                    # The baseline heals too — the contest stays fair.
                    baseline = re_replicate(
                        baseline,
                        view,
                        operations=chunk,
                        capacity_tolerance=config.capacity_tolerance,
                    ).placement

                obs.record(
                    "chaos.epoch",
                    t=epoch.start,
                    epoch=epoch.index,
                    down=sorted(view.down),
                    down_domains=sorted(view.down_domains),
                    unserved=trace_unserved,
                    repaired=repair_doc is not None,
                )
                epochs.append(
                    EpochReport(
                        index=epoch.index,
                        start=epoch.start,
                        end=epoch.end,
                        events=tuple(e.to_dict() for e in epoch.events),
                        down=tuple(sorted(view.down)),
                        slow=tuple(sorted(view.slow)),
                        isolated=tuple(sorted(view.isolated)),
                        single=base_stats,
                        replicated=opt_stats,
                        trace_bytes=trace_bytes,
                        trace_unserved=trace_unserved,
                        repair=repair_doc,
                        down_domains=tuple(sorted(view.down_domains)),
                    )
                )

        total = len(ops)
        avail_base = sum(e.single.servable_operations for e in epochs) / total
        avail_opt = sum(e.replicated.servable_operations for e in epochs) / total
        run_span.set(
            epochs=len(epochs),
            availability_single=avail_base,
            availability_replicated=avail_opt,
        )
        obs.counter("chaos.runs").inc()
        obs.record(
            "chaos.end",
            epochs=len(epochs),
            availability_single=round(avail_base, 9),
            availability_replicated=round(avail_opt, 9),
            repair_moves=repair_moves,
            repair_bytes=round(repair_bytes, 9),
            data_loss=data_loss,
        )

    return DegradedReport(
        seed=seed,
        num_objects=problem.num_objects,
        num_nodes=problem.num_nodes,
        replicas=replicas,
        operations=total,
        mode=config.mode,
        planner=config.planner,
        planning=_jsonish(dict(result.diagnostics)),
        schedule=schedule.to_dict(),
        healthy_cost_single=healthy_baseline,
        healthy_cost_replicated=healthy_optimized,
        epochs=tuple(epochs),
        availability_single=avail_base,
        availability_replicated=avail_opt,
        repair_moves=repair_moves,
        repair_bytes=repair_bytes,
        baseline="rep:hash",
        topology=topology.to_dict(),
        spread=plan_spread,
        data_loss=data_loss,
        domain_impact=impact,
    )
