"""Degraded-mode analytics: what a fault epoch costs, quantified.

Given a placement (single-copy or replicated) and a
:class:`~repro.resilience.faults.ClusterView`, :func:`mode_stats`
computes the epoch's serving picture: which objects still have a live
copy, which operations remain servable (partition-aware — an operation
needs all its objects reachable *within one side*), and the pair-cost
the survivors pay, expressed as inflation over the healthy cost.

:class:`DegradedReport` is the chaos run's deliverable — per-epoch
:class:`EpochReport` rows comparing single-copy against replicated
serving, plus run-level totals.  Everything in it is derived from the
seed, the trace, and the schedule; no wall-clock ever enters, so the
same seed always produces byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.placement import Placement
from repro.core.replication import ReplicatedPlacement
from repro.resilience.faults import ClusterView

ObjectId = Hashable
Operation = Sequence[ObjectId]


@dataclass(frozen=True)
class ModeStats:
    """Serving quality of one placement mode during one epoch.

    Attributes:
        object_availability: Fraction of objects with a live copy.
        operations: Operations attempted in the epoch.
        servable_operations: Operations with every (known) object
            reachable within a single partition side.
        lost_objects: Objects with no live copy.
        degraded_cost: Pair weight still paid remotely by servable
            pairs under the view.
        lost_pair_weight: Pair weight belonging to unservable pairs
            (excluded from ``degraded_cost``).
        cost_inflation: ``degraded_cost`` over the healthy cost of the
            same placement (1.0 when the healthy cost is zero and
            nothing degraded, infinity-free by convention: a zero
            healthy cost with nonzero degraded cost reports the
            degraded cost itself).
    """

    object_availability: float
    operations: int
    servable_operations: int
    lost_objects: int
    degraded_cost: float
    lost_pair_weight: float
    cost_inflation: float

    @property
    def operation_availability(self) -> float:
        """Fraction of the epoch's operations that were servable."""
        if self.operations == 0:
            return 1.0
        return self.servable_operations / self.operations

    def to_dict(self) -> dict:
        """JSON-ready form (floats rounded for stable text output)."""
        return {
            "object_availability": round(self.object_availability, 9),
            "operation_availability": round(self.operation_availability, 9),
            "operations": self.operations,
            "servable_operations": self.servable_operations,
            "lost_objects": self.lost_objects,
            "degraded_cost": round(self.degraded_cost, 6),
            "lost_pair_weight": round(self.lost_pair_weight, 6),
            "cost_inflation": round(self.cost_inflation, 9),
        }


def copy_sets(placement: Placement | ReplicatedPlacement) -> list[set[int]]:
    """Per-object sets of node *indices* holding a copy."""
    if isinstance(placement, ReplicatedPlacement):
        return [set(int(k) for k in row) for row in placement.assignment]
    return [{int(k)} for k in placement.assignment]


def mode_stats(
    placement: Placement | ReplicatedPlacement,
    view: ClusterView,
    operations: Sequence[Operation],
    healthy_cost: float | None = None,
) -> ModeStats:
    """Evaluate one placement under one cluster view.

    Args:
        placement: Single-copy or replicated placement.
        view: Cluster health for the epoch.
        operations: The epoch's slice of the trace; object ids unknown
            to the placement's problem are ignored, matching the
            engines.
        healthy_cost: The placement's cost with everything up; computed
            if omitted (pass it in when evaluating many epochs).

    Returns:
        The epoch's :class:`ModeStats`.
    """
    problem = placement.problem
    copies = copy_sets(placement)
    groups = view.groups()
    live = [
        tuple(c & g for g in groups)  # live copies per partition side
        for c in copies
    ]
    alive = [any(parts) for parts in live]

    lost = sum(1 for a in alive if not a)
    object_availability = (
        (problem.num_objects - lost) / problem.num_objects
        if problem.num_objects
        else 1.0
    )

    index_of = {obj: i for i, obj in enumerate(problem.object_ids)}
    total_ops = 0
    servable = 0
    for operation in operations:
        total_ops += 1
        known = [index_of[obj] for obj in operation if obj in index_of]
        if any(
            all(live[i][g] for i in known) for g in range(len(groups))
        ) or not known:
            servable += 1

    degraded_cost = 0.0
    lost_weight = 0.0
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        i, j = int(i), int(j)
        both = [
            g
            for g in range(len(groups))
            if live[i][g] and live[j][g]
        ]
        if not both:
            lost_weight += float(weight)
        elif not any(live[i][g] & live[j][g] for g in both):
            degraded_cost += float(weight)

    if healthy_cost is None:
        healthy_cost = placement.communication_cost()
    if healthy_cost > 0:
        inflation = degraded_cost / healthy_cost
    else:
        inflation = degraded_cost if degraded_cost > 0 else 1.0

    return ModeStats(
        object_availability=object_availability,
        operations=total_ops,
        servable_operations=servable,
        lost_objects=lost,
        degraded_cost=degraded_cost,
        lost_pair_weight=lost_weight,
        cost_inflation=inflation,
    )


@dataclass(frozen=True)
class EpochReport:
    """One fault epoch's row in the degraded report.

    Attributes:
        index: Epoch position.
        start: First operation index (inclusive).
        end: One past the last operation index.
        events: JSON forms of the events that opened the epoch.
        down: Crashed node indices throughout the epoch, sorted.
        slow: Slow node indices, sorted.
        isolated: Partitioned-away node indices, sorted.
        single: Serving stats for the single-copy placement.
        replicated: Serving stats for the replicated placement.
        trace_bytes: Bytes the cluster simulation actually moved
            serving the epoch's slice on the single-copy placement.
        trace_unserved: Operations the simulation refused (objects on
            failed nodes).
        repair: Summary of the incremental repair run at epoch end, or
            ``None`` when nothing was lost.
        down_domains: Labels of failure domains crashed as a unit
            throughout the epoch (empty outside domain-mode runs).
    """

    index: int
    start: int
    end: int
    events: tuple[dict, ...]
    down: tuple[int, ...]
    slow: tuple[int, ...]
    isolated: tuple[int, ...]
    single: ModeStats
    replicated: ModeStats
    trace_bytes: float
    trace_unserved: int
    repair: dict | None = None
    down_domains: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form."""
        doc = {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "events": list(self.events),
            "down": list(self.down),
            "slow": list(self.slow),
            "isolated": list(self.isolated),
            "single": self.single.to_dict(),
            "replicated": self.replicated.to_dict(),
            "trace_bytes": round(self.trace_bytes, 6),
            "trace_unserved": self.trace_unserved,
            "repair": self.repair,
        }
        if self.down_domains:
            doc["down_domains"] = list(self.down_domains)
        return doc


@dataclass(frozen=True)
class DegradedReport:
    """The full deliverable of one chaos run.

    Deterministic by construction: every field derives from the seed,
    the problem, the trace, and the fault schedule.  ``to_json`` is the
    byte-reproducibility surface the chaos-smoke CI job compares.

    Attributes:
        seed: Root seed of the run (``None`` for caller-built
            schedules).
        num_objects: Problem size.
        num_nodes: Cluster size.
        replicas: Copies per object in the replicated placement.
        operations: Trace length.
        mode: Cluster operation mode (``"intersection"``/``"union"``).
        planner: Planner that produced the single-copy placement.
        planning: Planner diagnostics (includes the fallback chain when
            the resilient planner ran).
        schedule: The fault schedule, in JSON form.
        healthy_cost_single: Pair cost of the single-copy placement
            with everything up.
        healthy_cost_replicated: Same for the replicated placement.
        epochs: Per-epoch rows.
        availability_single: Operation-weighted availability of the
            single-copy placement across the run.
        availability_replicated: Same for the replicated placement.
        repair_moves: Total objects re-placed by incremental repair.
        repair_bytes: Total repair traffic.
        baseline: What the ``single``/``healthy_cost_single`` slots
            hold — ``"single"`` (legacy runs: the unreplicated
            placement) or ``"rep:hash"`` (domain-mode runs: the
            spread-hash replicated baseline the optimized placement is
            compared against).
        topology: Failure-domain topology of the run in JSON form, or
            ``None`` for flat (legacy) runs.
        spread: Domain level the replicas are spread across, or
            ``None`` for legacy runs.
        data_loss: Whether any object lost *all* replicas in some epoch
            (before repair) — the loud-failure flag the chaos CLI turns
            into a nonzero exit code.
        domain_impact: Per-domain blast radius: for every domain that
            was down during some epoch, the operations attempted,
            unserved operations (optimized placement), and peak
            lost-object count while it was down.
    """

    seed: int | None
    num_objects: int
    num_nodes: int
    replicas: int
    operations: int
    mode: str
    planner: str
    planning: dict
    schedule: dict
    healthy_cost_single: float
    healthy_cost_replicated: float
    epochs: tuple[EpochReport, ...]
    availability_single: float
    availability_replicated: float
    repair_moves: int
    repair_bytes: float
    baseline: str = "single"
    topology: dict | None = None
    spread: str | None = None
    data_loss: bool = False
    domain_impact: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "seed": self.seed,
            "num_objects": self.num_objects,
            "num_nodes": self.num_nodes,
            "replicas": self.replicas,
            "operations": self.operations,
            "mode": self.mode,
            "planner": self.planner,
            "planning": self.planning,
            "schedule": self.schedule,
            "healthy_cost_single": round(self.healthy_cost_single, 6),
            "healthy_cost_replicated": round(self.healthy_cost_replicated, 6),
            "epochs": [e.to_dict() for e in self.epochs],
            "availability_single": round(self.availability_single, 9),
            "availability_replicated": round(self.availability_replicated, 9),
            "repair_moves": self.repair_moves,
            "repair_bytes": round(self.repair_bytes, 6),
            "baseline": self.baseline,
            "topology": self.topology,
            "spread": self.spread,
            "data_loss": self.data_loss,
            "domain_impact": self.domain_impact,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, ``\\n`` ending."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """Short human summary for the CLI."""
        left = "single" if self.baseline == "single" else self.baseline
        loss = " | DATA LOSS" if self.data_loss else ""
        return (
            f"chaos: {self.operations} ops over {len(self.epochs)} epochs, "
            f"{len(self.schedule.get('events', []))} faults | availability "
            f"{left} {self.availability_single:.1%} vs replicated "
            f"{self.availability_replicated:.1%} | repair moved "
            f"{self.repair_moves} objects ({self.repair_bytes:.0f} bytes)"
            f"{loss}"
        )
