"""Incremental repair: re-place only what a failure lost.

After a crash, a single-copy placement has objects stranded on dead
nodes.  Re-running the full planner would move far more than necessary;
:func:`replace_lost_objects` instead computes a *minimal* repair — only
the lost objects get new homes, chosen greedily on surviving nodes to
maximize restored pair locality under remaining capacity — and returns
it as a standard :class:`~repro.core.migration.MigrationPlan` (every
move sourced at the dead node, modelling restore-from-replica or
re-ingest) together with before/after availability so the repair's
effect is quantified, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.cluster.failures import fail_nodes
from repro.core.migration import MigrationPlan, diff_placements
from repro.core.placement import Placement
from repro.exceptions import PlacementError

NodeId = Hashable
ObjectId = Hashable
Operation = Sequence[ObjectId]


@dataclass(frozen=True)
class RepairOutcome:
    """What an incremental repair did and bought.

    Attributes:
        plan: The executable migration plan (one move per lost object,
            sourced at its failed node).
        placement: The repaired placement (nothing on failed nodes).
        failed_nodes: The failure set repaired around, sorted.
        lost_objects: Objects that had to be re-placed, sorted.
        availability_before: Operation availability of the broken
            placement under the failure set.
        availability_after: Same measure for the repaired placement.
    """

    plan: MigrationPlan
    placement: Placement
    failed_nodes: tuple[NodeId, ...]
    lost_objects: tuple[ObjectId, ...]
    availability_before: float
    availability_after: float

    @property
    def restored(self) -> float:
        """Availability gained by the repair."""
        return self.availability_after - self.availability_before

    def to_dict(self) -> dict:
        """JSON-ready summary (plan details reduced to totals)."""
        return {
            "failed_nodes": [str(n) for n in self.failed_nodes],
            "lost_objects": [str(o) for o in self.lost_objects],
            "moves": self.plan.num_moves,
            "bytes_moved": float(self.plan.bytes_moved),
            "cost_after": float(self.plan.cost_after),
            "availability_before": float(self.availability_before),
            "availability_after": float(self.availability_after),
        }


def replace_lost_objects(
    placement: Placement,
    failed: Iterable[NodeId],
    operations: Iterable[Operation] = (),
    capacity_tolerance: float = 0.05,
) -> RepairOutcome:
    """Re-place every object stranded on failed nodes.

    Lost objects are handled largest-first; each goes to the surviving
    node where it restores the most correlation weight toward already
    (re-)placed neighbors, subject to remaining capacity with
    ``capacity_tolerance`` slack.  When nothing fits, the least-loaded
    surviving node takes the object anyway — repair never strands data
    to preserve a capacity preference.

    Args:
        placement: The single-copy placement at failure time.
        failed: Node ids that are down (validated against the problem).
        operations: Optional trace used for the availability numbers in
            the outcome.
        capacity_tolerance: Relative slack when judging whether a
            candidate node has room.

    Returns:
        A :class:`RepairOutcome`; its plan is empty when nothing was
        lost.

    Raises:
        PlacementError: If every node failed (no surviving capacity) or
            a failed id is unknown.
    """
    problem = placement.problem
    failed_set = {node for node in failed}
    failed_idx = {problem.node_index(node) for node in failed_set}
    survivors = [k for k in range(problem.num_nodes) if k not in failed_idx]
    if not failed_idx:
        return RepairOutcome(
            plan=diff_placements(placement, placement),
            placement=placement,
            failed_nodes=(),
            lost_objects=(),
            availability_before=1.0,
            availability_after=1.0,
        )
    if not survivors:
        raise PlacementError("every node failed; nothing to repair onto")

    operations = [tuple(op) for op in operations]
    before = fail_nodes(placement, failed_set, operations)

    assignment = placement.assignment.copy()
    lost = sorted(
        (i for i in range(problem.num_objects) if int(assignment[i]) in failed_idx),
        key=lambda i: (-problem.sizes[i], repr(problem.object_ids[i])),
    )

    loads = np.zeros(problem.num_nodes)
    for i in range(problem.num_objects):
        if int(assignment[i]) not in failed_idx:
            loads[assignment[i]] += problem.sizes[i]

    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(problem.num_objects)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    pending = set(lost)
    with obs.span("repair", lost=len(lost), failed=len(failed_idx)):
        for i in lost:
            gains = {k: 0.0 for k in survivors}
            for neighbor, weight in adjacency[i]:
                if neighbor in pending:
                    continue  # still stranded; contributes nowhere yet
                where = int(assignment[neighbor])
                if where in gains:
                    gains[where] += weight
            fits = [
                k
                for k in survivors
                if loads[k] + problem.sizes[i]
                <= problem.capacities[k] * (1.0 + capacity_tolerance) + 1e-9
            ]
            pool = fits or survivors
            # Most restored locality wins; ties go to the emptier node.
            best = max(pool, key=lambda k: (gains[k], -loads[k], -k))
            assignment[i] = best
            loads[best] += problem.sizes[i]
            pending.discard(i)

    repaired = Placement(problem, assignment)
    plan = diff_placements(placement, repaired)
    after = fail_nodes(repaired, failed_set, operations)
    obs.counter("repair.objects_replaced").inc(len(lost))
    obs.histogram("repair.bytes").observe(plan.bytes_moved)

    return RepairOutcome(
        plan=plan,
        placement=repaired,
        failed_nodes=tuple(sorted(failed_set, key=repr)),
        lost_objects=tuple(problem.object_ids[i] for i in lost),
        availability_before=before.operation_availability,
        availability_after=after.operation_availability,
    )
