"""Incremental repair: re-place only what a failure lost.

After a crash, a single-copy placement has objects stranded on dead
nodes.  Re-running the full planner would move far more than necessary;
:func:`replace_lost_objects` instead computes a *minimal* repair — only
the lost objects get new homes, chosen greedily on surviving nodes to
maximize restored pair locality under remaining capacity — and returns
it as a standard :class:`~repro.core.migration.MigrationPlan` (every
move sourced at the dead node, modelling restore-from-replica or
re-ingest) together with before/after availability so the repair's
effect is quantified, not assumed.

:func:`re_replicate` is the replicated analogue: after a fault, every
copy sitting on a down node is re-created on a live node in the
cheapest *valid* failure domain — one holding no other live copy of
the object — restoring full replication degree without ever violating
the spread constraints the placement was built under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.cluster.failures import fail_nodes
from repro.core.migration import MigrationPlan, diff_placements
from repro.core.placement import Placement
from repro.exceptions import PlacementError

if TYPE_CHECKING:
    from repro.core.replication import ReplicatedPlacement
    from repro.resilience.faults import ClusterView

NodeId = Hashable
ObjectId = Hashable
Operation = Sequence[ObjectId]


@dataclass(frozen=True)
class RepairOutcome:
    """What an incremental repair did and bought.

    Attributes:
        plan: The executable migration plan (one move per lost object,
            sourced at its failed node).
        placement: The repaired placement (nothing on failed nodes).
        failed_nodes: The failure set repaired around, sorted.
        lost_objects: Objects that had to be re-placed, sorted.
        availability_before: Operation availability of the broken
            placement under the failure set.
        availability_after: Same measure for the repaired placement.
    """

    plan: MigrationPlan
    placement: Placement
    failed_nodes: tuple[NodeId, ...]
    lost_objects: tuple[ObjectId, ...]
    availability_before: float
    availability_after: float

    @property
    def restored(self) -> float:
        """Availability gained by the repair."""
        return self.availability_after - self.availability_before

    def to_dict(self) -> dict:
        """JSON-ready summary (plan details reduced to totals)."""
        return {
            "failed_nodes": [str(n) for n in self.failed_nodes],
            "lost_objects": [str(o) for o in self.lost_objects],
            "moves": self.plan.num_moves,
            "bytes_moved": float(self.plan.bytes_moved),
            "cost_after": float(self.plan.cost_after),
            "availability_before": float(self.availability_before),
            "availability_after": float(self.availability_after),
        }


def replace_lost_objects(
    placement: Placement,
    failed: Iterable[NodeId],
    operations: Iterable[Operation] = (),
    capacity_tolerance: float = 0.05,
) -> RepairOutcome:
    """Re-place every object stranded on failed nodes.

    Lost objects are handled largest-first; each goes to the surviving
    node where it restores the most correlation weight toward already
    (re-)placed neighbors, subject to remaining capacity with
    ``capacity_tolerance`` slack.  When nothing fits, the least-loaded
    surviving node takes the object anyway — repair never strands data
    to preserve a capacity preference.

    Args:
        placement: The single-copy placement at failure time.
        failed: Node ids that are down (validated against the problem).
        operations: Optional trace used for the availability numbers in
            the outcome.
        capacity_tolerance: Relative slack when judging whether a
            candidate node has room.

    Returns:
        A :class:`RepairOutcome`; its plan is empty when nothing was
        lost.

    Raises:
        PlacementError: If every node failed (no surviving capacity) or
            a failed id is unknown.
    """
    problem = placement.problem
    failed_set = {node for node in failed}
    failed_idx = {problem.node_index(node) for node in failed_set}
    survivors = [k for k in range(problem.num_nodes) if k not in failed_idx]
    if not failed_idx:
        return RepairOutcome(
            plan=diff_placements(placement, placement),
            placement=placement,
            failed_nodes=(),
            lost_objects=(),
            availability_before=1.0,
            availability_after=1.0,
        )
    if not survivors:
        raise PlacementError("every node failed; nothing to repair onto")

    operations = [tuple(op) for op in operations]
    before = fail_nodes(placement, failed_set, operations)

    assignment = placement.assignment.copy()
    lost = sorted(
        (i for i in range(problem.num_objects) if int(assignment[i]) in failed_idx),
        key=lambda i: (-problem.sizes[i], repr(problem.object_ids[i])),
    )

    loads = np.zeros(problem.num_nodes)
    for i in range(problem.num_objects):
        if int(assignment[i]) not in failed_idx:
            loads[assignment[i]] += problem.sizes[i]

    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(problem.num_objects)]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    pending = set(lost)
    with obs.span("repair", lost=len(lost), failed=len(failed_idx)):
        for i in lost:
            gains = {k: 0.0 for k in survivors}
            for neighbor, weight in adjacency[i]:
                if neighbor in pending:
                    continue  # still stranded; contributes nowhere yet
                where = int(assignment[neighbor])
                if where in gains:
                    gains[where] += weight
            fits = [
                k
                for k in survivors
                if loads[k] + problem.sizes[i]
                <= problem.capacities[k] * (1.0 + capacity_tolerance) + 1e-9
            ]
            pool = fits or survivors
            # Most restored locality wins; ties go to the emptier node.
            best = max(pool, key=lambda k: (gains[k], -loads[k], -k))
            assignment[i] = best
            loads[best] += problem.sizes[i]
            pending.discard(i)

    repaired = Placement(problem, assignment)
    plan = diff_placements(placement, repaired)
    after = fail_nodes(repaired, failed_set, operations)
    obs.counter("repair.objects_replaced").inc(len(lost))
    obs.histogram("repair.bytes").observe(plan.bytes_moved)

    return RepairOutcome(
        plan=plan,
        placement=repaired,
        failed_nodes=tuple(sorted(failed_set, key=repr)),
        lost_objects=tuple(problem.object_ids[i] for i in lost),
        availability_before=before.operation_availability,
        availability_after=after.operation_availability,
    )


@dataclass(frozen=True)
class ReplicaRepairOutcome:
    """What a re-replication pass did and bought.

    Attributes:
        placement: The repaired :class:`ReplicatedPlacement` (every
            repairable copy back on a live node).
        moves: Copies re-created on new nodes.
        bytes_moved: Total re-replication traffic (one object size per
            re-created copy, modelling restore from a surviving copy or
            re-ingest).
        repaired_objects: Objects that had at least one copy
            re-created, sorted by object id.
        lost_objects: Objects that had *no* live copy when repair
            started — actual data loss; their copies are re-created
            anyway (modelling re-ingest from an upstream source).
        unrepaired_copies: Down copies that could not be re-placed
            (fewer live nodes than the replication factor).
        availability_before: Operation availability of the broken
            replicated placement under the view.
        availability_after: Same measure after re-replication.
    """

    placement: "ReplicatedPlacement"
    moves: int
    bytes_moved: float
    repaired_objects: tuple[ObjectId, ...]
    lost_objects: tuple[ObjectId, ...]
    unrepaired_copies: int
    availability_before: float
    availability_after: float

    @property
    def restored(self) -> float:
        """Availability gained by the repair."""
        return self.availability_after - self.availability_before

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "moves": self.moves,
            "bytes_moved": float(self.bytes_moved),
            "repaired_objects": [str(o) for o in self.repaired_objects],
            "lost_objects": [str(o) for o in self.lost_objects],
            "unrepaired_copies": self.unrepaired_copies,
            "availability_before": float(self.availability_before),
            "availability_after": float(self.availability_after),
        }


def re_replicate(
    replicated: "ReplicatedPlacement",
    view: "ClusterView",
    operations: Iterable[Operation] = (),
    capacity_tolerance: float = 0.05,
) -> ReplicaRepairOutcome:
    """Re-create every replica stranded on a down node.

    Objects are handled largest-first.  Each down copy is re-created on
    a live node in the cheapest *valid* failure domain — a domain (at
    the placement's spread level) holding no other copy of the object —
    preferring the node that restores the most still-split pair weight
    toward live partner copies, then the least-loaded.  When no live
    node in a fresh domain exists (e.g. a whole zone is down), the
    spread constraint is relaxed to distinct live nodes rather than
    leaving the object under-replicated; when even distinct live nodes
    run out, the copy stays unrepaired and is counted.

    Args:
        replicated: The replicated placement at fault time.
        view: Cluster health (``view.down`` are the dead node indices).
        operations: Optional trace used for the availability numbers.
        capacity_tolerance: Relative slack when judging whether a
            candidate node has room.

    Returns:
        A :class:`ReplicaRepairOutcome`; ``moves == 0`` when no copy
        was on a down node.

    Raises:
        PlacementError: When every node is down.
    """
    from repro.core.replication import ReplicatedPlacement
    from repro.resilience.degraded import mode_stats

    problem = replicated.problem
    down = set(view.down)
    live = [k for k in range(problem.num_nodes) if k not in down]
    if not live:
        raise PlacementError("every node failed; nothing to re-replicate onto")

    if replicated.topology is None:
        from repro.cluster.topology import Topology

        topology = Topology.flat(problem.num_nodes)
    else:
        topology = replicated.topology
    ids = topology.domain_ids(replicated.spread)

    before = mode_stats(replicated, view, list(operations))
    assignment = replicated.assignment.copy()
    copies: list[set[int]] = [set(int(k) for k in row) for row in assignment]
    lost = tuple(
        problem.object_ids[i]
        for i in range(problem.num_objects)
        if not (copies[i] - down)
    )

    loads = np.zeros(problem.num_nodes)
    for i in range(problem.num_objects):
        for k in copies[i]:
            if k not in down:
                loads[k] += problem.sizes[i]

    adjacency: list[list[tuple[int, float]]] = [
        [] for _ in range(problem.num_objects)
    ]
    for (i, j), weight in zip(problem.pair_index, problem.pair_weights):
        if weight > 0:
            adjacency[int(i)].append((int(j), float(weight)))
            adjacency[int(j)].append((int(i), float(weight)))

    order = sorted(
        range(problem.num_objects),
        key=lambda i: (-problem.sizes[i], repr(problem.object_ids[i])),
    )
    moves = 0
    bytes_moved = 0.0
    unrepaired = 0
    repaired: list[int] = []
    with obs.span("repair.replicas", down=len(down)):
        for i in order:
            size = problem.sizes[i]
            for r in range(assignment.shape[1]):
                if int(assignment[i, r]) not in down:
                    continue
                held = copies[i] - {int(assignment[i, r])}
                used_domains = {int(ids[k]) for k in held if k not in down}
                used_domains |= {int(ids[k]) for k in held & down}
                fresh = [
                    k
                    for k in live
                    if int(ids[k]) not in used_domains and k not in held
                ]
                candidates = fresh or [k for k in live if k not in held]
                if not candidates:
                    unrepaired += 1
                    continue
                gains = {k: 0.0 for k in candidates}
                for j, weight in adjacency[i]:
                    if copies[i] & copies[j] - down:
                        continue  # pair already co-resident and live
                    for k in copies[j] - down:
                        if k in gains:
                            gains[k] += weight
                fits = [
                    k
                    for k in candidates
                    if loads[k] + size
                    <= problem.capacities[k] * (1.0 + capacity_tolerance) + 1e-9
                ]
                pool = fits or candidates
                best = max(pool, key=lambda k: (gains[k], -loads[k], -k))
                copies[i].discard(int(assignment[i, r]))
                assignment[i, r] = best
                copies[i].add(best)
                loads[best] += size
                moves += 1
                bytes_moved += float(size)
                if i not in repaired:
                    repaired.append(i)

    # A domain-wide outage may have forced copies into shared domains;
    # relax the spread one level at a time (zone -> rack -> node) and
    # keep the strictest invariant the repaired layout still satisfies.
    levels = ["zone", "rack", "node"]
    start = levels.index(replicated.spread) if replicated.spread in levels else 2
    placement = None
    for level in levels[start:]:
        try:
            placement = ReplicatedPlacement(
                problem, assignment, topology=replicated.topology, spread=level
            )
            break
        except PlacementError:
            continue
    if placement is None:
        placement = ReplicatedPlacement(
            problem, assignment, topology=replicated.topology, spread="node"
        )
    after = mode_stats(placement, view, list(operations))
    obs.counter("repair.replicas_recreated").inc(moves)
    obs.record(
        "rep.repair",
        moves=moves,
        bytes_moved=round(bytes_moved, 9),
        lost_objects=len(lost),
        unrepaired_copies=unrepaired,
    )

    return ReplicaRepairOutcome(
        placement=placement,
        moves=moves,
        bytes_moved=bytes_moved,
        repaired_objects=tuple(
            sorted((problem.object_ids[i] for i in repaired), key=repr)
        ),
        lost_objects=lost,
        unrepaired_copies=unrepaired,
        availability_before=before.operation_availability,
        availability_after=after.operation_availability,
    )
