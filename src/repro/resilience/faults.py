"""Deterministic fault injection: schedules, state, and epochs.

The unit of chaos is a :class:`FaultEvent` — a crash, recovery,
slowdown, or network partition pinned to a *virtual* time, measured in
trace-operation indices rather than wall-clock seconds so that a run
is reproducible bit-for-bit from its seed.  A :class:`FaultSchedule`
is an ordered list of events; :meth:`FaultSchedule.random` draws one
deterministically from a seed, and :meth:`FaultSchedule.epochs` slices
a trace horizon into the maximal intervals over which cluster health
is constant.

:class:`FaultState` folds events into the current health picture and
:class:`ClusterView` is its immutable snapshot — the object the
degraded-serving analytics and the repair planner consume.  Every
injected event is counted (``faults.injected``, ``faults.<kind>``) and
recorded as a span attribute when tracing is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro import obs

CRASH = "crash"
RECOVER = "recover"
SLOW = "slow"
FAST = "fast"
PARTITION = "partition"
HEAL = "heal"
CRASH_DOMAIN = "crash_domain"
HEAL_DOMAIN = "heal_domain"

FAULT_KINDS = (
    CRASH,
    RECOVER,
    SLOW,
    FAST,
    PARTITION,
    HEAL,
    CRASH_DOMAIN,
    HEAL_DOMAIN,
)


@dataclass(frozen=True)
class FaultEvent:
    """One health transition at a virtual time.

    Attributes:
        time: Trace-operation index at which the event fires (events at
            time ``t`` apply before operation ``t`` executes).
        kind: One of :data:`FAULT_KINDS` — ``crash`` / ``recover`` take
            nodes down / bring them back, ``slow`` / ``fast`` mark and
            unmark stragglers, ``partition`` isolates ``nodes`` from
            the rest of the cluster, ``heal`` removes the partition.
            ``crash_domain`` / ``heal_domain`` are the correlated
            variants: every node of one failure domain (a rack losing
            power, a zone dropping out) goes down or comes back
            together.
        nodes: Node *indices* the event applies to (empty for
            ``heal``).
        domain: Failure-domain label (``"rack:1"``, ``"zone:0"``) for
            domain-correlated events; empty for plain node events.  A
            ``partition`` may also carry a domain label when one side
            of the split is a whole zone.
    """

    time: int
    kind: str
    nodes: tuple[int, ...] = ()
    domain: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time must be nonnegative")
        object.__setattr__(
            self, "nodes", tuple(int(k) for k in self.nodes)
        )
        if self.kind in (CRASH_DOMAIN, HEAL_DOMAIN):
            if not self.domain:
                raise ValueError(f"{self.kind} events need a domain label")
            if not self.nodes:
                raise ValueError(f"{self.kind} events need the domain's nodes")

    def to_dict(self) -> dict:
        """JSON-ready form (``domain`` key only for domain events)."""
        doc = {"time": self.time, "kind": self.kind, "nodes": list(self.nodes)}
        if self.domain:
            doc["domain"] = self.domain
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            time=int(data["time"]),
            kind=str(data["kind"]),
            nodes=tuple(int(k) for k in data.get("nodes", ())),
            domain=str(data.get("domain", "")),
        )


@dataclass(frozen=True)
class ClusterView:
    """Immutable snapshot of cluster health.

    Attributes:
        num_nodes: Total node count.
        down: Indices of crashed nodes.
        slow: Indices of degraded-but-alive nodes.
        isolated: One side of an active network partition (empty when
            the network is whole).  Isolated nodes are alive unless
            also ``down``; they just cannot talk to the other side.
        down_domains: Labels of failure domains currently crashed as a
            unit (``crash_domain`` without a matching ``heal_domain``);
            their nodes are included in ``down``.
    """

    num_nodes: int
    down: frozenset[int] = frozenset()
    slow: frozenset[int] = frozenset()
    isolated: frozenset[int] = frozenset()
    down_domains: frozenset[str] = frozenset()

    @property
    def healthy(self) -> bool:
        """Whether nothing at all is wrong."""
        return not (self.down or self.slow or self.isolated)

    @property
    def up(self) -> frozenset[int]:
        """Indices of non-crashed nodes."""
        return frozenset(range(self.num_nodes)) - self.down

    def groups(self) -> tuple[frozenset[int], ...]:
        """Mutually reachable sets of *live* nodes.

        With no partition this is one group (all live nodes); with a
        partition, the live part of each side.  Empty sides are
        dropped.
        """
        alive = self.up
        if not self.isolated:
            return (alive,) if alive else ()
        inside = frozenset(self.isolated) & alive
        outside = alive - self.isolated
        return tuple(g for g in (outside, inside) if g)

    def to_dict(self) -> dict:
        """JSON-ready form with sorted node lists."""
        doc = {
            "num_nodes": self.num_nodes,
            "down": sorted(self.down),
            "slow": sorted(self.slow),
            "isolated": sorted(self.isolated),
        }
        if self.down_domains:
            doc["down_domains"] = sorted(self.down_domains)
        return doc


class FaultState:
    """Mutable health tracker: folds events, snapshots views."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._down: set[int] = set()
        self._slow: set[int] = set()
        self._isolated: set[int] = set()
        self._down_domains: set[str] = set()

    def apply(self, event: FaultEvent) -> None:
        """Fold one event into the state (and count it)."""
        for k in event.nodes:
            if not 0 <= k < self.num_nodes:
                raise ValueError(f"event references unknown node index {k}")
        if event.kind == CRASH:
            self._down.update(event.nodes)
        elif event.kind == RECOVER:
            self._down.difference_update(event.nodes)
        elif event.kind == SLOW:
            self._slow.update(event.nodes)
        elif event.kind == FAST:
            self._slow.difference_update(event.nodes)
        elif event.kind == PARTITION:
            self._isolated = set(event.nodes)
        elif event.kind == HEAL:
            self._isolated.clear()
        elif event.kind == CRASH_DOMAIN:
            self._down.update(event.nodes)
            self._down_domains.add(event.domain)
        elif event.kind == HEAL_DOMAIN:
            self._down.difference_update(event.nodes)
            self._down_domains.discard(event.domain)
        obs.counter("faults.injected").inc()
        obs.counter(f"faults.{event.kind}").inc()

    def view(self) -> ClusterView:
        """The current health snapshot."""
        return ClusterView(
            num_nodes=self.num_nodes,
            down=frozenset(self._down),
            slow=frozenset(self._slow),
            isolated=frozenset(self._isolated),
            down_domains=frozenset(self._down_domains),
        )


@dataclass(frozen=True)
class Epoch:
    """A maximal interval of constant cluster health.

    Attributes:
        index: Position in the epoch sequence.
        start: First operation index covered (inclusive).
        end: One past the last operation index covered.
        events: Events that fired at ``start`` (empty for the first
            epoch of an initially healthy run).
        view: Cluster health throughout the interval.
    """

    index: int
    start: int
    end: int
    events: tuple[FaultEvent, ...]
    view: ClusterView


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated list of fault events.

    Attributes:
        num_nodes: Node count the events are indexed against.
        events: Events in nondecreasing time order.
    """

    num_nodes: int
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        times = [e.time for e in self.events]
        if times != sorted(times):
            raise ValueError("events must be sorted by time")
        for event in self.events:
            for k in event.nodes:
                if not 0 <= k < self.num_nodes:
                    raise ValueError(
                        f"event at t={event.time} references unknown node {k}"
                    )

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def random(
        cls,
        num_nodes: int,
        horizon: int,
        *,
        seed: int = 0,
        events: int = 6,
        max_down_fraction: float = 0.5,
    ) -> "FaultSchedule":
        """Draw a schedule deterministically from a seed.

        Event kinds are weighted toward crashes (the interesting case),
        recoveries follow crashes, and a partition appears only while
        none is active.  At most ``max_down_fraction`` of the nodes are
        ever down at once, so the cluster always retains surviving
        capacity to repair onto.

        Args:
            num_nodes: Cluster size.
            horizon: Trace length in operations; events land strictly
                inside ``(0, horizon)``.
            seed: Root seed; same seed, same schedule, always.
            events: Number of events to draw.
            max_down_fraction: Ceiling on simultaneously crashed nodes.
        """
        if horizon < 2:
            raise ValueError("horizon must be at least 2 operations")
        if events < 0:
            raise ValueError("events must be nonnegative")
        rng = np.random.default_rng(seed)
        max_down = max(1, int(max_down_fraction * num_nodes))
        count = min(events, horizon - 1)
        times = sorted(
            int(t) for t in rng.choice(np.arange(1, horizon), size=count, replace=False)
        )

        down: set[int] = set()
        slow: set[int] = set()
        partitioned = False
        drawn: list[FaultEvent] = []
        for t in times:
            up = sorted(set(range(num_nodes)) - down)
            choices: list[str] = []
            weights: list[float] = []
            if len(down) < max_down and len(up) > 1:
                choices.append(CRASH)
                weights.append(0.45)
            if down:
                choices.append(RECOVER)
                weights.append(0.25)
            if up:
                choices.append(SLOW if not slow else FAST)
                weights.append(0.15)
            if not partitioned and num_nodes >= 3:
                choices.append(PARTITION)
                weights.append(0.10)
            if partitioned:
                choices.append(HEAL)
                weights.append(0.05)
            if not choices:
                continue
            probs = np.asarray(weights) / sum(weights)
            kind = str(rng.choice(choices, p=probs))
            if kind == CRASH:
                node = int(rng.choice(up))
                down.add(node)
                drawn.append(FaultEvent(t, CRASH, (node,)))
            elif kind == RECOVER:
                node = int(rng.choice(sorted(down)))
                down.discard(node)
                drawn.append(FaultEvent(t, RECOVER, (node,)))
            elif kind == SLOW:
                node = int(rng.choice(up))
                slow.add(node)
                drawn.append(FaultEvent(t, SLOW, (node,)))
            elif kind == FAST:
                node = int(rng.choice(sorted(slow)))
                slow.discard(node)
                drawn.append(FaultEvent(t, FAST, (node,)))
            elif kind == PARTITION:
                side = max(1, num_nodes // 3)
                nodes = tuple(
                    int(k)
                    for k in sorted(
                        rng.choice(num_nodes, size=side, replace=False)
                    )
                )
                partitioned = True
                drawn.append(FaultEvent(t, PARTITION, nodes))
            else:  # HEAL
                partitioned = False
                drawn.append(FaultEvent(t, HEAL))
        return cls(num_nodes=num_nodes, events=tuple(drawn))

    @classmethod
    def random_domains(
        cls,
        topology,
        horizon: int,
        *,
        seed: int = 0,
        events: int = 6,
        max_down_fraction: float = 0.5,
    ) -> "FaultSchedule":
        """Draw a *domain-correlated* schedule deterministically.

        The failure unit is a whole rack or zone: ``crash_domain``
        events take every node of one domain down together (rack power
        loss, zone outage), ``heal_domain`` brings a crashed domain
        back, and an occasional ``partition`` isolates one zone from
        the rest of the network.  As with :meth:`random`, at most
        ``max_down_fraction`` of the nodes are ever down at once, so
        surviving capacity always exists to repair onto.

        Args:
            topology: :class:`~repro.cluster.topology.Topology` giving
                rack/zone membership of the node indices.
            horizon: Trace length in operations; events land strictly
                inside ``(0, horizon)``.
            seed: Root seed; same seed, same schedule, always.
            events: Number of events to draw.
            max_down_fraction: Ceiling on simultaneously crashed nodes.
        """
        if horizon < 2:
            raise ValueError("horizon must be at least 2 operations")
        if events < 0:
            raise ValueError("events must be nonnegative")
        num_nodes = topology.num_nodes
        rng = np.random.default_rng(seed)
        max_down = max(1, int(max_down_fraction * num_nodes))
        count = min(events, horizon - 1)
        times = sorted(
            int(t) for t in rng.choice(np.arange(1, horizon), size=count, replace=False)
        )

        down_domains: dict[str, tuple[int, ...]] = {}
        down: set[int] = set()
        partitioned = False
        drawn: list[FaultEvent] = []
        for t in times:
            crashable = [
                label
                for kind in ("rack", "zone")
                for label in topology.domain_labels(kind)
                if label not in down_domains
                and not (set(topology.nodes_of_domain(label)) & down)
                and len(down | set(topology.nodes_of_domain(label))) <= max_down
            ]
            choices: list[str] = []
            weights: list[float] = []
            if crashable:
                choices.append(CRASH_DOMAIN)
                weights.append(0.50)
            if down_domains:
                choices.append(HEAL_DOMAIN)
                weights.append(0.30)
            if not partitioned and topology.num_zones >= 2:
                choices.append(PARTITION)
                weights.append(0.15)
            if partitioned:
                choices.append(HEAL)
                weights.append(0.05)
            if not choices:
                continue
            probs = np.asarray(weights) / sum(weights)
            kind = str(rng.choice(choices, p=probs))
            if kind == CRASH_DOMAIN:
                label = str(rng.choice(crashable))
                nodes = topology.nodes_of_domain(label)
                down_domains[label] = nodes
                down.update(nodes)
                drawn.append(FaultEvent(t, CRASH_DOMAIN, nodes, domain=label))
            elif kind == HEAL_DOMAIN:
                label = str(rng.choice(sorted(down_domains)))
                nodes = down_domains.pop(label)
                down.difference_update(nodes)
                drawn.append(FaultEvent(t, HEAL_DOMAIN, nodes, domain=label))
            elif kind == PARTITION:
                zone = str(rng.choice(topology.domain_labels("zone")))
                nodes = topology.nodes_of_domain(zone)
                partitioned = True
                drawn.append(FaultEvent(t, PARTITION, nodes, domain=zone))
            else:  # HEAL
                partitioned = False
                drawn.append(FaultEvent(t, HEAL))
        return cls(num_nodes=num_nodes, events=tuple(drawn))

    def epochs(self, horizon: int) -> Iterator[Epoch]:
        """Slice ``[0, horizon)`` into constant-health intervals.

        Events beyond the horizon are ignored; events sharing a time
        apply together at the start of the epoch they open.  Empty
        intervals (two event times with no operations between them)
        are skipped, their events folding into the next epoch.
        """
        if horizon < 0:
            raise ValueError("horizon must be nonnegative")
        state = FaultState(self.num_nodes)
        relevant = [e for e in self.events if e.time < horizon]
        boundaries = sorted({0, horizon, *(e.time for e in relevant)})
        index = 0
        for start, end in zip(boundaries, boundaries[1:]):
            fired = tuple(e for e in relevant if e.time == start)
            for event in fired:
                state.apply(event)
            yield Epoch(
                index=index,
                start=start,
                end=end,
                events=fired,
                view=state.view(),
            )
            index += 1

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "num_nodes": self.num_nodes,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            num_nodes=int(data["num_nodes"]),
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", ())
            ),
        )
