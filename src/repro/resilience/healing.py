"""Self-healing planning: retries, circuit breakers, fallback chains.

Three composable defenses against a planning pipeline that can fail:

* :func:`retry_with_backoff` — re-run a transient operation a bounded
  number of times with exponentially growing (injectable) sleeps.
* :class:`CircuitBreaker` — after repeated failures of a dependency,
  stop calling it for a cooldown window (*open*), then let one probe
  through (*half-open*) before trusting it again (*closed*).  Keeps a
  flaky LP backend from stalling every plan with a doomed attempt.
* :func:`plan_with_fallbacks` — the ``"resilient"`` planner: try LPRR
  on the configured backend, then the dependency-free first-order
  backend (``lprr:fo``), then LPRR on the self-contained simplex,
  then greedy, then hash.  The first success wins; every attempt —
  successes, failures, and circuit-open skips — is recorded in
  ``PlanResult.diagnostics["fallback_chain"]`` so a degraded plan is
  never silent about how it was produced.

Metrics: ``retry.attempts``, ``circuit.opened`` / ``circuit.rejected``
/ ``circuit.closed``, ``planner.fallbacks`` and
``planner.fallback.exhausted``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, TypeVar

from repro import obs
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, PlanResult, plan
from repro.exceptions import CircuitOpenError

T = TypeVar("T")


# ----------------------------------------------------------------------
# Retry with backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient operation.

    Attributes:
        attempts: Total tries, including the first (must be >= 1).
        base_delay_s: Sleep before the first retry.
        multiplier: Backoff growth factor per retry.
        max_delay_s: Ceiling on any single sleep.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be nonnegative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        delay = self.base_delay_s
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay_s)
            delay *= self.multiplier


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    Args:
        fn: Zero-argument operation to run.
        policy: Retry budget and backoff shape (default
            :class:`RetryPolicy`).
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        sleep: Sleep function — injectable so tests run instantly.
        on_retry: Optional hook called as ``on_retry(attempt, exc)``
            before each sleep (attempt is 1-based).

    Returns:
        Whatever ``fn`` returns on its first success.

    Raises:
        The last exception, when every attempt failed.
    """
    policy = policy or RetryPolicy()
    delays = list(policy.delays())
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == policy.attempts - 1:
                break
            obs.counter("retry.attempts").inc()
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            if delays[attempt] > 0:
                sleep(delays[attempt])
    assert last is not None
    raise last


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Classic three-state breaker around a failure-prone dependency.

    *closed* (normal): calls pass through; consecutive failures are
    counted.  *open*: after ``failure_threshold`` consecutive failures,
    calls are rejected without running for ``reset_after_s`` seconds.
    *half-open*: once the cooldown elapses, exactly one probe call is
    allowed; success closes the breaker, failure re-opens it.

    Args:
        name: Label used in metrics and error messages.
        failure_threshold: Consecutive failures that trip the breaker.
        reset_after_s: Cooldown before a half-open probe is allowed.
        clock: Monotonic time source — injectable so tests control it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_after_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, advancing *open* to *half-open* on cooldown."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        return self.state != self.OPEN

    def record_success(self) -> None:
        """Note a successful call; closes the breaker."""
        if self._state != self.CLOSED:
            obs.counter("circuit.closed").inc()
            obs.record("circuit.closed", circuit=self.name)
        self._failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker open."""
        self._failures += 1
        if self._state == self.HALF_OPEN or self._failures >= self.failure_threshold:
            if self._state != self.OPEN:
                obs.counter("circuit.opened").inc()
                obs.record(
                    "circuit.opened",
                    circuit=self.name,
                    failures=self._failures,
                )
            self._state = self.OPEN
            self._opened_at = self._clock()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker.

        Raises:
            CircuitOpenError: When the breaker is open.
        """
        if not self.allow():
            obs.counter("circuit.rejected").inc()
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"({self._failures} consecutive failures)"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


# Shared per-backend breakers used by the resilient planner: a backend
# that keeps failing is skipped for a cooldown instead of being probed
# by every plan.
_BACKEND_BREAKERS: dict[str, CircuitBreaker] = {}


def backend_breaker(backend: str) -> CircuitBreaker:
    """The process-wide breaker guarding one LP backend."""
    if backend not in _BACKEND_BREAKERS:
        _BACKEND_BREAKERS[backend] = CircuitBreaker(f"lp.{backend}")
    return _BACKEND_BREAKERS[backend]


def reset_backend_breakers() -> None:
    """Forget all backend breaker state (test isolation hook)."""
    _BACKEND_BREAKERS.clear()


# ----------------------------------------------------------------------
# Fallback-chain planning
# ----------------------------------------------------------------------
# Beyond this many LP variables the dense simplex fallback would be
# slower than useful; the chain skips straight to greedy.
SIMPLEX_FALLBACK_MAX_VARIABLES = 4000


@dataclass(frozen=True)
class FallbackStep:
    """One attempt in the fallback chain.

    Attributes:
        step: Chain label, e.g. ``"lprr:auto"`` or ``"greedy"``.
        outcome: ``"ok"``, ``"failed"``, or ``"skipped"``.
        detail: Error message for failures, reason for skips, empty for
            successes.
    """

    step: str
    outcome: str
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form for ``PlanResult.diagnostics``."""
        return {"step": self.step, "outcome": self.outcome, "detail": self.detail}


def _lp_variables(problem: PlacementProblem, config: PlanConfig) -> int:
    """Rough LP size: (objects + pairs) * nodes, after scoping."""
    objects = problem.num_objects
    limit = config.scope_limit(problem)
    if limit is not None:
        objects = min(objects, limit)
    return (objects + problem.num_pairs) * problem.num_nodes


def _coarse_lp_variables(problem: PlacementProblem, config: PlanConfig) -> int:
    """Rough LP size of the pg planner's coarse problem."""
    spec = config.scope_spec
    coarse = min(problem.num_objects, spec.groups + spec.important)
    pairs = min(problem.num_pairs, coarse * (coarse - 1) // 2)
    return (coarse + pairs) * problem.num_nodes


def plan_with_fallbacks(
    problem: PlacementProblem,
    *,
    config: PlanConfig | None = None,
    breakers: bool = True,
) -> PlanResult:
    """Plan with graceful degradation instead of failure.

    The chain, in order: LPRR on the configured backend; ``lprr:fo``
    (the pure-NumPy first-order backend, skipped when the configured
    backend already *is* ``fo``); LPRR on the self-contained
    ``simplex`` backend (skipped when the configured backend already
    *is* simplex, or when the LP is too large for the dense solver);
    ``stream:greedy``; ``greedy``; ``hash``.  Placement-group scopes
    (``PlanScope.pg``) swap the LPRR steps for ``lprr:pg`` on the same
    backends, sized against the coarse problem.  Replicated configs
    (``config.replicas > 1``) swap the whole chain for the
    failure-domain-aware one: ``lprr:rep:<backend>`` →
    ``lprr:rep:simplex`` → ``rep:greedy`` (spread-greedy) →
    ``rep:hash`` (spread-hash) — every step honors the domain spread
    constraints, so even the deepest fallback never stacks two copies
    in one rack.  The first planner to succeed supplies the placement;
    the full attempt log lands in ``diagnostics["fallback_chain"]``
    and the winning planner's name in ``diagnostics["delegate"]``.

    LP attempts run under per-backend circuit breakers (see
    :func:`backend_breaker`), so a backend that has failed repeatedly
    is skipped — and marked ``"skipped"`` in the chain — until its
    cooldown passes.

    Args:
        problem: The CCA instance to place.
        config: Planning knobs; LP time and iteration limits apply to
            the LPRR attempts.
        breakers: Disable to bypass the shared circuit breakers
            (attempts then always run).

    Raises:
        ReproError: Only if *every* step in the chain fails, which
            requires even ``hash`` placement to fail.
    """
    config = config or PlanConfig()
    chain: list[FallbackStep] = []

    def attempt(step: str, backend: str | None, run: Callable[[], PlanResult]):
        guarded = run
        if backend is not None and breakers:
            breaker = backend_breaker(backend)
            if not breaker.allow():
                chain.append(
                    FallbackStep(step, "skipped", "circuit open")
                )
                obs.record(
                    "plan.attempt", step=step, outcome="skipped",
                    detail="circuit open",
                )
                return None
            guarded = lambda: breaker.call(run)  # noqa: E731
        try:
            result = guarded()
        except Exception as exc:  # noqa: BLE001 — the chain is the handler
            chain.append(
                FallbackStep(step, "failed", f"{type(exc).__name__}: {exc}")
            )
            obs.counter("planner.fallbacks").inc()
            obs.record(
                "plan.attempt", step=step, outcome="failed",
                detail=f"{type(exc).__name__}: {exc}",
            )
            return None
        chain.append(FallbackStep(step, "ok"))
        obs.record("plan.attempt", step=step, outcome="ok", detail="")
        return result

    with obs.span("plan.resilient", objects=problem.num_objects) as span:
        if config.replicas > 1:
            # Replicated configs plan through the domain-aware chain;
            # every step enforces the same replica spread constraints.
            steps = [
                (
                    f"lprr:rep:{config.backend}",
                    config.backend,
                    lambda: plan(problem, "lprr:rep", config),
                )
            ]
            if config.backend != "simplex":
                if _lp_variables(problem, config) <= SIMPLEX_FALLBACK_MAX_VARIABLES:
                    steps.append(
                        (
                            "lprr:rep:simplex",
                            "simplex",
                            lambda: plan(
                                problem,
                                "lprr:rep",
                                config.with_options(backend="simplex"),
                            ),
                        )
                    )
                else:
                    chain.append(
                        FallbackStep(
                            "lprr:rep:simplex",
                            "skipped",
                            "problem too large for dense simplex",
                        )
                    )
            steps.append(
                ("rep:greedy", None, lambda: plan(problem, "rep:greedy", config))
            )
            steps.append(
                ("rep:hash", None, lambda: plan(problem, "rep:hash", config))
            )
        elif config.scope_spec.kind == "pg":
            # Placement-group scopes plan through lprr:pg; the chain's
            # simplex retry targets the same coarse problem.
            steps: list[tuple[str, str | None, Callable[[], PlanResult]]] = [
                (
                    f"lprr:pg:{config.backend}",
                    config.backend,
                    lambda: plan(problem, "lprr:pg", config),
                )
            ]
            if config.backend != "simplex":
                if (
                    _coarse_lp_variables(problem, config)
                    <= SIMPLEX_FALLBACK_MAX_VARIABLES
                ):
                    steps.append(
                        (
                            "lprr:pg:simplex",
                            "simplex",
                            lambda: plan(
                                problem,
                                "lprr:pg",
                                config.with_options(backend="simplex"),
                            ),
                        )
                    )
                else:
                    chain.append(
                        FallbackStep(
                            "lprr:pg:simplex",
                            "skipped",
                            "coarse problem too large for dense simplex",
                        )
                    )
        else:
            steps = [
                (
                    f"lprr:{config.backend}",
                    config.backend,
                    lambda: plan(problem, "lprr", config),
                )
            ]
            if config.backend != "fo":
                # The first-order backend has no library dependency and
                # no LP-size ceiling, so it backstops every exact
                # backend before the dense simplex retry.
                steps.append(
                    (
                        "lprr:fo",
                        "fo",
                        lambda: plan(problem, "lprr:fo", config),
                    )
                )
            if config.backend != "simplex":
                if _lp_variables(problem, config) <= SIMPLEX_FALLBACK_MAX_VARIABLES:
                    steps.append(
                        (
                            "lprr:simplex",
                            "simplex",
                            lambda: plan(
                                problem,
                                "lprr",
                                config.with_options(backend="simplex"),
                            ),
                        )
                    )
                else:
                    chain.append(
                        FallbackStep(
                            "lprr:simplex",
                            "skipped",
                            "problem too large for dense simplex",
                        )
                    )
        if config.replicas <= 1:
            # The streaming tier sits below LPRR: one pass over the pair
            # list, no LP, so it survives backend outages that take both
            # LP steps down while still being correlation-aware (unlike
            # greedy's pair scan it also balances load as it goes).
            steps.append(
                (
                    "stream:greedy",
                    None,
                    lambda: plan(problem, "stream:greedy", config),
                )
            )
            steps.append(("greedy", None, lambda: plan(problem, "greedy", config)))
            steps.append(("hash", None, lambda: plan(problem, "hash", config)))

        result: PlanResult | None = None
        for step, backend, run in steps:
            if result is None:
                result = attempt(step, backend, run)
            else:
                chain.append(FallbackStep(step, "skipped", "already planned"))
        if result is None:
            obs.counter("planner.fallback.exhausted").inc()
            obs.record(
                "plan.fallback",
                delegate=None,
                degraded=True,
                chain=[s.to_dict() for s in chain],
            )
            raise chain_error(chain)
        span.set(delegate=result.planner, attempts=len(chain))
        obs.record(
            "plan.fallback",
            delegate=result.planner,
            degraded=result.planner not in ("lprr", "lprr:fo", "lprr:pg", "lprr:rep"),
            chain=[s.to_dict() for s in chain],
        )

    diagnostics: dict[str, Any] = {
        **result.diagnostics,
        "delegate": result.planner,
        "fallback_chain": [s.to_dict() for s in chain],
        "degraded": result.planner not in ("lprr", "lprr:fo", "lprr:pg", "lprr:rep"),
    }
    return replace(result, planner="resilient", diagnostics=diagnostics)


def chain_error(chain: list[FallbackStep]) -> Exception:
    """The terminal error when every fallback step failed."""
    from repro.exceptions import ReproError

    summary = "; ".join(
        f"{s.step}: {s.outcome}" + (f" ({s.detail})" if s.detail else "")
        for s in chain
    )
    return ReproError(f"every planner in the fallback chain failed — {summary}")
