"""Command-line interface.

Subcommands::

    repro gen-queries  — generate a synthetic query log file
    repro place        — compute a placement from a query log
    repro evaluate     — replay a query log against a placement
    repro experiment   — regenerate a paper figure (fig2/fig5/fig6/fig7/all)
    repro chaos        — seeded fault-injection run with a degraded report
    repro online       — streaming control loop over a drifting query stream
    repro pg           — plan a synthetic scenario through placement groups
    repro bench        — fast-vs-legacy benchmark suite (tracked baseline)
    repro trace        — analyze a journal or metrics artifact from a run

Instrumented subcommands accept ``--metrics-out PATH`` (machine-readable
run report), ``--trace`` (print the span tree), ``--trace-out PATH``
(Chrome/Perfetto ``trace_event`` JSON), and ``--journal PATH``
(deterministic flight-recorder JSONL, analyzed by ``repro trace``); see
``docs/OBSERVABILITY.md``.

``place`` and ``evaluate`` plan through the Planner registry and accept
``--jobs N`` (deterministic parallel engine; same placement for every
N) and ``--cache-dir DIR`` / ``--no-cache`` (content-addressed plan
cache — a warm replan skips the LP solve); see ``docs/PARALLELISM.md``.

Run ``repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro import obs
from repro.core.strategies import PlanConfig, PlanScope, available_planners, plan
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.search.engine import (
    DistributedSearchEngine,
    EvaluationSummary,
    build_placement_problem,
)
from repro.search.index import InvertedIndex
from repro.search.query import QueryLog
from repro.workloads.corpus_gen import generate_corpus
from repro.workloads.query_gen import QueryWorkloadModel


def _build_study(args: argparse.Namespace) -> CaseStudy:
    config = CaseStudyConfig(
        num_documents=args.documents,
        vocabulary_size=args.vocabulary,
        num_queries=args.queries,
        seed=args.seed,
    )
    planning = PlanConfig(
        jobs=getattr(args, "jobs", None),
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
    )
    return CaseStudy.build(config, planning=planning)


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--documents", type=int, default=1500, help="corpus size")
    parser.add_argument("--vocabulary", type=int, default=4000, help="vocabulary size")
    parser.add_argument("--queries", type=int, default=30000, help="trace length")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")


def _add_planner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "parallel engine: round (and decompose) on N worker processes; "
            "1 runs the same engine inline, negative means one worker per "
            "CPU, omit for the legacy serial engine"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed plan cache; a warm replan skips the LP solve",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (plan from scratch)",
    )


def _scope_from_args(args: argparse.Namespace) -> int | PlanScope | None:
    """Resolve ``--scope`` / ``--pg-groups`` / ``--pg-important`` to a scope.

    ``--pg-groups K`` switches planning to placement-group indirection
    (``PlanScope.pg``); otherwise the plain integer ``--scope`` keeps
    its historical exact-subproblem meaning.
    """
    groups = getattr(args, "pg_groups", None)
    if groups is not None:
        return PlanScope.pg(groups=groups, important=getattr(args, "pg_important", 0))
    return args.scope


def _add_pg_scope_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pg-groups",
        type=int,
        default=None,
        metavar="K",
        help=(
            "plan through K placement groups instead of per-object "
            "(overrides --scope; see docs/SCALE.md)"
        ),
    )
    parser.add_argument(
        "--pg-important",
        type=int,
        default=0,
        metavar="M",
        help="with --pg-groups, keep the top-M objects exact",
    )


def _plan_config(args: argparse.Namespace) -> PlanConfig:
    return PlanConfig(
        scope=_scope_from_args(args),
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics/span report for this run to PATH",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "prometheus"),
        default="json",
        help="report format for --metrics-out (default: json)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree of this run to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the span forest as Chrome trace_event JSON "
            "(loads in chrome://tracing and ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "record control-loop decisions to a flight-recorder journal "
            "(JSONL; byte-identical across same-seed runs)"
        ),
    )


def cmd_gen_queries(args: argparse.Namespace) -> int:
    """Generate a synthetic query log and write it to a file."""
    vocabulary = [f"w{i:06d}" for i in range(args.vocabulary)]
    model = QueryWorkloadModel(vocabulary, num_topics=args.topics, seed=args.seed)
    log = model.generate(args.count, rng=args.seed)
    log.save(args.output)
    print(f"wrote {len(log)} queries (avg {log.average_keywords():.2f} keywords) to {args.output}")
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    """Compute a placement for the keywords of a query log."""
    log = QueryLog.load(args.log)
    corpus = generate_corpus(args.documents, args.vocabulary, seed=args.seed)
    index = InvertedIndex.from_corpus(corpus)
    problem = build_placement_problem(index, log, args.nodes, min_support=args.min_support)

    result = plan(problem, args.strategy, _plan_config(args))
    placement = result.placement

    mapping = {str(obj): int(node) for obj, node in placement.to_mapping().items()}
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(mapping, fh, indent=0, sort_keys=True)
    print(
        f"placed {problem.num_objects} keyword indices on {args.nodes} nodes "
        f"with {args.strategy}; model cost {placement.communication_cost():.4g}; "
        f"wrote {args.output}"
    )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Replay a query log against a stored (or freshly planned) placement.

    With a placement file, replays the log against it.  Without one,
    plans a placement inline with ``--strategy`` first — the end-to-end
    path whose trace shows the nested lp/rounding/replay phases.
    """
    log = QueryLog.load(args.log)
    corpus = generate_corpus(args.documents, args.vocabulary, seed=args.seed)
    index = InvertedIndex.from_corpus(corpus)
    if args.placement is not None:
        with open(args.placement, encoding="utf-8") as fh:
            placement = {word: int(node) for word, node in json.load(fh).items()}
    else:
        problem = build_placement_problem(
            index, log, args.nodes, min_support=args.min_support
        )
        placement = plan(problem, args.strategy, _plan_config(args)).placement
    engine = DistributedSearchEngine(index, placement)
    stats = engine.execute_log(log)
    summary = EvaluationSummary.from_stats(stats)
    print(summary.render())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Skewness/stability analysis of a query-log file (Figure 2 style)."""
    from repro.analysis.skewness import pair_probability_curve, skew_ratio
    from repro.analysis.stability import stability_report
    from repro.core.correlation import cooccurrence_correlations
    from repro.workloads.adapters import load_aol_query_log, split_log_by_fraction

    if args.format == "aol":
        log = load_aol_query_log(args.log, max_queries=args.max_queries)
    else:
        log = QueryLog.load(args.log)
        if args.max_queries is not None:
            log = QueryLog(list(log)[: args.max_queries])
    if len(log) < 2:
        print("log too small to analyze")
        return 1

    period1, period2 = split_log_by_fraction(log, 0.5)
    corr1 = cooccurrence_correlations(period1.operations())
    corr2 = cooccurrence_correlations(period2.operations())
    _, probs = pair_probability_curve(corr1, top_k=args.top_pairs)
    supported = cooccurrence_correlations(
        period1.operations(), min_support=args.min_count
    )
    report = stability_report(supported, corr2, top_k=args.top_pairs)

    print(f"queries: {len(log)} (avg {log.average_keywords():.2f} keywords)")
    print(f"distinct keywords: {len(log.vocabulary())}")
    if probs:
        print(
            f"skewness: top pair is {skew_ratio(probs):.1f}x pair "
            f"#{len(probs)} (paper: 177x at rank 1000)"
        )
    print(
        f"stability: {report.unstable_fraction:.1%} of {len(report.pairs)} "
        f"well-supported pairs changed >2x between halves (paper: 1.2%)"
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate a paper figure."""
    # Imported here so the quick subcommands stay fast to start.
    from repro.experiments.fig2 import run_skewness_stability
    from repro.experiments.fig5 import run_dominance
    from repro.experiments.fig6 import ScopeSweepConfig, run_scope_sweep
    from repro.experiments.fig7 import NodeSweepConfig, run_node_sweep
    from repro.experiments.report import run_full_report

    study = _build_study(args)
    if args.figure == "all":
        report = run_full_report(
            study, node_counts=tuple(args.nodes or (10, 20, 40, 70, 100))
        )
        text = report.render()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"wrote report to {args.output}")
        else:
            print(text)
    elif args.figure == "fig2":
        print(run_skewness_stability(study).render())
    elif args.figure == "fig5":
        print(run_dominance(study).render())
    elif args.figure == "fig6":
        print(run_scope_sweep(study, ScopeSweepConfig()).render())
    elif args.figure == "fig7":
        config = NodeSweepConfig(node_counts=tuple(args.nodes or (10, 20, 40, 70, 100)))
        print(run_node_sweep(study, config).render())
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.figure)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault-injection scenario end to end.

    Builds a synthetic problem and trace, draws a fault schedule, plans
    through the requested planner (default: the ``resilient`` fallback
    chain), serves the trace across the fault epochs with incremental
    repair, and prints the availability comparison.  The full
    :class:`~repro.resilience.degraded.DegradedReport` — a pure
    function of the seed and sizes, byte-identical across runs — goes
    to ``--out``.

    With ``--topology zones:Z,racks:K`` the run switches to domain
    mode: both sides are replicated under the same failure-domain
    spread constraints (optimized ``lprr:rep`` chain vs domain-aware
    hash), faults arrive as domain-correlated crash/heal events, and
    the exit code is nonzero when any object loses *all* replicas in
    some epoch (``data_loss``).
    """
    from repro.resilience import (
        ChaosConfig,
        FaultSchedule,
        run_chaos,
        synthetic_scenario,
    )

    topology = None
    if args.topology:
        from repro.cluster import parse_topology_spec

        topology = parse_topology_spec(args.topology, args.nodes)

    # Domain mode places R copies of every object, so the synthetic
    # capacity headroom must scale with the replica count to stay
    # feasible; legacy runs keep the historical factor (and their
    # byte-stable reports).
    capacity_factor = 2.0 * args.replicas if topology is not None else 2.0
    problem, operations = synthetic_scenario(
        num_objects=args.objects,
        num_nodes=args.nodes,
        num_operations=args.operations,
        seed=args.seed,
        capacity_factor=capacity_factor,
    )
    if topology is not None:
        schedule = FaultSchedule.random_domains(
            topology, len(operations), seed=args.seed, events=args.events
        )
    else:
        schedule = FaultSchedule.random(
            problem.num_nodes, len(operations), seed=args.seed, events=args.events
        )
    config = ChaosConfig(
        replicas=args.replicas,
        planner=args.strategy,
        plan_config=PlanConfig(scope=_scope_from_args(args), seed=args.seed),
        mode=args.mode,
        repair=not args.no_repair,
        topology=topology,
    )
    report = run_chaos(problem, operations, schedule, config, seed=args.seed)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote degraded report to {args.out}", file=sys.stderr)
    print(report.render())
    if report.data_loss and topology is not None:
        # Domain mode makes a durability promise (spread replicas);
        # losing every copy of an object breaks it loudly.  Legacy runs
        # keep exit 0 — their replicated side is an illustrative
        # comparison, and the flag still lands in the JSON report.
        print("chaos: DATA LOSS — an object lost all replicas", file=sys.stderr)
        return 1
    return 0


def cmd_online(args: argparse.Namespace) -> int:
    """Run the streaming control loop over a synthetic drifting stream.

    Generates a diurnal query stream whose topic popularity shifts
    halfway through, mines pair correlations with the memory-bounded
    sketch estimator, and drives
    :class:`~repro.online.controller.OnlinePlanner`: drift-triggered
    replans through the resilient fallback chain, migrations under a
    per-period byte budget.  The :class:`~repro.online.OnlineReport` —
    a pure function of the seeds, byte-identical across runs — goes to
    ``--out``.
    """
    from repro.online import DriftThresholds, OnlineConfig, OnlinePlanner
    from repro.workloads.stream import TimedQuery, generate_stream

    vocabulary = [f"w{i:06d}" for i in range(args.vocabulary)]
    model = QueryWorkloadModel(vocabulary, num_topics=args.topics, seed=args.seed)
    shifted = model.drifted(args.shift_fraction, seed=args.seed + 1)
    half = args.duration / 2.0
    stream = generate_stream(model, half, base_qps=args.qps, seed=args.seed)
    stream += [
        TimedQuery(timed.time_s + half, timed.query)
        for timed in generate_stream(
            shifted, half, base_qps=args.qps, seed=args.seed + 1
        )
    ]

    config = OnlineConfig(
        num_nodes=args.nodes,
        window_s=args.window,
        sketch_width=args.sketch_width,
        heavy_hitters=args.heavy_hitters,
        decay=args.decay,
        min_support=args.min_support,
        seed=args.seed,
        thresholds=DriftThresholds(churn=args.churn),
        budget_fraction=args.budget_fraction,
        planning=PlanConfig(scope=_scope_from_args(args), seed=args.seed),
    )
    planner = OnlinePlanner({word: 1.0 for word in vocabulary}, config)
    report = planner.run(stream)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote online report to {args.out}", file=sys.stderr)
    print(report.render())
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.serve import ServeConfig

    return ServeConfig(
        max_batch=args.max_batch,
        max_delay_s=args.max_delay,
        rate=args.rate,
        burst=args.burst,
        max_queue=args.max_queue,
    )


def _loadgen_config(args: argparse.Namespace):
    from repro.serve import LoadgenConfig

    return LoadgenConfig(
        vocabulary=args.vocabulary,
        topics=args.topics,
        documents=args.documents,
        nodes=args.nodes,
        duration_s=args.duration,
        qps=args.qps,
        shift_fraction=args.shift_fraction,
        swaps=args.swaps,
        seed=args.seed,
        planner=args.planner,
        serve=_serve_config(args),
    )


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive the query router with the seeded diurnal drifting stream.

    Builds a synthetic serving scenario, replays the stream through the
    batching router on the deterministic virtual-time loop
    (:mod:`repro.serve.vtime`), replans mid-run with the configured
    planner tier and hot-swaps the plan ``--swaps`` times, then writes
    the :class:`~repro.serve.loadgen.ServeReport` — throughput, exact
    p50/p95/p99 latency, shed and swap accounting — as byte-reproducible
    JSON.  The CI serve-smoke job runs this twice and ``cmp``'s report
    and journal; see docs/SERVING.md.
    """
    from repro.serve import run_loadgen

    report = run_loadgen(_loadgen_config(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote serve report to {args.out}", file=sys.stderr)
    print(report.render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve queries over TCP (JSON lines) with the batching router.

    Same scenario construction and router as ``repro loadgen``, but on
    the real event loop and wall clock, listening on ``--host:--port``.
    One JSON object per line: ``{"keywords": [...]}`` in,
    ``{"ok": true, "results": N, ...}`` out (see
    :mod:`repro.serve.server` for the protocol).  Stop with Ctrl-C.
    """
    import asyncio

    from repro.serve import PlanHandle, QueryRouter
    from repro.serve.loadgen import _plan_snapshot, build_scenario
    from repro.serve.server import serve_forever

    config = _loadgen_config(args)
    index, _, warmup = build_scenario(config)
    snapshot, cost = _plan_snapshot(index, warmup, config, version=1)
    handle = PlanHandle(snapshot)
    router = QueryRouter(handle, config.serve)
    print(
        f"serving {len(index)} keywords on {args.host}:{args.port} "
        f"(plan v1 via {config.planner}, cost {cost:.4f}); Ctrl-C stops",
        file=sys.stderr,
    )
    try:
        asyncio.run(serve_forever(handle, router, args.host, args.port))
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", file=sys.stderr)
    return 0


def cmd_pg(args: argparse.Namespace) -> int:
    """Plan a synthetic scenario through placement-group indirection.

    Builds a seeded synthetic problem, plans it with ``lprr:pg``
    (:class:`~repro.core.strategies.PlanScope.pg` scope), and writes the
    resulting :class:`~repro.pg.PGMap` as sorted-key JSON.  The map and
    the ``--journal`` artifact are pure functions of the arguments —
    byte-identical across same-seed runs — which is what the CI pg-smoke
    job asserts with ``cmp``; see ``docs/SCALE.md``.
    """
    from repro.resilience import synthetic_scenario

    problem, _ = synthetic_scenario(
        num_objects=args.objects,
        num_nodes=args.nodes,
        num_operations=0,
        seed=args.seed,
    )
    config = PlanConfig(
        scope=PlanScope.pg(groups=args.groups, important=args.important),
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    result = plan(problem, "lprr:pg", config)
    diag = result.diagnostics
    print(
        f"planned {problem.num_objects} objects on {problem.num_nodes} nodes "
        f"through {diag['nonempty_groups']}/{diag['groups']} placement groups "
        f"(+{diag['important']} exact); model cost {result.cost:.6g}"
    )
    if args.out:
        payload = json.dumps(result.details.to_dict(), indent=2, sort_keys=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"wrote PG map to {args.out}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the tracked fast-vs-legacy benchmark suite.

    Times every vectorized hot path against the legacy loop it
    replaced on pinned seeded workloads (see :mod:`repro.bench`),
    verifies byte-identical output, and reports speedups.  With
    ``--compare BASELINE`` the run fails (exit 1) when any speedup
    ratio falls more than ``--tolerance`` below the baseline artifact
    or a case's absolute floor — wall times are machine-specific, so
    only ratios are compared.
    """
    from repro.bench import BenchReport, run_bench

    tags = args.tags.split(",") if args.tags else None
    try:
        report = run_bench(seed=args.seed, repeats=args.repeats, tags=tags)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for case in report.cases:
        marker = "ok" if case.equal else "DIVERGED"
        floor = f" (floor {case.min_speedup:.1f}x)" if case.min_speedup else ""
        print(
            f"{case.name:20s} [{case.tag}] legacy {case.legacy_s:.3f}s "
            f"fast {case.fast_s:.3f}s speedup {case.speedup:.2f}x{floor} {marker}"
        )
    print(f"peak RSS {report.peak_rss_kb} KiB")
    if args.out:
        report.save(args.out)
        print(f"wrote bench report to {args.out}", file=sys.stderr)
    if args.compare:
        try:
            baseline = BenchReport.load(args.compare)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline {args.compare}: {exc}", file=sys.stderr)
            return 2
        problems = report.compare(baseline, tolerance=args.tolerance)
        obs.record(
            "bench.compare",
            baseline=args.compare,
            tolerance=args.tolerance,
            regressions=len(problems),
        )
        if problems:
            for line in problems:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.compare}", file=sys.stderr)
    elif any(not case.equal for case in report.cases):
        return 1
    return 0


def cmd_gap(args: argparse.Namespace) -> int:
    """Measure LPRR and first-order optimality gaps on small instances.

    Draws seeded small instances, solves each to proven optimality
    (branch and bound by default, CP-SAT with ``--reference cpsat``
    when ortools is installed), plans the same instances with HiGHS
    LPRR and the first-order backend, and prints per-instance cost
    ratios.  The :class:`~repro.gap.GapReport` — a pure function of
    the seed, byte-identical across runs — goes to ``--out``.
    """
    from repro.gap import run_gap

    try:
        report = run_gap(
            seed=args.seed,
            instances=args.instances,
            objects=args.objects,
            nodes=args.nodes,
            reference=args.reference,
        )
    except Exception as exc:
        # The cpsat reference without ortools lands here with the
        # install hint; keep it a clean CLI error, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote gap report to {args.out}", file=sys.stderr)
    print(report.render())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Analyze a journal or metrics artifact from an earlier run.

    Auto-detects the artifact: a ``--journal`` JSONL file yields the
    flight-recorder report (record counts, fallback/cache summaries,
    online/chaos roll-ups) and, with ``--period``, the replan-explain
    view; a ``--metrics-out`` JSON document yields per-phase time
    attribution and the critical path from its span forest.
    """
    from repro.obs.analytics import (
        explain_period,
        render_journal_report,
        render_trace_report,
        spans_from_document,
    )
    from repro.obs.journal import JOURNAL_SCHEMA, load_journal

    try:
        with open(args.path, encoding="utf-8") as fh:
            first_line = fh.readline()
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        probe = json.loads(first_line) if first_line.strip() else None
    except ValueError:
        probe = None

    if isinstance(probe, dict) and probe.get("schema") == JOURNAL_SCHEMA:
        try:
            records = load_journal(args.path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.period is not None:
            try:
                print(explain_period(records, args.period))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            print(render_journal_report(records))
        return 0

    try:
        with open(args.path, encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot parse {args.path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(document, dict) or "spans" not in document:
        print(
            f"error: {args.path} is neither a journal (JSONL with a "
            f"{JOURNAL_SCHEMA} header) nor a metrics document with spans",
            file=sys.stderr,
        )
        return 2
    if args.period is not None:
        print(
            "error: --period needs a journal artifact, not a metrics document",
            file=sys.stderr,
        )
        return 2
    print(render_trace_report(spans_from_document(document)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Correlation-aware object placement (ICDCS 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-queries", help="generate a synthetic query log")
    p.add_argument("output", help="output file path")
    p.add_argument("--count", type=int, default=10000)
    p.add_argument("--vocabulary", type=int, default=4000)
    p.add_argument("--topics", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_gen_queries)

    p = sub.add_parser("place", help="compute a keyword-index placement")
    p.add_argument("log", help="query log file")
    p.add_argument("output", help="placement JSON output path")
    p.add_argument("--strategy", choices=available_planners(), default="lprr")
    p.add_argument("--nodes", type=int, default=10)
    p.add_argument("--scope", type=int, default=None, help="optimization scope")
    p.add_argument("--min-support", type=int, default=2)
    p.add_argument("--documents", type=int, default=1500)
    p.add_argument("--vocabulary", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    _add_pg_scope_args(p)
    _add_planner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_place)

    p = sub.add_parser("evaluate", help="replay a query log against a placement")
    p.add_argument("log", help="query log file")
    p.add_argument(
        "placement",
        nargs="?",
        default=None,
        help="placement JSON from `repro place` (omit to plan inline)",
    )
    p.add_argument(
        "--strategy",
        choices=available_planners(),
        default="lprr",
        help="inline planning strategy when no placement file is given",
    )
    p.add_argument("--nodes", type=int, default=10)
    p.add_argument("--scope", type=int, default=None, help="optimization scope")
    p.add_argument("--min-support", type=int, default=2)
    p.add_argument("--documents", type=int, default=1500)
    p.add_argument("--vocabulary", type=int, default=4000)
    p.add_argument("--seed", type=int, default=0)
    _add_pg_scope_args(p)
    _add_planner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("analyze", help="Figure-2 style analysis of a query log")
    p.add_argument("log", help="query log file")
    p.add_argument("--format", choices=("plain", "aol"), default="plain")
    p.add_argument("--top-pairs", type=int, default=1000)
    p.add_argument("--min-count", type=int, default=10)
    p.add_argument("--max-queries", type=int, default=None)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("experiment", help="regenerate a paper figure")
    p.add_argument("figure", choices=("fig2", "fig5", "fig6", "fig7", "all"))
    p.add_argument("--nodes", type=int, nargs="*", help="node counts (fig7/all)")
    p.add_argument("--output", help="write the report to a file (all)")
    _add_study_args(p)
    _add_planner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "chaos", help="seeded fault-injection run over a synthetic scenario"
    )
    p.add_argument("--objects", type=int, default=30, help="scenario objects")
    p.add_argument("--nodes", type=int, default=5, help="scenario nodes")
    p.add_argument("--operations", type=int, default=60, help="trace length")
    p.add_argument("--events", type=int, default=6, help="fault events to draw")
    p.add_argument("--replicas", type=int, default=2, help="copies per object")
    p.add_argument(
        "--strategy",
        choices=available_planners(),
        default="resilient",
        help="planner for the single-copy placement",
    )
    p.add_argument("--scope", type=int, default=None, help="optimization scope")
    _add_pg_scope_args(p)
    p.add_argument("--mode", choices=("intersection", "union"), default="intersection")
    p.add_argument("--seed", type=int, default=0, help="scenario + schedule seed")
    p.add_argument("--no-repair", action="store_true", help="skip incremental repair")
    p.add_argument(
        "--topology",
        metavar="SPEC",
        default=None,
        help=(
            "failure-domain spec 'zones:Z,racks:K' (racks per zone); "
            "switches to domain mode: replicated lprr:rep vs replicated "
            "hash under domain-correlated faults"
        ),
    )
    p.add_argument("--out", metavar="PATH", default=None, help="write report JSON")
    _add_obs_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "online", help="streaming control loop over a drifting query stream"
    )
    p.add_argument("--vocabulary", type=int, default=200, help="keyword universe")
    p.add_argument("--topics", type=int, default=30, help="workload topics")
    p.add_argument("--nodes", type=int, default=5, help="placement nodes")
    p.add_argument("--duration", type=float, default=3600.0, help="stream seconds")
    p.add_argument("--qps", type=float, default=1.0, help="mean arrival rate")
    p.add_argument("--window", type=float, default=600.0, help="period seconds")
    p.add_argument(
        "--shift-fraction",
        type=float,
        default=0.5,
        help="fraction of topics whose popularity shifts mid-stream",
    )
    p.add_argument("--sketch-width", type=int, default=512, help="Count-Min width")
    p.add_argument(
        "--heavy-hitters", type=int, default=128, help="Space-Saving capacity"
    )
    p.add_argument("--decay", type=float, default=0.7, help="per-period decay")
    p.add_argument("--min-support", type=int, default=1, help="pair support floor")
    p.add_argument("--churn", type=float, default=0.4, help="replan churn threshold")
    p.add_argument(
        "--budget-fraction",
        type=float,
        default=0.1,
        help="per-replan migration budget as a fraction of total size",
    )
    p.add_argument("--scope", type=int, default=None, help="optimization scope cap")
    _add_pg_scope_args(p)
    p.add_argument("--seed", type=int, default=0, help="stream + sketch seed")
    p.add_argument("--out", metavar="PATH", default=None, help="write report JSON")
    _add_obs_args(p)
    p.set_defaults(func=cmd_online)

    def _add_serve_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--vocabulary", type=int, default=200, help="keyword universe"
        )
        p.add_argument("--topics", type=int, default=30, help="workload topics")
        p.add_argument(
            "--documents", type=int, default=400, help="corpus documents"
        )
        p.add_argument("--nodes", type=int, default=5, help="placement nodes")
        p.add_argument(
            "--duration", type=float, default=8.0, help="stream seconds"
        )
        p.add_argument(
            "--qps", type=float, default=6000.0, help="mean offered load"
        )
        p.add_argument(
            "--shift-fraction",
            type=float,
            default=0.6,
            help="fraction of topics whose popularity shifts mid-stream",
        )
        p.add_argument(
            "--swaps", type=int, default=3, help="mid-run plan hot-swaps"
        )
        p.add_argument(
            "--planner",
            default="stream:greedy",
            help="planner tier for the initial plan and every replan",
        )
        p.add_argument("--seed", type=int, default=0, help="scenario seed")
        p.add_argument(
            "--max-batch", type=int, default=32, help="router batch size cap"
        )
        p.add_argument(
            "--max-delay",
            type=float,
            default=0.005,
            help="router batching delay cap in seconds",
        )
        p.add_argument(
            "--rate",
            type=float,
            default=8000.0,
            help="admission token-bucket refill rate (queries/s)",
        )
        p.add_argument(
            "--burst",
            type=float,
            default=800.0,
            help="admission token-bucket burst capacity",
        )
        p.add_argument(
            "--max-queue", type=int, default=2048, help="router backlog cap"
        )

    p = sub.add_parser(
        "loadgen",
        help="replay the drifting stream through the serving router",
    )
    _add_serve_scenario_args(p)
    p.add_argument(
        "--out", metavar="PATH", default=None, help="write serve report JSON"
    )
    _add_obs_args(p)
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "serve", help="serve queries over TCP with the batching router"
    )
    _add_serve_scenario_args(p)
    p.add_argument("--host", default="127.0.0.1", help="listen address")
    p.add_argument("--port", type=int, default=7621, help="listen port")
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "pg", help="plan a synthetic scenario through placement groups"
    )
    p.add_argument("--objects", type=int, default=100000, help="scenario objects")
    p.add_argument("--nodes", type=int, default=8, help="scenario nodes")
    p.add_argument("--groups", type=int, default=64, help="placement groups (K)")
    p.add_argument(
        "--important", type=int, default=64, help="top objects kept exact (M)"
    )
    p.add_argument("--seed", type=int, default=0, help="scenario seed")
    p.add_argument("--out", metavar="PATH", default=None, help="write PG map JSON")
    _add_planner_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_pg)

    p = sub.add_parser(
        "bench", help="fast-vs-legacy benchmark suite with tracked baseline"
    )
    p.add_argument("--seed", type=int, default=0, help="workload seed")
    p.add_argument("--repeats", type=int, default=3, help="timing repeats")
    p.add_argument(
        "--tags",
        default=None,
        help=(
            "comma-separated stages to run "
            "(plan,evaluate,online-ingest,pg,rep,serve,solve)"
        ),
    )
    p.add_argument("--out", metavar="PATH", default=None, help="write report JSON")
    p.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="fail on speedup regressions vs this artifact",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop vs the baseline",
    )
    _add_obs_args(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "gap", help="optimality gap of LPRR/first-order vs an exact reference"
    )
    p.add_argument("--seed", type=int, default=0, help="instance seed")
    p.add_argument(
        "--instances", type=int, default=8, help="seeded instances to draw"
    )
    p.add_argument(
        "--objects", type=int, default=12,
        help="objects per instance (keep <= 18 for the exact reference)",
    )
    p.add_argument("--nodes", type=int, default=3, help="nodes per instance")
    p.add_argument(
        "--reference",
        choices=("exact", "cpsat"),
        default="exact",
        help=(
            "proven-optimal reference: built-in branch and bound, or "
            "CP-SAT (needs the repro[exact] extra)"
        ),
    )
    p.add_argument("--out", metavar="PATH", default=None, help="write report JSON")
    _add_obs_args(p)
    p.set_defaults(func=cmd_gap)

    p = sub.add_parser(
        "trace", help="analyze a journal or metrics artifact from a run"
    )
    p.add_argument("path", help="journal JSONL (--journal) or metrics JSON (--metrics-out)")
    p.add_argument(
        "--period",
        type=int,
        default=None,
        metavar="N",
        help="explain one online period's decision (journal artifacts only)",
    )
    p.set_defaults(func=cmd_trace)
    return parser


def _write_metrics(args: argparse.Namespace, inst: obs.Instrumentation) -> int:
    from repro.obs.export import to_json, to_prometheus

    if args.metrics_format == "prometheus":
        payload = to_prometheus(inst.metrics)
    else:
        payload = to_json(inst.metrics, inst.tracer) + "\n"
    try:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(payload)
    except OSError as exc:
        print(f"error: cannot write metrics to {args.metrics_out}: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.metrics_format} metrics to {args.metrics_out}", file=sys.stderr)
    return 0


def _write_artifact(path: str, payload: str, label: str) -> int:
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
    except OSError as exc:
        print(f"error: cannot write {label} to {path}: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {label} to {path}", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    journal_out = getattr(args, "journal", None)
    trace_out = getattr(args, "trace_out", None)
    instrumented = bool(
        getattr(args, "metrics_out", None)
        or getattr(args, "trace", False)
        or journal_out
        or trace_out
    )
    if not instrumented:
        return args.func(args)

    from repro.obs.export import render_span_tree, to_chrome_trace

    journal = obs.Journal() if journal_out else None
    inst = obs.enable(obs.Instrumentation(journal=journal))
    try:
        with obs.span(args.command):
            code = args.func(args)
    finally:
        obs.disable()
    if args.trace:
        print(render_span_tree(inst.tracer), file=sys.stderr)
    if args.metrics_out:
        code = _write_metrics(args, inst) or code
    if trace_out:
        code = (
            _write_artifact(
                trace_out, to_chrome_trace(inst.tracer) + "\n", "Chrome trace"
            )
            or code
        )
    if journal_out:
        assert journal is not None
        code = _write_artifact(journal_out, journal.to_jsonl(), "journal") or code
    return code


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Reports are routinely piped into head/less; a closed pipe is
        # not an error.  Detach stdout so interpreter shutdown does not
        # raise again while flushing it.
        sys.stdout = open(os.devnull, "w")
        sys.exit(0)
