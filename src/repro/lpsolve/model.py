"""Linear-program modelling layer.

A :class:`LinearProgram` collects variables and sparse linear
constraints, then dispatches to a backend for the actual solve.  The
design goal is the one the paper needed from LPsolve: build a program
with hundreds of thousands of variables cheaply (append-only arrays, no
per-constraint Python objects on the hot path) and hand it to an exact
LP solver.

Example:
    >>> lp = LinearProgram("toy")
    >>> x = lp.add_variable("x", objective=1.0)
    >>> y = lp.add_variable("y", objective=2.0)
    >>> _ = lp.add_constraint([(x, 1.0), (y, 1.0)], Sense.GE, 1.0)
    >>> result = lp.solve()
    >>> round(result.objective, 6)
    1.0
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SolverError
from repro.lpsolve.result import LPResult


class Sense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable: an index plus descriptive metadata."""

    index: int
    name: str
    lower: float
    upper: float

    def __index__(self) -> int:
        return self.index


@dataclass(frozen=True)
class Constraint:
    """A handle to a constraint row (index plus metadata)."""

    index: int
    name: str
    sense: Sense
    rhs: float


class LinearProgram:
    """A minimization linear program built incrementally.

    Variables default to ``[0, +inf)`` bounds and a zero objective
    coefficient.  Constraints are stored as COO triplets so that
    building a program with ``O(|T| * |N|)`` rows (the paper's placement
    LP) stays linear-time.
    """

    def __init__(self, name: str = "lp"):
        self.name = name
        self._var_names: list[str] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._objective: list[float] = []
        # Constraint matrix in COO triplet form.
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []
        self._senses: list[Sense] = []
        self._rhs: list[float] = []
        self._con_names: list[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of variables added so far."""
        return len(self._var_names)

    @property
    def num_constraints(self) -> int:
        """Number of constraint rows added so far."""
        return len(self._rhs)

    @property
    def num_nonzeros(self) -> int:
        """Number of nonzero constraint coefficients."""
        return len(self._vals)

    def add_variable(
        self,
        name: str = "",
        lower: float = 0.0,
        upper: float = float("inf"),
        objective: float = 0.0,
    ) -> Variable:
        """Add one decision variable and return its handle.

        Args:
            name: Optional descriptive name (auto-generated if empty).
            lower: Lower bound (default 0).
            upper: Upper bound (default +inf).
            objective: Coefficient in the minimization objective.
        """
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        index = len(self._var_names)
        if not name:
            name = f"x{index}"
        self._var_names.append(name)
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._objective.append(float(objective))
        return Variable(index, name, float(lower), float(upper))

    def add_variables(
        self,
        count: int,
        prefix: str = "x",
        lower: float = 0.0,
        upper: float = float("inf"),
        objective: float = 0.0,
    ) -> list[Variable]:
        """Add ``count`` variables sharing bounds and objective weight."""
        return [
            self.add_variable(f"{prefix}{i}", lower, upper, objective)
            for i in range(count)
        ]

    def add_variables_from_arrays(
        self,
        names: Sequence[str],
        lower: float | Sequence[float] = 0.0,
        upper: float | Sequence[float] = float("inf"),
        objective: float | Sequence[float] = 0.0,
    ) -> int:
        """Bulk-append variables; returns the index of the first one.

        The batch equivalent of calling :meth:`add_variable` once per
        name: the resulting program state is identical, but the
        appends happen as single ``list.extend`` calls instead of one
        Python call per variable.  Scalars broadcast over the batch.
        """
        count = len(names)
        base = len(self._var_names)
        lower_arr = np.broadcast_to(np.asarray(lower, dtype=float), (count,))
        upper_arr = np.broadcast_to(np.asarray(upper, dtype=float), (count,))
        objective_arr = np.broadcast_to(np.asarray(objective, dtype=float), (count,))
        bad = np.flatnonzero(lower_arr > upper_arr)
        if bad.size:
            i = int(bad[0])
            raise ValueError(
                f"variable {names[i]!r}: lower {lower_arr[i]} > upper {upper_arr[i]}"
            )
        self._var_names.extend(
            name if name else f"x{base + i}" for i, name in enumerate(names)
        )
        self._lower.extend(lower_arr.tolist())
        self._upper.extend(upper_arr.tolist())
        self._objective.extend(objective_arr.tolist())
        return base

    def add_constraints_from_arrays(
        self,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        vals: Sequence[float] | np.ndarray,
        senses: Sense | Sequence[Sense],
        rhs: Sequence[float] | np.ndarray,
        names: Sequence[str] | None = None,
    ) -> int:
        """Bulk-append constraint rows from COO triplets.

        The batch equivalent of one :meth:`add_constraint` call per
        row: the COO triplet arrays land in the same append-only
        storage in the same order, so the resulting program is
        byte-identical to the loop — but without a Python-level loop
        over ``len(vals)`` coefficients.

        Args:
            rows: Local 0-based row offset of each triplet (values in
                ``[0, len(rhs))``, ordered however the caller likes —
                triplet order is preserved verbatim).
            cols: Variable index of each triplet.
            vals: Coefficient of each triplet.
            senses: One :class:`Sense` shared by every row, or one per
                row.
            rhs: Right-hand side per row; its length is the number of
                rows appended.
            names: Optional name per row (empty strings auto-name).

        Returns:
            The global index of the first appended row.
        """
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        vals_arr = np.asarray(vals, dtype=float)
        rhs_arr = np.asarray(rhs, dtype=float)
        count = int(rhs_arr.shape[0])
        if not (rows_arr.shape == cols_arr.shape == vals_arr.shape):
            raise ValueError("rows, cols, and vals must have matching lengths")
        if rows_arr.size and not (
            0 <= int(rows_arr.min()) and int(rows_arr.max()) < count
        ):
            raise ValueError(f"row offsets must lie in [0, {count})")
        n = self.num_variables
        if cols_arr.size and not (
            0 <= int(cols_arr.min()) and int(cols_arr.max()) < n
        ):
            raise ValueError(f"constraint references an unknown variable (n={n})")
        base = len(self._rhs)
        if isinstance(senses, Sense):
            sense_list = [senses] * count
        else:
            sense_list = list(senses)
            if len(sense_list) != count:
                raise ValueError("senses must match the number of rows")
            if not all(isinstance(s, Sense) for s in sense_list):
                raise ValueError("senses must be Sense members")
        if names is None:
            name_list = [f"c{base + r}" for r in range(count)]
        else:
            if len(names) != count:
                raise ValueError("names must match the number of rows")
            name_list = [
                name if name else f"c{base + r}" for r, name in enumerate(names)
            ]
        self._rows.extend((rows_arr + base).tolist())
        self._cols.extend(cols_arr.tolist())
        self._vals.extend(vals_arr.tolist())
        self._senses.extend(sense_list)
        self._rhs.extend(rhs_arr.tolist())
        self._con_names.extend(name_list)
        return base

    def set_objective(self, var: Variable | int, coefficient: float) -> None:
        """Set (overwrite) the objective coefficient of one variable."""
        self._objective[int(var)] = float(coefficient)

    def add_constraint(
        self,
        terms: Iterable[tuple[Variable | int, float]],
        sense: Sense,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Add the constraint ``sum(coef * var) <sense> rhs``.

        Args:
            terms: Iterable of ``(variable, coefficient)`` pairs.  A
                variable may appear more than once; coefficients add.
            sense: Constraint direction.
            rhs: Right-hand side.
            name: Optional descriptive name.
        """
        row = len(self._rhs)
        n = self.num_variables
        for var, coef in terms:
            col = int(var)
            if not 0 <= col < n:
                raise ValueError(f"constraint {name or row}: unknown variable {col}")
            self._rows.append(row)
            self._cols.append(col)
            self._vals.append(float(coef))
        self._senses.append(sense)
        self._rhs.append(float(rhs))
        self._con_names.append(name or f"c{row}")
        return Constraint(row, self._con_names[-1], sense, float(rhs))

    # ------------------------------------------------------------------
    # Export / solve
    # ------------------------------------------------------------------
    def objective_vector(self) -> np.ndarray:
        """The objective coefficients as a dense vector."""
        return np.asarray(self._objective, dtype=float)

    def bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper bound vectors."""
        return (
            np.asarray(self._lower, dtype=float),
            np.asarray(self._upper, dtype=float),
        )

    def constraint_matrix(self) -> sp.csr_matrix:
        """The full constraint matrix (all senses mixed) as CSR."""
        return sp.coo_matrix(
            (self._vals, (self._rows, self._cols)),
            shape=(self.num_constraints, self.num_variables),
        ).tocsr()

    def split_by_sense(
        self,
    ) -> tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix, np.ndarray]:
        """Return ``(A_ub, b_ub, A_eq, b_eq)`` with GE rows negated to LE.

        This is the form scipy's ``linprog`` expects.
        """
        matrix = self.constraint_matrix()
        senses = np.asarray([s.value for s in self._senses])
        rhs = np.asarray(self._rhs, dtype=float)

        le_mask = senses == Sense.LE.value
        ge_mask = senses == Sense.GE.value
        eq_mask = senses == Sense.EQ.value

        a_le = matrix[le_mask]
        b_le = rhs[le_mask]
        a_ge = -matrix[ge_mask]
        b_ge = -rhs[ge_mask]
        a_ub = sp.vstack([a_le, a_ge], format="csr") if (a_le.shape[0] or a_ge.shape[0]) else sp.csr_matrix((0, self.num_variables))
        b_ub = np.concatenate([b_le, b_ge])
        a_eq = matrix[eq_mask]
        b_eq = rhs[eq_mask]
        return a_ub, b_ub, a_eq, b_eq

    def variable_name(self, index: int) -> str:
        """Name of the variable at ``index``."""
        return self._var_names[index]

    def constraint_name(self, index: int) -> str:
        """Name of the constraint row at ``index``."""
        return self._con_names[index]

    def constraint_index(self, name: str) -> int:
        """Row index of the constraint named ``name``."""
        try:
            return self._con_names.index(name)
        except ValueError:
            raise KeyError(f"unknown constraint {name!r}") from None

    def sense_order(self) -> tuple[np.ndarray, np.ndarray]:
        """Original row indices of the (ub, eq) blocks that
        :meth:`split_by_sense` produces, in block order.  GE rows are
        listed in the ub block (they are negated to <= there)."""
        senses = np.asarray([s.value for s in self._senses])
        le_idx = np.where(senses == Sense.LE.value)[0]
        ge_idx = np.where(senses == Sense.GE.value)[0]
        eq_idx = np.where(senses == Sense.EQ.value)[0]
        return np.concatenate([le_idx, ge_idx]), eq_idx

    # Above this many variables, "auto" switches from dual simplex to
    # interior point + crossover, which is far faster on the large
    # placement LPs while still returning a basic solution.
    AUTO_IPM_THRESHOLD = 50_000

    def solve(
        self,
        backend: str = "auto",
        time_limit: float | None = None,
        iteration_limit: int | None = None,
    ) -> LPResult:
        """Solve the program with the named backend.

        Args:
            backend: ``"auto"`` (default: HiGHS dual simplex for small
                programs, interior point for large ones), ``"highs"``,
                ``"highs-ipm"``, or ``"simplex"`` (the self-contained
                dense solver; small programs only).
            time_limit: Abort the solve after this many seconds; the
                result carries a non-optimal status instead of blocking
                the caller indefinitely (HiGHS backends only — the
                dense simplex is bounded by ``iteration_limit``).
            iteration_limit: Maximum solver iterations before giving up
                with a non-optimal status.
        """
        # Imported lazily to keep model-building import-light.
        if backend == "auto":
            backend = (
                "highs-ipm"
                if self.num_variables > self.AUTO_IPM_THRESHOLD
                else "highs"
            )
        if backend in ("highs", "highs-ipm"):
            from repro.lpsolve.scipy_backend import solve_with_scipy

            return solve_with_scipy(
                self,
                method=backend,
                time_limit=time_limit,
                iteration_limit=iteration_limit,
            )
        if backend == "simplex":
            from repro.lpsolve.simplex import solve_simplex

            return solve_simplex(self, max_iterations=iteration_limit)
        raise SolverError(f"unknown LP backend: {backend!r}")

    def __repr__(self) -> str:
        return (
            f"LinearProgram(name={self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints}, nonzeros={self.num_nonzeros})"
        )


def lp_from_arrays(
    objective: Sequence[float],
    a_ub: np.ndarray | None = None,
    b_ub: Sequence[float] | None = None,
    a_eq: np.ndarray | None = None,
    b_eq: Sequence[float] | None = None,
    name: str = "lp",
) -> LinearProgram:
    """Build a :class:`LinearProgram` from dense arrays (test helper)."""
    lp = LinearProgram(name)
    variables = [lp.add_variable(objective=c) for c in objective]
    if a_ub is not None:
        if b_ub is None:
            raise ValueError("a_ub given without b_ub")
        for row, rhs in zip(np.atleast_2d(a_ub), b_ub):
            lp.add_constraint(
                [(v, c) for v, c in zip(variables, row) if c != 0.0], Sense.LE, rhs
            )
    if a_eq is not None:
        if b_eq is None:
            raise ValueError("a_eq given without b_eq")
        for row, rhs in zip(np.atleast_2d(a_eq), b_eq):
            lp.add_constraint(
                [(v, c) for v, c in zip(variables, row) if c != 0.0], Sense.EQ, rhs
            )
    return lp
