"""Exact placement via CP-SAT (the optional ``repro[exact]`` extra).

The paper's objective (1) counts, for every correlated pair, the pair
weight unless both objects share a node.  That is a MAX-SAT shape, not
an LP shape, so CP-SAT models it natively: one Boolean ``x[i, k]`` per
(object, node), exactly-one rows per object, integer-scaled capacity
rows per node and resource, and a colocation literal per (pair, node)
that may only be true when both endpoint literals are.  Maximizing the
colocated weight is equivalent to minimizing objective (1).

``ortools`` is deliberately NOT a hard dependency — this module always
imports, and :func:`solve_placement_cpsat` raises
:class:`~repro.exceptions.SolverError` with an install hint when the
library is absent (install with ``pip install repro[exact]``).  The
pure-Python branch-and-bound in :mod:`repro.core.exact` remains the
dependency-free exact reference (and the gap harness's default); the
value of CP-SAT is scale — it handles dozens of objects where
branch-and-bound handles ~18 — and an independent implementation to
cross-check both against.

Determinism: the model is built in a fixed order and solved with
``num_search_workers=1`` and a fixed ``random_seed`` by default, so
same-seed runs return the same placement.  Raising ``workers`` trades
that reproducibility for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.exceptions import SolverError

try:  # pragma: no cover - exercised only where ortools is installed
    from ortools.sat.python import cp_model  # type: ignore

    HAS_ORTOOLS = True
except ImportError:  # pragma: no cover
    cp_model = None
    HAS_ORTOOLS = False

# CP-SAT wants integers; sizes/capacities/weights are scaled by this
# factor and rounded.  1e6 keeps six decimal digits, far below the
# rounding already applied by the reports.
_SCALE = 10**6

_INSTALL_HINT = (
    "the CP-SAT backend needs ortools, which is not installed; "
    "install the optional extra with `pip install repro[exact]` "
    "(or use the dependency-free exact reference, repro.core.exact)"
)


@dataclass(frozen=True)
class CPSATSolution:
    """A CP-SAT placement plus proof status.

    Attributes:
        placement: The best feasible placement found.
        cost: Its communication cost (objective (1)), recomputed in
            float from the placement — not the scaled solver objective.
        status: CP-SAT status name (``"OPTIMAL"`` or ``"FEASIBLE"``).
        optimal: Whether the solver proved optimality.
        objective_bound: Best proven lower bound on the cost (equals
            ``cost`` when ``optimal``).
        wall_seconds: Solver wall time (diagnostic only; never enters
            reports).
    """

    placement: Placement
    cost: float
    status: str
    optimal: bool
    objective_bound: float
    wall_seconds: float


def solve_placement_cpsat(
    problem: PlacementProblem,
    *,
    time_limit: float | None = None,
    workers: int = 1,
    seed: int = 0,
) -> CPSATSolution:
    """Solve a placement instance to (proven) optimality with CP-SAT.

    Args:
        problem: The CCA instance; capacities and resource budgets are
            enforced strictly (after integer scaling).
        time_limit: Wall-clock budget in seconds; on expiry the best
            incumbent is returned with ``optimal=False`` (no incumbent
            raises :class:`SolverError`).  ``None`` means unlimited.
        workers: Parallel search workers.  The default ``1`` keeps
            same-seed runs deterministic; more workers are faster but
            may return different (equally optimal) placements.
        seed: CP-SAT's ``random_seed``.

    Raises:
        SolverError: When ortools is not installed, or no feasible
            placement was found within the budget.
    """
    if not HAS_ORTOOLS:
        raise SolverError(_INSTALL_HINT)
    if time_limit is not None and time_limit <= 0:
        raise ValueError("time_limit must be positive (or None)")
    if workers < 1:
        raise ValueError("workers must be at least 1")

    t, n = problem.num_objects, problem.num_nodes
    sizes = np.rint(problem.sizes * _SCALE).astype(np.int64)
    capacities = np.where(
        np.isfinite(problem.capacities),
        np.rint(np.minimum(problem.capacities, 2**40) * _SCALE),
        2**62,
    ).astype(np.int64)

    model = cp_model.CpModel()
    x = [[model.NewBoolVar(f"x_{i}_{k}") for k in range(n)] for i in range(t)]
    for i in range(t):
        model.AddExactlyOne(x[i])
    for k in range(n):
        model.Add(
            sum(int(sizes[i]) * x[i][k] for i in range(t)) <= int(capacities[k])
        )
    for spec in problem.resources:
        loads = np.rint(spec.loads * _SCALE).astype(np.int64)
        budgets = np.rint(spec.budgets * _SCALE).astype(np.int64)
        for k in range(n):
            model.Add(
                sum(int(loads[i]) * x[i][k] for i in range(t)) <= int(budgets[k])
            )

    # both[p, k] == 1 only when pair p's endpoints both sit on node k
    # (the maximize direction pushes it up to exactly that product, and
    # the exactly-one rows let at most one node colocate a pair).  The
    # objective rewards colocated weight, which is objective (1) up to
    # the constant total pair weight.
    objective_terms = []
    for p, (i, j) in enumerate(problem.pair_index):
        weight = float(problem.pair_weights[p])
        if weight <= 0:
            continue
        scaled = int(round(weight * _SCALE))
        for k in range(n):
            both = model.NewBoolVar(f"both_{p}_{k}")
            model.AddImplication(both, x[int(i)][k])
            model.AddImplication(both, x[int(j)][k])
            objective_terms.append(scaled * both)
    total_weight = float(np.sum(np.maximum(problem.pair_weights, 0.0)))
    model.Maximize(sum(objective_terms))

    solver = cp_model.CpSolver()
    if time_limit is not None:
        solver.parameters.max_time_in_seconds = float(time_limit)
    solver.parameters.num_search_workers = int(workers)
    solver.parameters.random_seed = int(seed)

    with obs.span("cpsat.solve", objects=t, nodes=n, pairs=problem.num_pairs):
        status = solver.Solve(model)

    name = solver.StatusName(status)
    if status not in (cp_model.OPTIMAL, cp_model.FEASIBLE):
        raise SolverError(
            f"CP-SAT found no feasible placement (status {name}); "
            "check capacities or raise the time limit"
        )

    assignment = np.empty(t, dtype=np.int64)
    for i in range(t):
        assignment[i] = next(
            k for k in range(n) if solver.BooleanValue(x[i][k])
        )
    placement = Placement(problem, assignment)
    cost = placement.communication_cost()
    # The solver maximizes colocated weight; its proven upper bound on
    # that maps to a lower bound on the cost.
    bound = max(0.0, total_weight - solver.BestObjectiveBound() / _SCALE)
    optimal = status == cp_model.OPTIMAL
    obs.record(
        "cpsat.result",
        status=name,
        optimal=optimal,
        cost=round(cost, 9),
        bound=round(bound, 9),
    )
    return CPSATSolution(
        placement=placement,
        cost=cost,
        status=name,
        optimal=optimal,
        objective_bound=cost if optimal else bound,
        wall_seconds=float(solver.WallTime()),
    )
