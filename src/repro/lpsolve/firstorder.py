"""First-order (projected-gradient) solver for fractional placement.

HiGHS solves the Figure-4 LP exactly but builds an ``O(|E||N|)``-row
program, which caps the practical exact scope.  This module trades the
LP certificate for scale: it performs projected gradient descent
directly on the ``(t, n)`` fractional placement matrix ``X`` (one row
per object, each row on the probability simplex), so scopes 10-100x
beyond the LP backend stay in memory and finish in seconds.

The energy it minimizes is the *quadratic* colocation form

    E(X) = sum_p w_p * (1 - <X[i_p], X[j_p]>)

— the expected communication cost when every object is independently
rounded to a node drawn from its row.  On integral placements ``E``
equals the exact objective (1), so unlike the Figure-4 LP — whose
optimal face is flat (any consensus of fractional rows scores zero,
and a point in the middle of that face says nothing about a good
assignment) — this relaxation is tight at vertices.  ``E`` is concave
in ``X``, so descent is self-sharpening: iterates drift off the
uniform center toward integral corners, with the pair terms choosing
*which* corner (mass gravitates to wherever each object's correlated
neighbors already sit — label-propagation dynamics) and capacity dual
prices arbitrating *how much* lands on each node.

The full pipeline (SNIPPETS.md snippet 2 shape: relax -> first-order
solve -> argmax rounding -> greedy capacity repair):

1. **Mirror step.**  The gradient of the annealed energy
   ``E - T * H`` (``H`` = row entropy, ``T`` the temperature) is
   ``-(W @ X) + s λᵀ + T (log X + 1)``, where ``W`` is the sparse
   symmetric pair-weight matrix, ``s`` the sizes, and ``λ`` the dual
   prices.  A gradient step in the entropic (mirror-descent) geometry
   of the simplex has a closed form: each row moves toward the
   *softmax* of its field ``(W @ X - s λᵀ) / T``, damped by a convex
   combination with the previous iterate — one sparse matvec plus one
   row-softmax per iteration, and rows stay on the simplex by
   construction.  (The Euclidean variant of the same step is
   :func:`project_rows_to_simplex`, which still sanitizes warm starts
   and is property-tested against a loop oracle.)
2. **Annealing.**  ``T`` cools geometrically from
   ``temperature * L`` to ``temperature_min * L`` over the first
   ``cool_fraction`` of the iteration budget (``L`` = largest total
   pair weight incident to one object): high early ``T`` lets the
   label-propagation dynamics discover cluster structure while rows
   are still fractional; the cool-down then commits each row.
3. **Capacity dual ascent.**  Each capacity-like constraint block
   (node capacity, extra resources) carries a nonnegative price vector
   that grows on violated nodes and decays on slack ones, pushing mass
   off overloaded nodes.
4. **Deterministic rounding.**  :func:`round_argmax` takes each row's
   argmax (ties break to the lowest node index) and
   :func:`greedy_capacity_repair` moves the largest objects off
   overloaded nodes to their best-fraction feasible alternative.

A perfectly uniform iterate is a saddle point (every neighbor
attraction and every capacity violation is identical across nodes), so
cold starts apply a tiny seeded perturbation — the one use of
randomness, and a pure function of ``FirstOrderOptions.seed``.  No
decision reads the wall clock unless an explicit ``time_limit`` is set
(the one documented source of nondeterminism), so same-input solves
are byte-identical, which the warm-start journal records and the gap
harness rely on.

This module deliberately speaks raw NumPy arrays (the lpsolve layer
knows nothing about :class:`~repro.core.problem.PlacementProblem`);
:func:`repro.core.lp.solve_placement_lp` adapts problems to it under
``backend="fo"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FirstOrderOptions:
    """Knobs of the projected-gradient solve.

    Attributes:
        max_iterations: Hard iteration cap (maps from
            ``PlanConfig.lp_iteration_limit``).
        check_every: Iterations between convergence checks and dual
            price updates.
        tolerance: Relative energy-improvement threshold; the solve
            stops once ``patience`` consecutive checks improve less
            than this while the iterate is near-integral.
        patience: Consecutive stalled checks required to stop.
        damping: Convex-combination weight of each mirror step:
            ``x <- (1 - damping) * x + damping * softmax(field / T)``.
            Undamped updates (1.0) oscillate bipartitely on strongly
            coupled graphs; 0.5 is the classic stable choice.
        dual_rate: Dual ascent rate on relative constraint violation
            (in units of the field scale ``L``, the largest total pair
            weight incident to one object).
        temperature: Initial annealing temperature, relative to the
            field scale ``L``.  The solve minimizes
            ``E(X) - T * H(X)`` (``H`` = row entropy): a high early
            ``T`` keeps rows fractional while the label-propagation
            dynamics discover the cluster structure, and the geometric
            cool-down then commits rows gradually instead of freezing
            the first corner the field happens to point at.
        temperature_min: Final relative temperature; warm starts
            begin here (their start point already encodes the cluster
            structure, so re-annealing would only burn iterations —
            this is the mechanism behind cheap online replans).
        cool_fraction: Fraction of the iteration budget over which
            the temperature anneals geometrically down to
            ``temperature_min``; the rest is zero-temperature polish.
            Deriving the cool-down from the budget guarantees a
            capped solve still returns a committed (near-integral)
            iterate rather than a half-cooled one.
        noise: Amplitude of the seeded symmetry-breaking perturbation
            added to the uniform cold start (warm starts skip it).
        seed: Seed of that perturbation.  Same seed, same solve, byte
            for byte.
        time_limit: Optional wall-clock budget in seconds, checked at
            check boundaries; exceeding it returns the current iterate
            early.  The only nondeterministic knob — leave ``None``
            (the default) for byte-reproducible solves.
    """

    max_iterations: int = 300
    check_every: int = 5
    tolerance: float = 1e-4
    patience: int = 2
    damping: float = 0.5
    dual_rate: float = 0.3
    temperature: float = 1.0
    temperature_min: float = 1e-2
    cool_fraction: float = 0.6
    noise: float = 1e-3
    seed: int = 0
    time_limit: float | None = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.check_every < 1:
            raise ValueError("check_every must be at least 1")
        if self.tolerance < 0:
            raise ValueError("tolerance must be nonnegative")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if not 0.0 < self.cool_fraction <= 1.0:
            raise ValueError("cool_fraction must be in (0, 1]")
        if self.temperature_min <= 0 or self.temperature < self.temperature_min:
            raise ValueError(
                "need temperature >= temperature_min > 0"
            )


@dataclass(frozen=True)
class FirstOrderSolution:
    """What one projected-gradient solve produced.

    Attributes:
        fractions: ``(t, n)`` matrix, every row on the simplex.
        objective: The colocation energy ``E`` at ``fractions`` — the
            expected communication cost under independent rounding of
            the rows.  At a near-integral iterate this approximates
            the argmax placement's cost; unlike an LP optimum it is
            *not* a certified lower bound (the gap harness measures
            what the approximation costs).
        iterations: Gradient iterations actually run — the quantity
            the warm-vs-cold replan acceptance compares.
        converged: Whether the stall criterion (rather than the
            iteration cap or time limit) ended the solve.
        duals: Final capacity prices, one per node (zeros where
            capacity is infinite).
    """

    fractions: np.ndarray
    objective: float
    iterations: int
    converged: bool
    duals: np.ndarray


def project_rows_to_simplex(matrix: np.ndarray) -> np.ndarray:
    """Euclidean-project every row of ``matrix`` onto the simplex.

    The standard sort-and-threshold algorithm (Held/Wolfe/Crowder),
    vectorized over rows: sort descending, find the largest prefix
    whose shifted mean stays below its last element, subtract that
    threshold, clip at zero.  Equivalent per row to the loop oracle
    :func:`_project_row_simplex_loop` (property-tested).
    """
    x = np.asarray(matrix, dtype=float)
    if x.ndim != 2 or x.shape[1] < 1:
        raise ValueError("expected a 2-D matrix with at least one column")
    n = x.shape[1]
    u = np.sort(x, axis=1)[:, ::-1]
    shifted = np.cumsum(u, axis=1) - 1.0
    ks = np.arange(1, n + 1, dtype=float)
    positive = u - shifted / ks > 0
    # Last index where the prefix condition holds (it holds at 0).
    rho = n - 1 - np.argmax(positive[:, ::-1], axis=1)
    theta = shifted[np.arange(x.shape[0]), rho] / (rho + 1.0)
    return np.maximum(x - theta[:, None], 0.0)


def _project_row_simplex_loop(row: np.ndarray) -> np.ndarray:
    """Reference per-row simplex projection (equivalence oracle)."""
    u = np.sort(np.asarray(row, dtype=float))[::-1]
    best = 0
    cumulative = 0.0
    for k, value in enumerate(u):
        cumulative += value
        if value - (cumulative - 1.0) / (k + 1) > 0:
            best = k
    theta = (np.cumsum(u)[best] - 1.0) / (best + 1)
    return np.maximum(row - theta, 0.0)


def _constraint_blocks(
    sizes: np.ndarray,
    capacities: np.ndarray,
    resources: tuple[tuple[np.ndarray, np.ndarray], ...],
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Normalize capacity-like constraints to (loads, budgets, mask)."""
    blocks = []
    for loads, budgets in ((sizes, capacities), *resources):
        loads = np.asarray(loads, dtype=float)
        budgets = np.asarray(budgets, dtype=float)
        mask = np.isfinite(budgets) & (budgets > 0)
        if mask.any() and loads.any():
            blocks.append((loads, budgets, mask))
    return blocks


def solve_first_order(
    sizes: np.ndarray,
    capacities: np.ndarray,
    pair_index: np.ndarray,
    pair_weights: np.ndarray,
    num_nodes: int,
    *,
    resources: tuple[tuple[np.ndarray, np.ndarray], ...] = (),
    x0: np.ndarray | None = None,
    warm: bool = False,
    options: FirstOrderOptions | None = None,
) -> FirstOrderSolution:
    """Minimize the colocation energy by projected gradient descent.

    Args:
        sizes: ``(t,)`` object sizes.
        capacities: ``(n,)`` node capacities (``inf`` = unconstrained).
        pair_index: ``(p, 2)`` object-index pairs.
        pair_weights: ``(p,)`` nonnegative pair weights (zero-weight
            pairs are ignored).
        num_nodes: Number of nodes ``n``.
        resources: Extra capacity-like blocks as ``(loads, budgets)``
            array pairs (Section 3.3 resources).
        x0: Optional ``(t, n)`` starting matrix (rows are projected
            onto the simplex before use); ``None`` starts uniform plus
            the seeded perturbation.
        warm: Marks ``x0`` as a previous near-optimal solution; the
            solve starts from it unperturbed and typically stalls out
            in a fraction of the cold iterations — the mechanism
            behind cheap online replans.
        options: Solver knobs (:class:`FirstOrderOptions`).

    Returns:
        A :class:`FirstOrderSolution`; ``fractions`` rows sum to 1.
    """
    options = options or FirstOrderOptions()
    sizes = np.asarray(sizes, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    t, n = int(sizes.shape[0]), int(num_nodes)
    if n < 1:
        raise ValueError("num_nodes must be at least 1")

    if x0 is None:
        # Seeded symmetry breaking off the uniform saddle (see the
        # module docstring); projection restores the simplex rows.
        rng = np.random.default_rng(options.seed)
        x = project_rows_to_simplex(
            np.full((t, n), 1.0 / n) + options.noise * rng.random((t, n))
        )
    else:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (t, n):
            raise ValueError(f"x0 shape {x0.shape} does not match ({t}, {n})")
        x = project_rows_to_simplex(x0)

    pair_index = np.asarray(pair_index, dtype=np.int64).reshape(-1, 2)
    pair_weights = np.asarray(pair_weights, dtype=float).reshape(-1)
    active = pair_weights > 0
    pi, pj = pair_index[active, 0], pair_index[active, 1]
    w = pair_weights[active]
    blocks = _constraint_blocks(sizes, capacities, tuple(resources))
    duals = [np.zeros(n) for _ in blocks]

    if pi.size == 0:
        # No pair pulls mass anywhere; the start point is already
        # stationary for the energy, so only report it projected.
        return FirstOrderSolution(
            fractions=x,
            objective=0.0,
            iterations=0,
            converged=True,
            duals=duals[0][:] if duals else np.zeros(n),
        )

    from scipy import sparse

    # Symmetric pair-weight matrix: (W @ X)[i] is the node-mass of
    # object i's correlated neighborhood, weighted by pair weight.
    weight_matrix = sparse.csr_matrix(
        (
            np.concatenate([w, w]),
            (np.concatenate([pi, pj]), np.concatenate([pj, pi])),
        ),
        shape=(t, t),
    )
    total_weight = float(w.sum())
    # Largest total incident weight sets the field scale: temperatures
    # and dual rates are expressed relative to it so one set of knob
    # defaults transfers across instance magnitudes.
    degree = np.asarray(weight_matrix.sum(axis=1)).reshape(-1)
    scale = float(degree.max())
    if scale <= 0:
        scale = 1.0

    def energy_at(matrix: np.ndarray) -> float:
        colocated = float((matrix[pi] * matrix[pj]).sum(axis=1) @ w)
        return total_weight - colocated

    temp_min = options.temperature_min * scale
    temp = temp_min if warm else options.temperature * scale
    # Geometric cool-down sized to finish within cool_fraction of the
    # iteration budget (see the options docstring).
    cool_checks = max(
        1.0,
        options.cool_fraction * options.max_iterations / options.check_every,
    )
    if temp > temp_min:
        temperature_decay = (temp_min / temp) ** (1.0 / cool_checks)
    else:
        temperature_decay = 1.0
    best_e = energy_at(x)
    stalled = 0
    iterations = 0
    converged = False
    deadline = (
        None
        if options.time_limit is None
        else time.monotonic() + options.time_limit
    )

    while iterations < options.max_iterations:
        burst = min(options.check_every, options.max_iterations - iterations)
        for _ in range(burst):
            # The mirror (entropic-prox) step on E - T*H in closed
            # form: each row moves toward the softmax of its field —
            # neighborhood attraction minus capacity prices.
            field = weight_matrix @ x
            for (loads, budgets, mask), price in zip(blocks, duals):
                field -= loads[:, None] * price[None, :]
            field /= temp
            field -= field.max(axis=1, keepdims=True)
            np.exp(field, out=field)
            field /= field.sum(axis=1, keepdims=True)
            x = (1.0 - options.damping) * x + options.damping * field
        iterations += burst

        # Dual ascent on relative violation; slack nodes decay so a
        # price never pins mass off a node that stopped overflowing.
        for (loads, budgets, mask), price in zip(blocks, duals):
            load = x.T @ loads
            violation = np.zeros(n)
            violation[mask] = (load[mask] - budgets[mask]) / budgets[mask]
            np.maximum(
                price + options.dual_rate * scale * violation, 0.0, out=price
            )

        e = energy_at(x)
        cooled = temp <= temp_min
        near_vertex = float(np.mean(x.max(axis=1))) >= 0.95
        if (
            cooled
            and near_vertex
            and e >= best_e - options.tolerance * max(1.0, best_e)
        ):
            stalled += 1
            if stalled >= options.patience:
                converged = True
                break
        else:
            stalled = 0
        best_e = min(best_e, e)
        temp = max(temp_min, temp * temperature_decay)
        if deadline is not None and time.monotonic() >= deadline:
            break

    row_sums = x.sum(axis=1, keepdims=True)
    np.divide(x, row_sums, out=x, where=row_sums > 0)
    return FirstOrderSolution(
        fractions=x,
        objective=energy_at(x),
        iterations=iterations,
        converged=converged,
        duals=duals[0] if duals else np.zeros(n),
    )


def round_argmax(fractions: np.ndarray) -> np.ndarray:
    """Deterministic rounding: each object to its largest-fraction node.

    Ties break to the lowest node index (NumPy argmax semantics), so
    the rounding is a pure function of the fractions.
    """
    return np.argmax(np.asarray(fractions, dtype=float), axis=1).astype(np.int64)


def greedy_capacity_repair(
    assignment: np.ndarray,
    fractions: np.ndarray,
    sizes: np.ndarray,
    capacities: np.ndarray,
    tolerance: float = 0.05,
) -> tuple[np.ndarray, int]:
    """Move objects off overloaded nodes, guided by the fractions.

    While some node exceeds ``capacity * (1 + tolerance)``, the most
    overloaded node evicts its largest object that fits elsewhere, to
    the feasible node where the object's fraction is largest (the
    cheapest alternative the relaxation itself suggests).  Entirely
    deterministic: nodes by overload then index, objects by size then
    index, targets by fraction then index.

    Returns:
        ``(assignment, moves)`` — a repaired copy and the move count.
        If some node cannot be drained (nothing fits anywhere else),
        the remaining overload is left for the planner-level repair.
    """
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    sizes = np.asarray(sizes, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    n = capacities.shape[0]
    limits = capacities * (1.0 + tolerance)
    loads = np.bincount(assignment, weights=sizes, minlength=n)
    moves = 0
    for _ in range(assignment.shape[0]):
        excess = loads - limits
        k = int(np.argmax(excess))
        if not excess[k] > 0:
            break
        members = np.flatnonzero(assignment == k)
        # Largest first; ties by object index for determinism.
        order = members[np.lexsort((members, -sizes[members]))]
        moved = False
        for i in order:
            i = int(i)
            room = limits - loads >= sizes[i]
            room[k] = False
            if not room.any():
                continue
            preference = np.where(room, fractions[i], -np.inf)
            target = int(np.argmax(preference))
            assignment[i] = target
            loads[k] -= sizes[i]
            loads[target] += sizes[i]
            moves += 1
            moved = True
            break
        if not moved:
            break
    return assignment, moves
