"""A self-contained dense two-phase simplex solver.

This backend exists as an independent cross-check of the HiGHS backend:
the placement experiments use HiGHS, while the test suite verifies on
small programs that both backends agree to numerical tolerance.  It
implements the textbook two-phase tableau method with Bland's rule for
anti-cycling, so it is exact (up to floating point) but intended only
for programs with at most a few hundred variables.

Bounds handling: each variable must have a finite lower bound (the
variable is shifted so the bound becomes zero); finite upper bounds are
added as explicit constraint rows.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SolverError
from repro.lpsolve.result import LPResult, LPStatus

_TOL = 1e-9
_MAX_ITERATIONS = 100_000


def solve_simplex(lp, max_iterations: int | None = None) -> LPResult:
    """Solve a :class:`repro.lpsolve.model.LinearProgram` exactly.

    Args:
        lp: The program to solve.  Every variable needs a finite lower
            bound.
        max_iterations: Pivot budget across both phases (default
            ``100_000``); exceeding it raises :class:`SolverError` so
            callers with a fallback chain can move on.

    Returns:
        An :class:`LPResult` with OPTIMAL / INFEASIBLE / UNBOUNDED
        status.

    Raises:
        SolverError: On unbounded-below variables or iteration blowup.
    """
    iteration_budget = (
        _MAX_ITERATIONS if max_iterations is None else int(max_iterations)
    )
    n = lp.num_variables
    if n == 0:
        return LPResult(LPStatus.OPTIMAL, 0.0, np.empty(0), "empty program")

    lower, upper = lp.bounds_arrays()
    if np.any(np.isinf(lower)):
        raise SolverError("simplex backend requires finite lower bounds")

    c = lp.objective_vector()
    a_ub, b_ub, a_eq, b_eq = lp.split_by_sense()
    a_ub = np.asarray(a_ub.todense(), dtype=float)
    a_eq = np.asarray(a_eq.todense(), dtype=float)

    # Shift x = x' + lower so that x' >= 0.
    b_ub = b_ub - a_ub @ lower if a_ub.size else b_ub
    b_eq = b_eq - a_eq @ lower if a_eq.size else b_eq
    objective_shift = float(c @ lower)

    # Finite upper bounds become explicit <= rows on the shifted vars.
    finite_ub = np.where(np.isfinite(upper))[0]
    if finite_ub.size:
        bound_rows = np.zeros((finite_ub.size, n))
        bound_rows[np.arange(finite_ub.size), finite_ub] = 1.0
        bound_rhs = upper[finite_ub] - lower[finite_ub]
        a_ub = np.vstack([a_ub, bound_rows]) if a_ub.size else bound_rows
        b_ub = np.concatenate([b_ub, bound_rhs])

    rows: list[np.ndarray] = []
    senses: list[str] = []
    rhs: list[float] = []
    for row, b in zip(a_ub, b_ub):
        rows.append(np.asarray(row, dtype=float).ravel())
        senses.append("<=")
        rhs.append(float(b))
    for row, b in zip(a_eq, b_eq):
        rows.append(np.asarray(row, dtype=float).ravel())
        senses.append("==")
        rhs.append(float(b))

    # Normalize to nonnegative right-hand sides.
    for i in range(len(rows)):
        if rhs[i] < 0:
            rows[i] = -rows[i]
            rhs[i] = -rhs[i]
            if senses[i] == "<=":
                senses[i] = ">="
            elif senses[i] == ">=":
                senses[i] = "<="

    m = len(rows)
    num_slack = sum(1 for s in senses if s in ("<=", ">="))
    num_artificial = sum(1 for s in senses if s in (">=", "=="))
    total = n + num_slack + num_artificial

    tableau = np.zeros((m, total))
    b_vec = np.asarray(rhs, dtype=float)
    basis = np.empty(m, dtype=int)
    slack_at = n
    art_at = n + num_slack
    artificial_cols: list[int] = []
    for i, (row, sense) in enumerate(zip(rows, senses)):
        tableau[i, :n] = row
        if sense == "<=":
            tableau[i, slack_at] = 1.0
            basis[i] = slack_at
            slack_at += 1
        elif sense == ">=":
            tableau[i, slack_at] = -1.0
            slack_at += 1
            tableau[i, art_at] = 1.0
            basis[i] = art_at
            artificial_cols.append(art_at)
            art_at += 1
        else:  # ==
            tableau[i, art_at] = 1.0
            basis[i] = art_at
            artificial_cols.append(art_at)
            art_at += 1

    iterations = 0

    def run_phase(costs: np.ndarray, allowed: int) -> str:
        """Run simplex iterations; returns 'optimal' or 'unbounded'."""
        nonlocal iterations
        while True:
            iterations += 1
            if iterations > iteration_budget:
                raise SolverError(
                    f"simplex iteration limit ({iteration_budget}) exceeded"
                )
            # Reduced costs: costs - costs_B @ tableau (dense).
            cb = costs[basis]
            reduced = costs[:allowed] - cb @ tableau[:, :allowed]
            # Bland's rule: smallest index with negative reduced cost.
            entering_candidates = np.where(reduced < -_TOL)[0]
            if entering_candidates.size == 0:
                return "optimal"
            entering = int(entering_candidates[0])
            col = tableau[:, entering]
            positive = np.where(col > _TOL)[0]
            if positive.size == 0:
                return "unbounded"
            ratios = b_vec[positive] / col[positive]
            best = ratios.min()
            # Bland tie-break: smallest basis index among minimal ratios.
            tied = positive[np.abs(ratios - best) <= _TOL * (1 + abs(best))]
            leaving = int(tied[np.argmin(basis[tied])])
            pivot(leaving, entering)

    def pivot(row: int, col: int) -> None:
        pivot_val = tableau[row, col]
        tableau[row] /= pivot_val
        b_vec[row] /= pivot_val
        for i in range(m):
            if i != row and abs(tableau[i, col]) > 0:
                factor = tableau[i, col]
                tableau[i] -= factor * tableau[row]
                b_vec[i] -= factor * b_vec[row]
        basis[row] = col

    # Phase 1: drive artificial variables to zero.
    if artificial_cols:
        phase1_costs = np.zeros(total)
        phase1_costs[artificial_cols] = 1.0
        outcome = run_phase(phase1_costs, total)
        if outcome == "unbounded":  # cannot happen: phase-1 objective >= 0
            raise SolverError("phase-1 simplex reported unbounded")
        infeasibility = float(b_vec[np.isin(basis, artificial_cols)].sum())
        if infeasibility > 1e-7:
            return LPResult(LPStatus.INFEASIBLE, message="phase-1 optimum positive")
        # Pivot any artificial variables still (degenerately) in the basis.
        art_set = set(artificial_cols)
        for i in range(m):
            if basis[i] in art_set:
                candidates = np.where(np.abs(tableau[i, : n + num_slack]) > _TOL)[0]
                if candidates.size:
                    pivot(i, int(candidates[0]))

    # Phase 2: original objective over structural + slack columns only.
    phase2_costs = np.zeros(total)
    phase2_costs[:n] = c
    outcome = run_phase(phase2_costs, n + num_slack)
    if outcome == "unbounded":
        return LPResult(LPStatus.UNBOUNDED, message="phase-2 unbounded")

    x_shifted = np.zeros(total)
    x_shifted[basis] = b_vec
    x = x_shifted[:n] + lower
    objective = float(c @ x_shifted[:n]) + objective_shift
    return LPResult(
        LPStatus.OPTIMAL,
        objective=objective,
        x=x,
        message="two-phase simplex",
        iterations=iterations,
    )
