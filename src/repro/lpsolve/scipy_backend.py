"""HiGHS backend: solve a :class:`LinearProgram` via ``scipy.optimize.linprog``."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import SolverError
from repro.lpsolve.result import LPResult, LPStatus

# scipy linprog status codes -> our status enum.
_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,  # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def solve_with_scipy(
    lp,
    method: str = "highs",
    time_limit: float | None = None,
    iteration_limit: int | None = None,
) -> LPResult:
    """Solve ``lp`` with scipy's HiGHS solver.

    Args:
        lp: A :class:`repro.lpsolve.model.LinearProgram`.
        method: scipy method name — ``"highs"`` (automatic, typically
            dual simplex) or ``"highs-ipm"`` (interior point with
            crossover; much faster on the large placement LPs).
        time_limit: HiGHS wall-clock budget in seconds; an exceeded
            budget returns an ERROR-status result, not an exception.
        iteration_limit: HiGHS iteration budget, same semantics.

    Returns:
        An :class:`LPResult`; ``status`` reflects the HiGHS outcome.

    Raises:
        SolverError: If scipy raises or returns an unknown status.
    """
    if lp.num_variables == 0:
        return LPResult(LPStatus.OPTIMAL, 0.0, np.empty(0), "empty program")

    a_ub, b_ub, a_eq, b_eq = lp.split_by_sense()
    lower, upper = lp.bounds_arrays()
    bounds = list(zip(lower, np.where(np.isinf(upper), None, upper)))
    options: dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if iteration_limit is not None:
        options["maxiter"] = int(iteration_limit)

    try:
        res = linprog(
            c=lp.objective_vector(),
            A_ub=a_ub if a_ub.shape[0] else None,
            b_ub=b_ub if b_ub.size else None,
            A_eq=a_eq if a_eq.shape[0] else None,
            b_eq=b_eq if b_eq.size else None,
            bounds=bounds,
            method=method,
            options=options or None,
        )
    except ValueError as exc:  # malformed input surfaced by scipy
        raise SolverError(f"scipy linprog rejected the program: {exc}") from exc

    status = _STATUS_MAP.get(res.status)
    if status is None:
        raise SolverError(f"scipy linprog returned unknown status {res.status}")
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, message=res.message)

    duals = _reconstruct_duals(lp, res)
    return LPResult(
        LPStatus.OPTIMAL,
        objective=float(res.fun),
        x=np.asarray(res.x, dtype=float),
        message=res.message,
        iterations=int(getattr(res, "nit", 0) or 0),
        duals=duals,
    )


def _reconstruct_duals(lp, res) -> np.ndarray | None:
    """Map scipy's block-ordered marginals back to original rows.

    GE rows were negated into the <= block, so their duals flip sign
    back; the result uses the convention that a binding constraint of
    either sense has a dual whose sign reflects improving the optimum
    per unit of *relaxation*.
    """
    ineq = getattr(res, "ineqlin", None)
    eq = getattr(res, "eqlin", None)
    if ineq is None and eq is None:
        return None
    ub_rows, eq_rows = lp.sense_order()
    duals = np.zeros(lp.num_constraints)
    if ineq is not None and len(getattr(ineq, "marginals", [])) == len(ub_rows):
        marginals = np.asarray(ineq.marginals, dtype=float)
        from repro.lpsolve.model import Sense as _Sense

        for block_pos, original in enumerate(ub_rows):
            value = marginals[block_pos]
            # GE rows were negated; flip the sign back.
            if lp._senses[original] is _Sense.GE:
                value = -value
            duals[original] = value
    if eq is not None and len(getattr(eq, "marginals", [])) == len(eq_rows):
        duals[eq_rows] = np.asarray(eq.marginals, dtype=float)
    return duals
