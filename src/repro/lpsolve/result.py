"""Solver results for the :mod:`repro.lpsolve` substrate."""

from __future__ import annotations


import enum
from dataclasses import dataclass, field

import numpy as np


class LPStatus(enum.Enum):
    """Terminal status of a linear-programming solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class LPResult:
    """Outcome of solving a :class:`~repro.lpsolve.model.LinearProgram`.

    Attributes:
        status: Terminal solver status.
        objective: Optimal objective value (``nan`` unless OPTIMAL).
        x: Optimal variable values in definition order (empty unless
            OPTIMAL).
        message: Free-form diagnostic from the backend.
        iterations: Iteration count reported by the backend, if any.
        duals: Constraint dual values (shadow prices) in original
            constraint order, when the backend provides them.  For a
            minimization, the dual of a binding ``<=`` row is the rate
            at which the optimum would improve per unit of extra
            right-hand side.
    """

    status: LPStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    message: str = ""
    iterations: int = 0
    duals: np.ndarray | None = None

    @property
    def is_optimal(self) -> bool:
        """Whether an optimal solution was found."""
        return self.status is LPStatus.OPTIMAL

    def value(self, index: int) -> float:
        """Return the optimal value of the variable at ``index``."""
        if not self.is_optimal:
            raise ValueError(f"no solution available (status={self.status})")
        return float(self.x[index])
