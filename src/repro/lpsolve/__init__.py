"""A small linear-programming substrate.

The paper solved its relaxed placement program with the standalone
LPsolve package.  This subpackage plays that role: a modelling layer
(:class:`~repro.lpsolve.model.LinearProgram`) over two interchangeable
backends — scipy's HiGHS solver (the default, used for all real
experiments) and a self-contained dense two-phase simplex
(:func:`~repro.lpsolve.simplex.solve_simplex`, used as an independent
cross-check on small programs).
"""

from repro.lpsolve.model import Constraint, LinearProgram, Sense, Variable
from repro.lpsolve.result import LPResult, LPStatus
from repro.lpsolve.scipy_backend import solve_with_scipy
from repro.lpsolve.simplex import solve_simplex

__all__ = [
    "Constraint",
    "LinearProgram",
    "LPResult",
    "LPStatus",
    "Sense",
    "Variable",
    "solve_simplex",
    "solve_with_scipy",
]
