"""Tracked micro-benchmark suite for the vectorized hot paths.

Every scenario here times a **fast path against the legacy loop it
replaced** on a pinned, seeded workload and asserts their outputs are
identical before reporting a speedup.  Because each run measures both
engines on the same machine, the speedup *ratios* are comparable
across machines even though absolute wall times are not — which is
what makes the committed ``BENCH_5.json`` artifact a meaningful CI
baseline: a change that erodes a fast path shows up as a falling
ratio regardless of runner hardware.

Scenarios, by pipeline stage:

* ``plan`` — bulk LP constraint assembly
  (:func:`~repro.core.lp.build_placement_lp`), the batched randomized
  rounding sweep (:func:`~repro.core.rounding.round_trials_batched`),
  and vectorized correlation mining
  (:func:`~repro.core.correlation.cooccurrence_correlations`).
* ``evaluate`` — deduplicated query-log replay
  (:meth:`~repro.search.engine.DistributedSearchEngine.execute_log`).
* ``online-ingest`` — vectorized Count-Min ingestion
  (:meth:`~repro.online.sketch.CountMinSketch.update_many`) and the
  batched estimator trace path
  (:meth:`~repro.online.sketch.SketchCorrelationEstimator.observe_trace`).
* ``pg`` — placement-group indirection at scale: plans one million
  objects through a small PG map (``lprr:pg``; see ``docs/SCALE.md``)
  and times the vectorized map expansion
  (:func:`~repro.pg.expand_assignment`) against the per-object
  ``assign`` loop.  Not part of the committed baseline — the plan wall
  time is pinned in ``detail`` for the 1M-objects acceptance check.
* ``serve`` — the serving layer: one seeded loadgen scenario replayed
  through the batching :class:`~repro.serve.router.QueryRouter` versus
  per-query dispatch (``max_batch=1``), compared on *service seconds
  per completed query* (virtual time, so the ratio is deterministic);
  and the streaming-partitioner replan ablation — ``stream:greedy``
  versus heavy-pair ``lprr`` on the post-shift trace, compared on
  replan wall time with the placement-cost ratio gating ``equal``.
* ``rep`` — replicated placement at scale: spread-constrained
  two-copy placement of 100k objects over a zoned topology
  (:func:`~repro.core.replication.spread_replicated_placement`), a
  zone-down chaos epoch evaluation
  (:func:`~repro.resilience.degraded.mode_stats`), and the vectorized
  spread validation
  (:func:`~repro.core.replication.spread_violations`) against its
  per-object loop.  Not part of the committed baseline — plan and
  epoch wall times are pinned in ``detail``.

Run via ``repro bench``; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import gc
import json
import resource
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro import obs
from repro.core.correlation import (
    cooccurrence_correlations,
    operation_pairs,
)
from repro.core.lp import FractionalPlacement, LPStats, _build_placement_lp_loop, build_placement_lp
from repro.core.problem import PlacementProblem
from repro.core.rounding import _round_trials_loop, round_trials_batched
from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.online.sketch import CountMinSketch, SketchCorrelationEstimator
from repro.parallel.seeds import spawn_seed_sequences
from repro.search.engine import DistributedSearchEngine

#: Artifact schema marker; bump when the JSON layout changes.
SCHEMA = "repro.bench/v1"

#: Default artifact name at the repository root.
DEFAULT_ARTIFACT = "BENCH_5.json"

#: Scenario tags in pipeline order.
TAGS = ("plan", "evaluate", "online-ingest", "pg", "rep", "serve", "solve")


@dataclass(frozen=True)
class BenchCase:
    """One fast-vs-legacy measurement.

    Attributes:
        name: Scenario identifier (stable across runs).
        tag: Pipeline stage, one of :data:`TAGS`.
        legacy_s: Best-of-``repeats`` wall time of the legacy loop.
        fast_s: Best-of-``repeats`` wall time of the fast path.
        speedup: ``legacy_s / fast_s``.
        min_speedup: Absolute floor this scenario must sustain, or
            None for informational scenarios.
        equal: Whether the two engines produced identical output.
        detail: Pinned scenario sizes (documentation, not compared).
    """

    name: str
    tag: str
    legacy_s: float
    fast_s: float
    speedup: float
    min_speedup: float | None
    equal: bool
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tag": self.tag,
            "legacy_s": round(self.legacy_s, 6),
            "fast_s": round(self.fast_s, 6),
            "speedup": round(self.speedup, 3),
            "min_speedup": self.min_speedup,
            "equal": self.equal,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchCase":
        return cls(
            name=data["name"],
            tag=data["tag"],
            legacy_s=float(data["legacy_s"]),
            fast_s=float(data["fast_s"]),
            speedup=float(data["speedup"]),
            min_speedup=data.get("min_speedup"),
            equal=bool(data["equal"]),
            detail=dict(data.get("detail", {})),
        )


@dataclass(frozen=True)
class BenchReport:
    """A full suite run: cases plus run-level bookkeeping."""

    seed: int
    repeats: int
    peak_rss_kb: int
    cases: tuple[BenchCase, ...]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "repeats": self.repeats,
            "peak_rss_kb": self.peak_rss_kb,
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported bench artifact schema {data.get('schema')!r}"
            )
        return cls(
            seed=int(data["seed"]),
            repeats=int(data["repeats"]),
            peak_rss_kb=int(data["peak_rss_kb"]),
            cases=tuple(BenchCase.from_dict(c) for c in data["cases"]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def case(self, name: str) -> BenchCase | None:
        for case in self.cases:
            if case.name == name:
                return case
        return None

    def compare(
        self, baseline: "BenchReport", tolerance: float = 0.25
    ) -> list[str]:
        """Regressions of this run against a baseline artifact.

        Wall times are machine-specific, so only the fast-vs-legacy
        *ratios* are compared: a case regresses when its speedup falls
        more than ``tolerance`` below the baseline's, or below its own
        absolute floor (with the same slack for noisy runners).
        Equality failures always regress.

        Returns:
            Human-readable regression lines; empty when clean.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        problems: list[str] = []
        for case in self.cases:
            if not case.equal:
                problems.append(
                    f"{case.name}: fast path output diverged from legacy"
                )
                continue
            floor = None
            base = baseline.case(case.name)
            if base is not None:
                floor = base.speedup * (1.0 - tolerance)
            if case.min_speedup is not None:
                absolute = case.min_speedup * (1.0 - tolerance)
                floor = absolute if floor is None else max(floor, absolute)
            if floor is not None and case.speedup < floor:
                expected = (
                    f"baseline {base.speedup:.2f}x" if base is not None else ""
                )
                if case.min_speedup is not None:
                    target = f"floor {case.min_speedup:.2f}x"
                    expected = f"{expected}, {target}" if expected else target
                problems.append(
                    f"{case.name}: speedup {case.speedup:.2f}x below "
                    f"{floor:.2f}x ({expected}, tolerance {tolerance:.0%})"
                )
        return problems


def _best_of(repeats: int, run: Callable[[], object]) -> float:
    """Minimum wall time over ``repeats`` runs, with the GC paused.

    The minimum estimates the noise-free cost; pausing collection
    keeps a mid-run GC cycle from landing in one engine's window and
    not the other's.
    """
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _peak_rss_kb() -> int:
    """Peak resident set size in KiB (ru_maxrss is bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


# ----------------------------------------------------------------------
# Pinned workloads
# ----------------------------------------------------------------------

def _plan_problem(seed: int) -> PlacementProblem:
    """A mid-size capacitated CCA instance with one extra resource."""
    rng = np.random.default_rng(seed)
    num_objects, num_pairs = 400, 2600
    objects = {
        f"w{i}": float(s)
        for i, s in enumerate(rng.integers(1, 50, size=num_objects))
    }
    ids = list(objects)
    correlations = {}
    while len(correlations) < num_pairs:
        i, j = rng.integers(0, num_objects, size=2)
        if i == j:
            continue
        a, b = (ids[i], ids[j]) if ids[i] <= ids[j] else (ids[j], ids[i])
        correlations[(a, b)] = float(rng.uniform(0.01, 1.0))
    capacity = 2.5 * sum(objects.values()) / 8
    loads = {o: float(rng.uniform(0.1, 2.0)) for o in ids}
    return PlacementProblem.build(
        objects,
        {k: capacity for k in range(8)},
        correlations,
        resources={"cpu": (loads, 2.5 * sum(loads.values()) / 8)},
    )


def _fractional(problem: PlacementProblem, seed: int) -> FractionalPlacement:
    """A synthetic fractional solution (rounding input, no LP solve)."""
    rng = np.random.default_rng(seed)
    fractions = rng.dirichlet(
        np.full(len(problem.node_ids), 0.5), size=len(problem.object_ids)
    )
    stats = LPStats(0, 0, 0, 0.0, 0)
    return FractionalPlacement(problem, fractions, 0.0, stats)


def _replay_study(seed: int) -> CaseStudy:
    """Heavy-repetition search workload (the paper's Zipf logs repeat
    queries far more than this)."""
    return CaseStudy.build(
        CaseStudyConfig(
            num_documents=800,
            vocabulary_size=250,
            num_queries=40_000,
            num_topics=14,
            topic_query_fraction=0.99,
            topic_size_range=(3, 4),
            seed=seed,
        )
    )


def _lp_state(program) -> tuple:
    return (
        program._var_names,
        program._lower,
        program._upper,
        program._objective,
        program._rows,
        program._cols,
        program._vals,
        program._senses,
        program._rhs,
        program._con_names,
    )


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def _bench_lp_assembly(seed: int, repeats: int) -> BenchCase:
    problem = _plan_problem(seed)
    legacy = _build_placement_lp_loop(problem)
    fast = build_placement_lp(problem)
    equal = _lp_state(legacy) == _lp_state(fast)
    legacy_s = _best_of(repeats, lambda: _build_placement_lp_loop(problem))
    fast_s = _best_of(repeats, lambda: build_placement_lp(problem))
    return BenchCase(
        name="lp_assembly",
        tag="plan",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=3.0,
        equal=equal,
        detail={
            "objects": len(problem.object_ids),
            "nodes": len(problem.node_ids),
            "pairs": int(problem.pair_index.shape[0]),
            "rows": legacy.num_constraints,
            "nonzeros": legacy.num_nonzeros,
        },
    )


def _bench_rounding(seed: int, repeats: int) -> BenchCase:
    problem = _plan_problem(seed)
    fractional = _fractional(problem, seed)
    trials = 256
    seqs = spawn_seed_sequences(seed, trials)
    loop_assign, loop_rounds = _round_trials_loop(fractional, seqs)
    fast_assign, fast_rounds = round_trials_batched(fractional, seqs)
    equal = bool(
        np.array_equal(loop_assign, fast_assign)
        and np.array_equal(loop_rounds, fast_rounds)
    )
    legacy_s = _best_of(repeats, lambda: _round_trials_loop(fractional, seqs))
    fast_s = _best_of(repeats, lambda: round_trials_batched(fractional, seqs))
    return BenchCase(
        name="rounding_sweep",
        tag="plan",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=1.5,
        equal=equal,
        detail={
            "trials": trials,
            "objects": len(problem.object_ids),
            "nodes": len(problem.node_ids),
        },
    )


def _mine_loop(trace: Iterable) -> dict:
    """The pre-vectorization correlation miner (baseline)."""
    counts: Counter = Counter()
    total = 0
    for operation in trace:
        total += 1
        counts.update(operation_pairs(operation))
    if total == 0:
        return {}
    return {pair: count / total for pair, count in counts.items()}


def _bench_correlation(study: CaseStudy, repeats: int) -> BenchCase:
    trace = [query.keywords for query in study.log]
    legacy = _mine_loop(trace)
    fast = cooccurrence_correlations(trace)
    equal = legacy == fast and list(legacy) == list(fast)
    legacy_s = _best_of(repeats, lambda: _mine_loop(trace))
    fast_s = _best_of(repeats, lambda: cooccurrence_correlations(trace))
    return BenchCase(
        name="correlation_mining",
        tag="plan",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=1.2,
        equal=equal,
        detail={"operations": len(trace), "pairs": len(fast)},
    )


def _bench_log_replay(study: CaseStudy, repeats: int) -> BenchCase:
    placement = study.place_hash(8)

    def run(dedup: bool):
        engine = DistributedSearchEngine(study.index, placement)
        return engine.execute_log(study.log, dedup=dedup)

    legacy = run(False)
    fast = run(True)
    equal = (
        legacy.queries == fast.queries
        and legacy.total_bytes == fast.total_bytes
        and legacy.total_hops == fast.total_hops
        and legacy.local_queries == fast.local_queries
        and legacy.per_node_bytes_sent == fast.per_node_bytes_sent
    )
    legacy_s = _best_of(repeats, lambda: run(False))
    fast_s = _best_of(repeats, lambda: run(True))
    unique = len({query.keywords for query in study.log})
    return BenchCase(
        name="log_replay",
        tag="evaluate",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=3.0,
        equal=equal,
        detail={
            "queries": len(study.log),
            "unique_queries": unique,
            "nodes": 8,
        },
    )


def _bench_cm_ingest(study: CaseStudy, repeats: int) -> BenchCase:
    pairs = [
        pair
        for query in study.log
        for pair in operation_pairs(query.keywords)
    ]

    def legacy_run():
        sketch = CountMinSketch(seed=0)
        for pair in pairs:
            sketch.add(pair)
        return sketch

    def fast_run():
        sketch = CountMinSketch(seed=0)
        sketch.update_many(pairs)
        return sketch

    legacy = legacy_run()
    fast = fast_run()
    equal = bool(
        np.array_equal(legacy._cells, fast._cells)
        and legacy._total == fast._total
    )
    legacy_s = _best_of(repeats, legacy_run)
    fast_s = _best_of(repeats, fast_run)
    return BenchCase(
        name="sketch_ingest",
        tag="online-ingest",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=2.0,
        equal=equal,
        detail={"pairs": len(pairs), "unique_pairs": len(set(pairs))},
    )


def _bench_estimator_ingest(study: CaseStudy, repeats: int) -> BenchCase:
    trace = [query.keywords for query in study.log]

    def legacy_run():
        estimator = SketchCorrelationEstimator(seed=0)
        estimator.observe_all(trace)
        return estimator

    def fast_run():
        estimator = SketchCorrelationEstimator(seed=0)
        estimator.observe_trace(trace)
        return estimator

    legacy = legacy_run()
    fast = fast_run()
    equal = json.dumps(legacy.to_dict(), sort_keys=True) == json.dumps(
        fast.to_dict(), sort_keys=True
    )
    legacy_s = _best_of(repeats, legacy_run)
    fast_s = _best_of(repeats, fast_run)
    return BenchCase(
        name="estimator_ingest",
        tag="online-ingest",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=None,
        equal=equal,
        detail={"operations": len(trace)},
    )


def _bench_columnar_ingest(study: CaseStudy, repeats: int) -> BenchCase:
    from repro.workloads.traces import TraceColumns

    trace = [query.keywords for query in study.log]
    columns = TraceColumns.from_operations(trace)

    def legacy_run():
        estimator = SketchCorrelationEstimator(seed=0)
        estimator.observe_trace(columns.operations())
        return estimator

    def fast_run():
        estimator = SketchCorrelationEstimator(seed=0)
        estimator.observe_columns(columns)
        return estimator

    legacy = legacy_run()
    fast = fast_run()
    equal = json.dumps(legacy.to_dict(), sort_keys=True) == json.dumps(
        fast.to_dict(), sort_keys=True
    )
    legacy_s = _best_of(repeats, legacy_run)
    fast_s = _best_of(repeats, fast_run)
    return BenchCase(
        name="columnar_ingest",
        tag="online-ingest",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=1.0,
        equal=equal,
        detail={
            "operations": len(columns),
            "distinct_ids": len(columns.ids),
            "codes": int(columns.codes.size),
        },
    )


def _serve_loadgen_config(seed: int, max_batch: int):
    from repro.serve import LoadgenConfig, ServeConfig

    return LoadgenConfig(
        duration_s=2.0,
        qps=6000.0,
        seed=seed,
        serve=ServeConfig(max_batch=max_batch),
    )


def _bench_serve_routing(seed: int, repeats: int) -> BenchCase:
    # Virtual-time replay: throughput is a pure function of the seed,
    # so one run per mode is exact — ``repeats`` buys nothing here.
    # legacy_s / fast_s are *service seconds per completed query*, not
    # harness wall time; the speedup is the batched-vs-per-query
    # throughput ratio the serving layer must sustain.
    from repro.serve import run_loadgen

    batched = run_loadgen(_serve_loadgen_config(seed, max_batch=32))
    per_query = run_loadgen(_serve_loadgen_config(seed, max_batch=1))
    legacy_s = 1.0 / per_query.throughput_qps
    fast_s = 1.0 / batched.throughput_qps
    equal = bool(
        batched.p99_ms <= per_query.p99_ms
        and batched.dropped_in_flight == 0
        and per_query.dropped_in_flight == 0
        and batched.availability == 1.0
    )
    return BenchCase(
        name="serve_routing",
        tag="serve",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=10.0,
        equal=equal,
        detail={
            "offered": batched.offered,
            "batched_qps": round(batched.throughput_qps, 1),
            "per_query_qps": round(per_query.throughput_qps, 1),
            "batched_p99_ms": round(batched.p99_ms, 3),
            "per_query_p99_ms": round(per_query.p99_ms, 3),
            "batched_completed": batched.completed,
            "per_query_completed": per_query.completed,
            "swaps": batched.swaps,
        },
    )


def _bench_stream_planner(seed: int, repeats: int) -> BenchCase:
    # The replan ablation: on the post-shift half of the drifting
    # stream, the one-pass streaming partitioner must replan an order
    # of magnitude faster than heavy-pair LPRR while staying within
    # 1.5x of its placement cost (the ``equal`` gate).
    from repro.core.strategies import PlanConfig, plan
    from repro.search.engine import build_placement_problem
    from repro.search.query import QueryLog
    from repro.serve import LoadgenConfig, build_scenario

    config = LoadgenConfig(duration_s=2.0, qps=6000.0, seed=seed)
    index, stream, _ = build_scenario(config)
    half = config.duration_s / 2.0
    window = QueryLog(
        timed.query for timed in stream if timed.time_s >= half
    )
    problem = build_placement_problem(
        index,
        window,
        config.node_capacities(float(index.total_bytes)),
        correlation_mode="cooccurrence",
    )
    plan_config = PlanConfig(seed=seed, use_cache=False)
    lprr = plan(problem, "lprr", plan_config)
    stream_greedy = plan(problem, "stream:greedy", plan_config)
    cost_ratio = (
        stream_greedy.cost / lprr.cost if lprr.cost > 0 else 1.0
    )
    legacy_s = _best_of(repeats, lambda: plan(problem, "lprr", plan_config))
    fast_s = _best_of(
        repeats, lambda: plan(problem, "stream:greedy", plan_config)
    )
    return BenchCase(
        name="stream_planner",
        tag="serve",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=10.0,
        equal=bool(cost_ratio <= 1.5),
        detail={
            "objects": problem.num_objects,
            "nodes": problem.num_nodes,
            "pairs": int(problem.pair_index.shape[0]),
            "post_shift_queries": len(window),
            "lprr_cost": round(lprr.cost, 6),
            "stream_cost": round(stream_greedy.cost, 6),
            "cost_ratio": round(cost_ratio, 4),
        },
    )


def _pg_problem(seed: int, num_objects: int = 1_000_000) -> PlacementProblem:
    """A million-object CCA instance, built through the raw constructor.

    The dict-based :meth:`PlacementProblem.build` is comfortable at
    thousands of objects but wasteful at a million; the raw array
    constructor is the supported path at this scale (``docs/SCALE.md``).
    """
    rng = np.random.default_rng(seed)
    num_nodes, num_pairs = 8, 20_000
    object_ids = [f"o{i:07d}" for i in range(num_objects)]
    sizes = rng.integers(1, 50, size=num_objects).astype(float)
    raw = rng.integers(0, num_objects, size=(4 * num_pairs, 2))
    raw = raw[raw[:, 0] != raw[:, 1]]
    lo = np.minimum(raw[:, 0], raw[:, 1])
    hi = np.maximum(raw[:, 0], raw[:, 1])
    _, keep = np.unique(lo * num_objects + hi, return_index=True)
    keep = np.sort(keep)[:num_pairs]
    pair_index = np.stack([lo[keep], hi[keep]], axis=1)
    correlations = rng.uniform(0.01, 1.0, size=pair_index.shape[0])
    pair_costs = np.minimum(sizes[pair_index[:, 0]], sizes[pair_index[:, 1]])
    capacity = 2.5 * float(sizes.sum()) / num_nodes
    return PlacementProblem(
        object_ids,
        sizes,
        list(range(num_nodes)),
        np.full(num_nodes, capacity),
        pair_index,
        correlations,
        pair_costs,
    )


def _bench_pg_expand(seed: int, repeats: int) -> BenchCase:
    from repro.core.strategies import PlanConfig, PlanScope, plan
    from repro.pg import build_grouping, expand_assignment

    groups, important = 128, 128
    problem = _pg_problem(seed)
    config = PlanConfig(
        scope=PlanScope.pg(groups=groups, important=important),
        seed=seed,
        use_cache=False,
    )
    plan_started = time.perf_counter()
    result = plan(problem, "lprr:pg", config)
    plan_s = time.perf_counter() - plan_started
    pg_map = result.details
    grouping = build_grouping(problem, groups, important=important)

    def legacy_run():
        return np.fromiter(
            (pg_map.assign(obj) for obj in problem.object_ids),
            dtype=np.int64,
            count=problem.num_objects,
        )

    fast = expand_assignment(grouping, pg_map)
    equal = bool(np.array_equal(legacy_run(), fast))
    legacy_s = _best_of(repeats, legacy_run)
    fast_s = _best_of(repeats, lambda: expand_assignment(grouping, pg_map))
    return BenchCase(
        name="pg_expand",
        tag="pg",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=None,
        equal=equal,
        detail={
            "objects": problem.num_objects,
            "nodes": problem.num_nodes,
            "pairs": int(problem.pair_index.shape[0]),
            "groups": groups,
            "important": important,
            "plan_s": round(plan_s, 3),
            "plan_cost": round(result.cost, 3),
        },
    )


def _solve_problem(
    seed: int,
    num_objects: int,
    num_nodes: int = 8,
    cluster: int = 12,
    drift_seed: int | None = None,
) -> PlacementProblem:
    """A topic-clustered CCA instance for the solver-backend benches.

    Objects come in co-access clusters of ``cluster`` with dense
    strong intra-cluster pairs plus one weak cross-cluster pair per
    object — the workload shape Section 4 mines from real query logs,
    and the regime where placement actually matters (unlike the
    uniform-random pairs of :func:`_plan_problem`, which have no good
    partition to find).  ``drift_seed`` jitters every pair weight by
    ±15% without touching the pair set: a mild-drift replan instance.
    """
    rng = np.random.default_rng(seed)
    object_ids = [f"s{i:05d}" for i in range(num_objects)]
    sizes = rng.uniform(0.5, 2.0, size=num_objects)
    full = num_objects // cluster * cluster
    a, b = np.triu_indices(cluster, 1)
    intra = np.concatenate(
        [np.stack([s + a, s + b], axis=1) for s in range(0, full, cluster)]
    )
    intra_weights = rng.uniform(0.5, 1.0, size=intra.shape[0])
    raw = rng.integers(0, num_objects, size=(2 * num_objects, 2))
    raw = raw[raw[:, 0] != raw[:, 1]]
    lo = np.minimum(raw[:, 0], raw[:, 1])
    hi = np.maximum(raw[:, 0], raw[:, 1])
    same_cluster = (lo // cluster == hi // cluster) & (hi < full)
    lo, hi = lo[~same_cluster], hi[~same_cluster]
    _, keep = np.unique(lo * num_objects + hi, return_index=True)
    keep = np.sort(keep)[:num_objects]
    cross = np.stack([lo[keep], hi[keep]], axis=1)
    cross_weights = rng.uniform(0.01, 0.1, size=cross.shape[0])
    pair_index = np.concatenate([intra, cross])
    weights = np.concatenate([intra_weights, cross_weights])
    if drift_seed is not None:
        drift = np.random.default_rng(drift_seed)
        weights = weights * drift.uniform(0.85, 1.15, size=weights.shape[0])
    pair_costs = np.minimum(sizes[pair_index[:, 0]], sizes[pair_index[:, 1]])
    capacity = 2.0 * float(sizes.sum()) / num_nodes
    return PlacementProblem(
        object_ids,
        sizes,
        list(range(num_nodes)),
        np.full(num_nodes, capacity),
        pair_index,
        weights,
        pair_costs,
    )


def _bench_fo_scale(seed: int, repeats: int) -> BenchCase:
    # The backend-scaling ablation: HiGHS tops out around the 400-object
    # exact-scope instance (at 4000 it does not finish in CI time), so
    # legacy is HiGHS at its largest case and fast is the first-order
    # backend planning 10x that scope.  Solution quality is gated on
    # the instance both can solve: fo cost <= 1.10x HiGHS LPRR there
    # (the ``equal`` gate).
    from repro.core.strategies import PlanConfig, plan

    config = PlanConfig(seed=seed, use_cache=False)
    small = _solve_problem(seed, 400)
    big = _solve_problem(seed, 4000)
    lprr_small = plan(small, "lprr", config)
    fo_small = plan(small, "lprr:fo", config)
    fo_big = plan(big, "lprr:fo", config)
    cost_ratio = (
        fo_small.cost / lprr_small.cost if lprr_small.cost > 0 else 1.0
    )
    legacy_s = _best_of(repeats, lambda: plan(small, "lprr", config))
    fast_s = _best_of(repeats, lambda: plan(big, "lprr:fo", config))
    return BenchCase(
        name="fo_scale",
        tag="solve",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=5.0,
        equal=bool(cost_ratio <= 1.10),
        detail={
            "highs_objects": small.num_objects,
            "fo_objects": big.num_objects,
            "fo_pairs": int(big.pair_index.shape[0]),
            "scope_factor": big.num_objects // small.num_objects,
            "lprr_cost_small": round(lprr_small.cost, 6),
            "fo_cost_small": round(fo_small.cost, 6),
            "cost_ratio_small": round(cost_ratio, 4),
            "fo_cost_big": round(fo_big.cost, 6),
            "fo_iterations": fo_big.diagnostics.get("fo_iterations", 0),
        },
    )


def _bench_warm_replan(seed: int, repeats: int) -> BenchCase:
    # The warm-start ablation: after a mild drift (same pairs, +-15%
    # weights) a warm-started first-order replan must converge in at
    # most half the cold iterations (the ``equal`` gate) and at least
    # 1.5x faster in wall time.
    from repro.core.lp import WarmStart
    from repro.core.strategies import PlanConfig, plan

    config = PlanConfig(seed=seed, use_cache=False)
    base = _solve_problem(seed, 4000)
    drifted = _solve_problem(seed, 4000, drift_seed=seed + 1)
    warm_start = WarmStart.from_fractional(
        plan(base, "lprr:fo", config).fractional
    )
    warm_config = config.with_options(warm_start=warm_start)
    cold = plan(drifted, "lprr:fo", config)
    warm = plan(drifted, "lprr:fo", warm_config)
    cold_iters = int(cold.diagnostics.get("fo_iterations", 0))
    warm_iters = int(warm.diagnostics.get("fo_iterations", 0))
    legacy_s = _best_of(repeats, lambda: plan(drifted, "lprr:fo", config))
    fast_s = _best_of(repeats, lambda: plan(drifted, "lprr:fo", warm_config))
    return BenchCase(
        name="warm_replan",
        tag="solve",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=1.5,
        equal=bool(
            warm.diagnostics.get("warm_start") == "hit"
            and cold_iters > 0
            and warm_iters <= 0.5 * cold_iters
        ),
        detail={
            "objects": drifted.num_objects,
            "pairs": int(drifted.pair_index.shape[0]),
            "cold_iterations": cold_iters,
            "warm_iterations": warm_iters,
            "iteration_ratio": round(
                warm_iters / cold_iters if cold_iters else 0.0, 4
            ),
            "cold_cost": round(cold.cost, 6),
            "warm_cost": round(warm.cost, 6),
            "warm_hits": warm.diagnostics.get("warm_hits", 0),
        },
    )


def _bench_rep_spread(seed: int, repeats: int) -> BenchCase:
    from repro.cluster.topology import synthetic_topology
    from repro.core.replication import (
        _spread_violations_loop,
        spread_replicated_placement,
        spread_violations,
    )
    from repro.resilience.degraded import mode_stats
    from repro.resilience.faults import ClusterView

    replicas = 2
    problem = _pg_problem(seed, num_objects=100_000)
    topology = synthetic_topology(problem.num_nodes, zones=2, racks_per_zone=2)
    plan_started = time.perf_counter()
    replicated = spread_replicated_placement(problem, topology, replicas=replicas)
    plan_s = time.perf_counter() - plan_started

    # A whole zone down — the correlated failure the spread constraint
    # exists to survive.  Pin the epoch evaluation wall time.
    down = frozenset(topology.zone_nodes(0))
    view = ClusterView(
        num_nodes=problem.num_nodes, down=down, down_domains=frozenset({"zone:0"})
    )
    epoch_started = time.perf_counter()
    stats = mode_stats(replicated, view, [])
    epoch_s = time.perf_counter() - epoch_started

    domains = topology.domain_ids(replicated.spread)
    legacy = _spread_violations_loop(replicated.assignment, domains)
    fast = spread_violations(replicated.assignment, domains)
    equal = bool(np.array_equal(legacy, fast))
    legacy_s = _best_of(
        repeats, lambda: _spread_violations_loop(replicated.assignment, domains)
    )
    fast_s = _best_of(
        repeats, lambda: spread_violations(replicated.assignment, domains)
    )
    return BenchCase(
        name="rep_spread",
        tag="rep",
        legacy_s=legacy_s,
        fast_s=fast_s,
        speedup=legacy_s / fast_s,
        min_speedup=None,
        equal=equal,
        detail={
            "objects": problem.num_objects,
            "nodes": problem.num_nodes,
            "replicas": replicas,
            "zones": topology.num_zones,
            "racks": topology.num_racks,
            "spread": replicated.spread,
            "violations": int(fast.size),
            "plan_s": round(plan_s, 3),
            "epoch_s": round(epoch_s, 3),
            "object_availability": round(stats.object_availability, 6),
        },
    )


def run_bench(
    seed: int = 0, repeats: int = 3, tags: Iterable[str] | None = None
) -> BenchReport:
    """Run the pinned scenario suite and return the report.

    Args:
        seed: Root seed for every pinned workload.
        repeats: Timing repeats per engine; the minimum wall time is
            reported (robust against one-off scheduler noise).
        tags: Restrict to these pipeline stages (default: all of
            :data:`TAGS`).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    selected = tuple(tags) if tags is not None else TAGS
    unknown = [tag for tag in selected if tag not in TAGS]
    if unknown:
        raise ValueError(f"unknown bench tags {unknown}; expected {TAGS}")

    cases: list[BenchCase] = []
    with obs.span("bench.suite", seed=seed, repeats=repeats):
        study = (
            _replay_study(seed)
            if any(tag in selected for tag in ("plan", "evaluate", "online-ingest"))
            else None
        )
        if "plan" in selected:
            cases.append(_bench_lp_assembly(seed, repeats))
            cases.append(_bench_rounding(seed, repeats))
            cases.append(_bench_correlation(study, repeats))
        if "evaluate" in selected:
            cases.append(_bench_log_replay(study, repeats))
        if "online-ingest" in selected:
            cases.append(_bench_cm_ingest(study, repeats))
            cases.append(_bench_estimator_ingest(study, repeats))
            cases.append(_bench_columnar_ingest(study, repeats))
        if "serve" in selected:
            cases.append(_bench_serve_routing(seed, repeats))
            cases.append(_bench_stream_planner(seed, repeats))
        if "pg" in selected:
            cases.append(_bench_pg_expand(seed, repeats))
        if "rep" in selected:
            cases.append(_bench_rep_spread(seed, repeats))
        if "solve" in selected:
            cases.append(_bench_fo_scale(seed, repeats))
            cases.append(_bench_warm_replan(seed, repeats))

    for case in cases:
        obs.gauge(f"bench.{case.name}.speedup").set(case.speedup)
        obs.gauge(f"bench.{case.name}.fast_seconds").set(case.fast_s)
        # Structured twin of the gauges: BENCH history accumulates as
        # journal events, one per scenario, plus a run-level record.
        obs.record(
            "bench.case",
            case=case.name,
            tag=case.tag,
            legacy_s=round(case.legacy_s, 6),
            fast_s=round(case.fast_s, 6),
            speedup=round(case.speedup, 3),
            min_speedup=case.min_speedup,
            equal=case.equal,
        )
    obs.counter("bench.cases").inc(len(cases))
    obs.record("bench.run", seed=seed, repeats=repeats, cases=len(cases))

    return BenchReport(
        seed=seed,
        repeats=repeats,
        peak_rss_kb=_peak_rss_kb(),
        cases=tuple(cases),
    )
