"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries while still
distinguishing problem-definition errors from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProblemDefinitionError(ReproError):
    """A placement problem instance is malformed or inconsistent.

    Raised, for example, when an object has a non-positive size, a node
    has a negative capacity, or a correlation references an unknown
    object.
    """


class InfeasibleProblemError(ReproError):
    """No placement can satisfy the capacity constraints.

    This covers both trivially detectable infeasibility (total object
    size exceeding total capacity) and infeasibility reported by the LP
    solver.
    """


class SolverError(ReproError):
    """The underlying LP solver failed or returned an unusable status."""


class CircuitOpenError(ReproError):
    """A circuit breaker is open and the protected call was rejected.

    Raised by :class:`repro.resilience.CircuitBreaker` when a dependency
    has failed repeatedly and the cooldown window has not yet elapsed.
    """


class PlacementError(ReproError):
    """A placement is invalid for the problem it is evaluated against."""


class ReplicationError(PlacementError, ValueError):
    """A replicated placement violates replication invariants.

    Raised for malformed ``(num_objects, replicas)`` assignment shapes,
    replicas of one object sharing a node, and — once a failure-domain
    topology is attached — replicas sharing a rack or zone.  Inherits
    :class:`ValueError` so pre-1.7 callers that caught the bare
    ``ValueError`` raised for bad replica counts keep working.
    """


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""
