"""Queries and query logs.

A query log is the workload driver of the paper's evaluation: 6.8M
web queries averaging 2.54 keywords each.  Logs are stored one query
per line, keywords whitespace-separated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.exceptions import TraceFormatError
from repro.search.tokenizer import tokenize


@dataclass(frozen=True)
class Query:
    """One search query: an ordered tuple of lowercase keywords."""

    keywords: tuple[str, ...]

    @classmethod
    def parse(cls, line: str) -> "Query":
        """Parse a whitespace-separated query line (lowercased)."""
        return cls(tuple(tokenize(line, remove_stopwords=False)))

    @property
    def distinct_keywords(self) -> frozenset[str]:
        """The distinct keywords of the query."""
        return frozenset(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keywords)


class QueryLog:
    """An in-memory sequence of queries with summary statistics."""

    def __init__(self, queries: Iterable[Query | Sequence[str]] = ()):
        self._queries: list[Query] = []
        for q in queries:
            self.append(q)

    def append(self, query: Query | Sequence[str]) -> None:
        """Add a query (keyword sequences are wrapped automatically)."""
        if not isinstance(query, Query):
            query = Query(tuple(str(k).lower() for k in query))
        self._queries.append(query)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def average_keywords(self) -> float:
        """Mean keywords per query (the paper's trace averages 2.54)."""
        if not self._queries:
            return 0.0
        return sum(len(q) for q in self._queries) / len(self._queries)

    def vocabulary(self) -> set[str]:
        """Distinct keywords appearing anywhere in the log."""
        vocab: set[str] = set()
        for q in self._queries:
            vocab |= q.distinct_keywords
        return vocab

    def keyword_frequencies(self) -> Counter:
        """How many queries each keyword appears in."""
        counts: Counter = Counter()
        for q in self._queries:
            counts.update(q.distinct_keywords)
        return counts

    def multi_keyword_fraction(self) -> float:
        """Fraction of queries with at least two distinct keywords."""
        if not self._queries:
            return 0.0
        multi = sum(1 for q in self._queries if len(q.distinct_keywords) >= 2)
        return multi / len(self._queries)

    def operations(self) -> Iterator[tuple[str, ...]]:
        """Queries as plain keyword tuples (for correlation estimators)."""
        for q in self._queries:
            yield q.keywords

    def restricted_to(self, vocabulary: set[str]) -> "QueryLog":
        """A new log with out-of-vocabulary keywords dropped.

        Queries left with no keywords are removed entirely.
        """
        log = QueryLog()
        for q in self._queries:
            kept = tuple(k for k in q.keywords if k in vocabulary)
            if kept:
                log.append(Query(kept))
        return log

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the log, one whitespace-separated query per line."""
        with open(path, "w", encoding="utf-8") as fh:
            for q in self._queries:
                fh.write(" ".join(q.keywords) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "QueryLog":
        """Read a log written by :meth:`save`.

        Raises:
            TraceFormatError: When the file cannot be read or a line
                contains no parseable keywords but is non-empty junk.
        """
        log = cls()
        try:
            with open(path, encoding="utf-8") as fh:
                for line_no, line in enumerate(fh, 1):
                    line = line.strip()
                    if not line:
                        continue
                    query = Query.parse(line)
                    if not query.keywords:
                        raise TraceFormatError(
                            f"{path}:{line_no}: no parseable keywords in {line!r}"
                        )
                    log.append(query)
        except OSError as exc:
            raise TraceFormatError(f"cannot read query log {path}: {exc}") from exc
        return log

    def __repr__(self) -> str:
        return f"QueryLog(queries={len(self)}, avg_keywords={self.average_keywords():.2f})"
