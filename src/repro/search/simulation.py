"""Query-latency simulation over placed indices.

The paper evaluates communication *volume*; a deployment also cares
about *latency*.  This module replays a query log through a simple
timing model: queries arrive as a Poisson process, every inter-node
shipment pays link latency plus serialized transmission on the sender's
uplink (one transfer at a time per node), and every intersection step
pays CPU scan time proportional to the postings touched.

The simulator is intentionally small — per-node uplinks with
first-come-first-served queueing, no packet-level detail — but it is
enough to show the placement effect the byte counts imply: co-locating
correlated indices removes hops from the critical path and contention
from the uplinks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.placement import Placement
from repro.search.engine import DistributedSearchEngine
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import QueryLog


@dataclass(frozen=True)
class TimingModel:
    """Physical parameters of the simulated cluster.

    Attributes:
        bandwidth_bytes_per_s: Uplink bandwidth per node.
        link_latency_s: One-way latency per inter-node shipment.
        scan_bytes_per_s: CPU rate for scanning postings during
            intersection.
    """

    bandwidth_bytes_per_s: float = 100e6
    link_latency_s: float = 0.2e-3
    scan_bytes_per_s: float = 2e9

    def transfer_time(self, num_bytes: float) -> float:
        """Wire time for one shipment."""
        return self.link_latency_s + num_bytes / self.bandwidth_bytes_per_s

    def scan_time(self, num_bytes: float) -> float:
        """CPU time to scan ``num_bytes`` of postings."""
        return num_bytes / self.scan_bytes_per_s


@dataclass(frozen=True)
class LatencyReport:
    """Latency distribution and node utilization of one replay.

    Attributes:
        latencies_s: Per-query end-to-end latency, in arrival order.
        uplink_busy_s: Total transmission time per node index.
        makespan_s: Completion time of the last query.
    """

    latencies_s: np.ndarray
    uplink_busy_s: np.ndarray
    makespan_s: float

    @property
    def mean_s(self) -> float:
        """Mean query latency."""
        return float(self.latencies_s.mean()) if self.latencies_s.size else 0.0

    def percentile_s(self, q: float) -> float:
        """Latency percentile (``q`` in [0, 100])."""
        if not self.latencies_s.size:
            return 0.0
        return float(np.percentile(self.latencies_s, q))

    def uplink_utilization(self) -> np.ndarray:
        """Per-node fraction of the makespan spent transmitting."""
        if self.makespan_s <= 0:
            return np.zeros_like(self.uplink_busy_s)
        return self.uplink_busy_s / self.makespan_s


def simulate_latencies(
    index: InvertedIndex,
    placement: Placement,
    log: QueryLog,
    arrival_rate_qps: float = 200.0,
    timing: TimingModel = TimingModel(),
    seed: int | None = 0,
) -> LatencyReport:
    """Replay a query log with Poisson arrivals and FCFS uplinks.

    Each query executes the engine's smallest-first pipelined
    intersection; every hop waits for the sending node's uplink (FCFS
    in stage-request order), pays transfer time, then the receiving
    node pays scan time for the intersection step.

    Args:
        index: The global inverted index.
        placement: Keyword placement to simulate.
        log: Queries to replay, in order.
        arrival_rate_qps: Poisson arrival rate.
        timing: Physical timing parameters.
        seed: Seed for the arrival process.

    Returns:
        A :class:`LatencyReport`.
    """
    if arrival_rate_qps <= 0:
        raise ValueError("arrival_rate_qps must be positive")
    rng = np.random.default_rng(seed)
    engine = DistributedSearchEngine(index, placement)
    lookup = engine.lookup
    num_nodes = placement.problem.num_nodes
    node_index = {nid: k for k, nid in enumerate(placement.problem.node_ids)}

    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate_qps, size=len(log)))
    uplink_free = np.zeros(num_nodes)
    uplink_busy = np.zeros(num_nodes)
    latencies = np.empty(len(log))
    makespan = 0.0

    for q, (query, arrival) in enumerate(zip(log, arrivals)):
        words = [w for w in dict.fromkeys(query.keywords) if w in index]
        clock = float(arrival)
        if words:
            words.sort(key=lambda w: (index.document_frequency(w), w))
            result = index.postings(words[0])
            current = lookup.get(words[0])
            clock += timing.scan_time(ITEM_BYTES * result.size)
            for word in words[1:]:
                target = lookup.get(word)
                postings = index.postings(word)
                if target is not None and target != current:
                    shipped = ITEM_BYTES * int(result.size)
                    if current is not None and shipped:
                        k = node_index[current]
                        start = max(clock, uplink_free[k])
                        wire = timing.transfer_time(shipped)
                        uplink_free[k] = start + wire
                        uplink_busy[k] += wire
                        clock = start + wire
                    else:
                        clock += timing.link_latency_s
                    current = target
                result = np.intersect1d(result, postings, assume_unique=True)
                clock += timing.scan_time(ITEM_BYTES * int(postings.size))
        latencies[q] = clock - arrival
        makespan = max(makespan, clock)

    return LatencyReport(
        latencies_s=latencies,
        uplink_busy_s=uplink_busy,
        makespan_s=float(makespan),
    )
