"""Document-partitioned search — the other architecture of footnote 1.

The paper studies keyword-based partitioning ("each node hosts the
inverted indices of some keywords"); the main alternative in practice
is document-based partitioning, where every node hosts a full small
index over its own subset of pages.  Queries broadcast to all nodes,
each intersects locally, and the per-node result fragments ship to a
coordinator for merging.

This module implements that architecture with the same byte accounting
as :class:`~repro.search.engine.DistributedSearchEngine`, so the two
designs — and the effect of correlation-aware placement, which only
exists in the keyword-partitioned world — can be compared head to head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.core.hashing import hash_node
from repro.search.documents import Corpus
from repro.search.engine import EngineStats, QueryExecution
from repro.search.index import ITEM_BYTES, InvertedIndex, page_id
from repro.search.query import Query, QueryLog

NodeId = Hashable


@dataclass(frozen=True)
class DocPartitionStats:
    """Aggregate statistics for a document-partitioned replay.

    Mirrors :class:`~repro.search.engine.EngineStats` for the fields
    both architectures share.
    """

    queries: int
    total_bytes: int
    local_queries: int

    @property
    def local_fraction(self) -> float:
        """Fraction of queries answered without communication."""
        return self.local_queries / self.queries if self.queries else 0.0

    @property
    def mean_bytes_per_query(self) -> float:
        """Average communication per query."""
        return self.total_bytes / self.queries if self.queries else 0.0


class DocumentPartitionedEngine:
    """Per-node full indices over disjoint document subsets.

    Args:
        corpus: The document collection.
        nodes: Number of nodes (documents are hash-partitioned), or an
            explicit document-id -> node mapping.
    """

    def __init__(self, corpus: Corpus, nodes: int | Mapping[str, NodeId]):
        if isinstance(nodes, int):
            if nodes < 1:
                raise ValueError("need at least one node")
            doc_to_node: dict[str, NodeId] = {
                doc.doc_id: hash_node(doc.doc_id, nodes) for doc in corpus
            }
            node_ids: list[NodeId] = list(range(nodes))
        else:
            doc_to_node = dict(nodes)
            node_ids = sorted(set(doc_to_node.values()), key=repr)
        self.node_ids = node_ids
        self._indices: dict[NodeId, InvertedIndex] = {}
        buckets: dict[NodeId, Corpus] = {k: Corpus() for k in node_ids}
        for doc in corpus:
            try:
                buckets[doc_to_node[doc.doc_id]].add(doc)
            except KeyError:
                raise ValueError(
                    f"document {doc.doc_id!r} has no node assignment"
                ) from None
        for node, bucket in buckets.items():
            self._indices[node] = InvertedIndex.from_corpus(bucket)

    @property
    def num_nodes(self) -> int:
        """Number of partitions."""
        return len(self.node_ids)

    def index_on(self, node: NodeId) -> InvertedIndex:
        """The local index of one node."""
        return self._indices[node]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query | Iterable[str]) -> QueryExecution:
        """Run one query: local intersections, fragments to coordinator.

        The coordinator is the node with the largest local fragment
        (it receives everyone else's fragments, so the biggest stays
        put); broadcastn of the query itself is considered free, as in
        the paper's accounting of small control messages.
        """
        if not isinstance(query, Query):
            query = Query(tuple(query))
        words = [w for w in dict.fromkeys(query.keywords)]
        fragments: dict[NodeId, np.ndarray] = {}
        for node, local_index in self._indices.items():
            known = [w for w in words if w in local_index]
            if len(known) != len(words):
                continue  # some keyword absent here -> empty fragment
            local = local_index.intersect(words)
            if local.size:
                fragments[node] = local

        if not fragments:
            return QueryExecution(query, 0, 0, 0, 0)
        coordinator = max(fragments, key=lambda k: (fragments[k].size, repr(k)))
        transferred = sum(
            ITEM_BYTES * int(frag.size)
            for node, frag in fragments.items()
            if node != coordinator
        )
        result_count = int(sum(frag.size for frag in fragments.values()))
        return QueryExecution(
            query=query,
            result_count=result_count,
            bytes_transferred=int(transferred),
            nodes_contacted=len(fragments),
            hops=max(len(fragments) - 1, 0),
        )

    def execute_log(self, log: QueryLog | Iterable[Query]) -> DocPartitionStats:
        """Run a whole log and aggregate."""
        queries = 0
        total_bytes = 0
        local = 0
        for query in log:
            execution = self.execute(query)
            queries += 1
            total_bytes += execution.bytes_transferred
            if execution.bytes_transferred == 0:
                local += 1
        return DocPartitionStats(queries, total_bytes, local)

    def total_result_check(self, global_index: InvertedIndex, query) -> bool:
        """Verify fragment union equals the global intersection."""
        execution = self.execute(query)
        reference = global_index.intersect(
            query.keywords if isinstance(query, Query) else query
        )
        return execution.result_count == int(reference.size)

    def __repr__(self) -> str:
        return f"DocumentPartitionedEngine(nodes={self.num_nodes})"
