"""Full-text search substrate: the paper's Section 4.1 prototype.

A complete, self-contained miniature of the evaluation system: HTML/text
tokenization with stopword removal, inverted indices whose postings are
8-byte MD5 page IDs, a query-log model, and a distributed search engine
that executes multi-keyword queries against placed indices while
accounting every byte of inter-node communication.
"""

from repro.search.docpartition import DocPartitionStats, DocumentPartitionedEngine
from repro.search.documents import Corpus, Document
from repro.search.engine import (
    DistributedSearchEngine,
    EngineStats,
    EvaluationSummary,
    QueryExecution,
)
from repro.search.index import InvertedIndex, page_id
from repro.search.indexio import load_index, save_index
from repro.search.query import Query, QueryLog
from repro.search.replicated_engine import ReplicatedSearchEngine
from repro.search.simulation import LatencyReport, TimingModel, simulate_latencies
from repro.search.stopwords import STOPWORDS, is_stopword
from repro.search.tokenizer import strip_html, tokenize

__all__ = [
    "Corpus",
    "DistributedSearchEngine",
    "DocPartitionStats",
    "DocumentPartitionedEngine",
    "Document",
    "EngineStats",
    "EvaluationSummary",
    "InvertedIndex",
    "LatencyReport",
    "Query",
    "ReplicatedSearchEngine",
    "QueryExecution",
    "QueryLog",
    "STOPWORDS",
    "TimingModel",
    "is_stopword",
    "load_index",
    "page_id",
    "save_index",
    "simulate_latencies",
    "strip_html",
    "tokenize",
]
