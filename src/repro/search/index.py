"""Inverted indices with 8-byte MD5 page IDs.

Matches the paper's implemented indices: "each item of an inverted
index contains an 8-byte page ID (the MD5 digest of the corresponding
page URL)", so a keyword's index size is ``8 * document_frequency``
bytes.  Postings are kept as sorted ``uint64`` arrays for fast
vectorized intersection.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

import numpy as np

from repro.search.documents import Corpus

ITEM_BYTES = 8


def page_id(doc_id: str) -> int:
    """The 8-byte page ID of a document: truncated MD5 of its id/URL."""
    digest = hashlib.md5(doc_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:ITEM_BYTES], "big")


class InvertedIndex:
    """Keyword -> sorted array of page IDs, with byte-size accounting."""

    def __init__(self, postings: Mapping[str, np.ndarray] | None = None):
        self._postings: dict[str, np.ndarray] = {}
        if postings:
            for word, ids in postings.items():
                self._postings[word] = np.unique(np.asarray(ids, dtype=np.uint64))

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "InvertedIndex":
        """Index every distinct word of every document in ``corpus``."""
        lists: dict[str, list[int]] = {}
        for doc in corpus:
            pid = page_id(doc.doc_id)
            for word in doc.words:
                lists.setdefault(word, []).append(pid)
        index = cls()
        for word, ids in lists.items():
            index._postings[word] = np.unique(np.asarray(ids, dtype=np.uint64))
        return index

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> list[str]:
        """Indexed keywords, sorted."""
        return sorted(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, word: str) -> bool:
        return word in self._postings

    def postings(self, word: str) -> np.ndarray:
        """Sorted page-ID array for ``word`` (empty if unindexed)."""
        return self._postings.get(word, np.empty(0, dtype=np.uint64))

    def document_frequency(self, word: str) -> int:
        """Number of pages containing ``word``."""
        return int(self.postings(word).size)

    def size_bytes(self, word: str) -> int:
        """Index size of ``word``: 8 bytes per posting."""
        return ITEM_BYTES * self.document_frequency(word)

    def sizes_bytes(self) -> dict[str, int]:
        """Index sizes of every keyword, in bytes."""
        return {word: ITEM_BYTES * ids.size for word, ids in self._postings.items()}

    @property
    def total_bytes(self) -> int:
        """Total size of all keyword indices."""
        return ITEM_BYTES * sum(ids.size for ids in self._postings.values())

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------
    def intersect(self, words: Iterable[str]) -> np.ndarray:
        """Pages containing every word — the paper's AND semantics.

        Evaluates smallest-first, the standard order that also
        underlies the two-smallest cost approximation of Section 3.2.
        An unindexed word yields an empty result.
        """
        word_list = list(dict.fromkeys(words))
        if not word_list:
            return np.empty(0, dtype=np.uint64)
        lists = [self.postings(w) for w in word_list]
        lists.sort(key=len)
        result = lists[0]
        for other in lists[1:]:
            if result.size == 0:
                break
            result = np.intersect1d(result, other, assume_unique=True)
        return result

    def union(self, words: Iterable[str]) -> np.ndarray:
        """Pages containing any of the words (OR semantics)."""
        arrays = [self.postings(w) for w in dict.fromkeys(words)]
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return np.empty(0, dtype=np.uint64)
        return np.unique(np.concatenate(arrays))

    def __repr__(self) -> str:
        return f"InvertedIndex(keywords={len(self)}, bytes={self.total_bytes})"
