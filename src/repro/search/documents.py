"""Documents and corpora for the search substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.search.tokenizer import tokenize


@dataclass(frozen=True)
class Document:
    """One web page: a URL-like identifier plus its distinct words.

    Only the distinct-word set matters for inverted indexing; term
    frequencies and positions were deliberately omitted by the paper
    ("these information only help ranking ... not the focus").
    """

    doc_id: str
    words: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def from_text(cls, doc_id: str, text: str, **tokenize_kwargs) -> "Document":
        """Build a document by tokenizing raw text or HTML."""
        return cls(doc_id, frozenset(tokenize(text, **tokenize_kwargs)))

    @property
    def num_distinct_words(self) -> int:
        """Number of distinct indexed words in this page."""
        return len(self.words)

    def contains(self, word: str) -> bool:
        """Whether the page contains ``word``."""
        return word in self.words


class Corpus:
    """An in-memory collection of documents with vocabulary statistics."""

    def __init__(self, documents: Iterable[Document] = ()):
        self._documents: dict[str, Document] = {}
        for doc in documents:
            self.add(doc)

    def add(self, document: Document) -> None:
        """Add (or replace) a document."""
        self._documents[document.doc_id] = document

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: str) -> Document:
        """Fetch a document by id (KeyError when absent)."""
        return self._documents[doc_id]

    @property
    def vocabulary(self) -> set[str]:
        """All distinct words across the corpus."""
        vocab: set[str] = set()
        for doc in self:
            vocab |= doc.words
        return vocab

    def document_frequency(self, word: str) -> int:
        """Number of documents containing ``word``."""
        return sum(1 for doc in self if word in doc.words)

    def average_distinct_words(self) -> float:
        """Mean distinct words per document (paper reports ~114)."""
        if not self._documents:
            return 0.0
        return sum(d.num_distinct_words for d in self) / len(self)

    def __repr__(self) -> str:
        return f"Corpus(documents={len(self)})"
