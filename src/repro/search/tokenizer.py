"""Text preprocessing: HTML stripping and tokenization.

Mirrors the paper's pipeline for web pages: "preprocessed by removing
HTML tags and trivially popular words using the stopword list".
"""

from __future__ import annotations

import re

from repro.search.stopwords import STOPWORDS

_TAG_RE = re.compile(r"<[^>]*>")
_SCRIPT_RE = re.compile(r"<(script|style)\b[^>]*>.*?</\1>", re.IGNORECASE | re.DOTALL)
_ENTITY_RE = re.compile(r"&[a-zA-Z]+;|&#\d+;")
_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def strip_html(text: str) -> str:
    """Remove script/style blocks, tags, and entities from HTML text."""
    text = _SCRIPT_RE.sub(" ", text)
    text = _TAG_RE.sub(" ", text)
    return _ENTITY_RE.sub(" ", text)


def tokenize(
    text: str,
    remove_stopwords: bool = True,
    min_length: int = 1,
    strip_markup: bool = False,
) -> list[str]:
    """Split text into lowercase word tokens.

    Args:
        text: Raw text (or HTML when ``strip_markup`` is True).
        remove_stopwords: Drop words in the stopword list.
        min_length: Minimum token length to keep.
        strip_markup: Run :func:`strip_html` first.

    Returns:
        Tokens in document order (duplicates preserved).
    """
    if strip_markup:
        text = strip_html(text)
    tokens = _WORD_RE.findall(text.lower())
    if remove_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    if min_length > 1:
        tokens = [t for t in tokens if len(t) >= min_length]
    return tokens


def distinct_words(text: str, **kwargs) -> set[str]:
    """The set of distinct tokens of ``text`` (same options as tokenize)."""
    return set(tokenize(text, **kwargs))
