"""The distributed search-engine prototype with communication accounting.

This is the measurement harness of the paper's evaluation: "Driven by
the query log, the prototype locates the nodes that contain the
inverted indices of the queried keywords, performs intersection
operations to generate search results, and logs the communication
overhead incurred during this process."

Execution model (smallest-first pipelined intersection): the running
result set starts at the node hosting the smallest queried index and
is shipped to each subsequent index's node in ascending size order;
every ship of ``k`` postings costs ``8k`` bytes.  The cost of returning
the final ranked results to the user is excluded, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro import obs
from repro.core.correlation import (
    cooccurrence_correlations,
    two_smallest_correlations,
    union_largest_correlations,
)
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import Query, QueryLog

NodeId = Hashable


@dataclass(frozen=True)
class QueryExecution:
    """Trace of one executed query.

    Attributes:
        query: The executed query.
        result_count: Number of pages in the final intersection.
        bytes_transferred: Inter-node communication, in bytes.
        nodes_contacted: Distinct nodes holding the queried indices.
        hops: Number of inter-node result shipments.
        served: False when the engine could not answer — every copy of
            a queried index was on failed nodes (degraded mode).
    """

    query: Query
    result_count: int
    bytes_transferred: int
    nodes_contacted: int
    hops: int
    served: bool = True

    @property
    def is_local(self) -> bool:
        """Whether the query completed without communication."""
        return self.bytes_transferred == 0


@dataclass
class EngineStats:
    """Aggregate statistics over a stream of executed queries."""

    queries: int = 0
    total_bytes: int = 0
    local_queries: int = 0
    total_hops: int = 0
    unserved_queries: int = 0
    rejected_queries: int = 0
    per_node_bytes_sent: dict[NodeId, int] = field(default_factory=dict)

    def record(self, execution: QueryExecution, sender_bytes: list[tuple[NodeId, int]]) -> None:
        """Fold one execution into the totals."""
        self.record_repeated(execution, sender_bytes, 1)

    def record_repeated(
        self,
        execution: QueryExecution,
        sender_bytes: list[tuple[NodeId, int]],
        count: int,
    ) -> None:
        """Fold ``count`` identical executions into the totals.

        All statistics are integer sums, so this is exactly equivalent
        to calling :meth:`record` ``count`` times — it is how the
        deduplicating replay path accounts repeated queries.
        """
        self.queries += count
        self.total_bytes += execution.bytes_transferred * count
        self.total_hops += execution.hops * count
        if not execution.served:
            self.unserved_queries += count
        elif execution.is_local:
            self.local_queries += count
        for node, sent in sender_bytes:
            self.per_node_bytes_sent[node] = (
                self.per_node_bytes_sent.get(node, 0) + sent * count
            )

    def record_rejected(self, count: int = 1) -> None:
        """Account queries shed *before* reaching the engine.

        Admission-control rejections (and queries retried around a plan
        swap) never execute, so they must not inflate ``queries`` or
        ``unserved_queries`` — counting them there would double-penalize
        :attr:`availability`, which measures whether the *placement*
        could serve what it was actually asked.  They are tracked
        separately and surface in :attr:`service_level` instead.
        """
        self.rejected_queries += count

    @property
    def local_fraction(self) -> float:
        """Fraction of queries answered without communication."""
        return self.local_queries / self.queries if self.queries else 0.0

    @property
    def availability(self) -> float:
        """Fraction of *executed* queries that were servable at all.

        Rejected queries are excluded from both numerator and
        denominator: shedding load is an admission decision, not a
        placement failure.
        """
        if self.queries == 0:
            return 1.0
        return (self.queries - self.unserved_queries) / self.queries

    @property
    def service_level(self) -> float:
        """Fraction of *submitted* queries that were fully served.

        Unlike :attr:`availability` this charges admission-control
        rejections against the system, so it is the end-to-end number a
        serving layer reports.
        """
        submitted = self.queries + self.rejected_queries
        if submitted == 0:
            return 1.0
        return (self.queries - self.unserved_queries) / submitted

    @property
    def mean_bytes_per_query(self) -> float:
        """Average communication per query."""
        return self.total_bytes / self.queries if self.queries else 0.0


@dataclass(frozen=True)
class EvaluationSummary:
    """Headline numbers of one trace replay, in report-ready form.

    This is the stable surface the CLI prints and that the
    ``--metrics-out`` JSON report mirrors (``engine.queries`` /
    ``engine.bytes`` counters, ``engine.query.bytes`` histogram).
    """

    queries: int
    total_bytes: int
    total_hops: int
    local_fraction: float
    mean_bytes_per_query: float

    @classmethod
    def from_stats(cls, stats: EngineStats) -> "EvaluationSummary":
        """Freeze an :class:`EngineStats` accumulator into a summary."""
        return cls(
            queries=stats.queries,
            total_bytes=stats.total_bytes,
            total_hops=stats.total_hops,
            local_fraction=stats.local_fraction,
            mean_bytes_per_query=stats.mean_bytes_per_query,
        )

    def render(self) -> str:
        """One-line human summary (the ``repro evaluate`` output)."""
        return (
            f"replayed {self.queries} queries: {self.total_bytes} bytes moved, "
            f"{self.local_fraction:.1%} local, "
            f"{self.mean_bytes_per_query:.1f} bytes/query"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (see :mod:`repro.core.serialization`)."""
        from repro.core.serialization import evaluation_summary_to_dict

        return evaluation_summary_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluationSummary":
        """Rebuild from :meth:`to_dict` output."""
        from repro.core.serialization import evaluation_summary_from_dict

        return evaluation_summary_from_dict(data)


class DistributedSearchEngine:
    """Keyword indices spread over nodes, with a lookup table.

    Args:
        index: The (logically global) inverted index.
        placement: Where each keyword's index lives — either a
            :class:`~repro.core.placement.Placement` over keyword
            objects or a plain keyword -> node mapping.  Keywords
            absent from the mapping are treated as unindexed.
    """

    def __init__(
        self,
        index: InvertedIndex,
        placement: Placement | Mapping[str, NodeId],
    ):
        self.index = index
        if isinstance(placement, Placement):
            self.lookup: dict[str, NodeId] = placement.to_mapping()
        else:
            self.lookup = dict(placement)
        # Per-index-build cache of each word's execution sort key.
        # Document frequencies are fixed for the life of the engine, so
        # re-deriving ``(df, word)`` on every query only re-hashes the
        # same strings; the cache fills lazily on first use of a word.
        self._sort_key_cache: dict[str, tuple[int, str]] = {}

    def node_of(self, keyword: str) -> NodeId | None:
        """The node hosting ``keyword``'s index, or None if unplaced."""
        return self.lookup.get(keyword)

    def _sort_key(self, word: str) -> tuple[int, str]:
        """Cached ``(document_frequency, word)`` execution order key."""
        key = self._sort_key_cache.get(word)
        if key is None:
            key = (self.index.document_frequency(word), word)
            self._sort_key_cache[word] = key
        return key

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query | Iterable[str]) -> QueryExecution:
        """Run one multi-keyword query and account its communication."""
        execution, _ = self._execute_with_senders(query)
        return execution

    def _execute_with_senders(
        self, query: Query | Iterable[str]
    ) -> tuple[QueryExecution, list[tuple[NodeId, int]]]:
        if not isinstance(query, Query):
            query = Query(tuple(query))
        words = [w for w in dict.fromkeys(query.keywords) if w in self.index]
        senders: list[tuple[NodeId, int]] = []
        if not words:
            return QueryExecution(query, 0, 0, 0, 0), senders

        words.sort(key=self._sort_key)
        targets = [self.lookup.get(w) for w in words]
        nodes = set(targets)
        nodes.discard(None)

        result = self.index.postings(words[0])
        current_node = targets[0]
        transferred = 0
        hops = 0
        for word, target in zip(words[1:], targets[1:]):
            if target is not None and target != current_node:
                shipped = ITEM_BYTES * int(result.size)
                transferred += shipped
                if shipped:
                    senders.append((current_node, shipped))
                hops += 1
                current_node = target
            result = np.intersect1d(result, self.index.postings(word), assume_unique=True)

        execution = QueryExecution(
            query=query,
            result_count=int(result.size),
            bytes_transferred=transferred,
            nodes_contacted=len(nodes),
            hops=hops,
        )
        return execution, senders

    def execute_union(self, query: Query | Iterable[str]) -> QueryExecution:
        """Run one OR-semantics query (Section 3.2's union model).

        Every queried index ships to the node of the largest one, which
        merges locally; each mover costs its full index size.
        """
        if not isinstance(query, Query):
            query = Query(tuple(query))
        words = [w for w in dict.fromkeys(query.keywords) if w in self.index]
        if not words:
            return QueryExecution(query, 0, 0, 0, 0)
        words.sort(key=self._sort_key)
        largest = words[-1]
        coordinator = self.lookup.get(largest)
        nodes = {self.lookup.get(w) for w in words}
        nodes.discard(None)
        transferred = 0
        hops = 0
        for word in words[:-1]:
            source = self.lookup.get(word)
            if source is not None and source != coordinator:
                transferred += ITEM_BYTES * self.index.document_frequency(word)
                hops += 1
        result = self.index.union(words)
        return QueryExecution(
            query=query,
            result_count=int(result.size),
            bytes_transferred=transferred,
            nodes_contacted=len(nodes),
            hops=hops,
        )

    def execute_log(
        self,
        log: QueryLog | Iterable[Query],
        mode: str = "intersection",
        dedup: bool = True,
    ) -> EngineStats:
        """Run every query of a log and aggregate statistics.

        The engine's lookup table and index are fixed for the life of
        a replay, so a query's execution is a pure function of its
        keyword tuple.  The default batched path therefore executes
        each *distinct* keyword tuple once and folds it into the
        statistics with its multiplicity — Zipf-distributed logs
        repeat queries heavily, so this cuts the dominant per-query
        intersection work by the log's repetition factor while
        producing exactly the statistics of the one-at-a-time replay
        (all aggregates are integer sums over executions).

        Args:
            log: Queries to execute.
            mode: ``"intersection"`` (AND semantics, default) or
                ``"union"`` (OR semantics).
            dedup: When False, execute every query individually (the
                legacy loop — the equivalence oracle and bench
                baseline for the batched path).

        A :class:`~repro.workloads.traces.TraceColumns` instance is
        also accepted as ``log``: with ``dedup`` the grouping then runs
        on the interned code arrays (one ``bytes`` key per operation
        slice) instead of constructing a :class:`Query` per row, and
        only each distinct operation materializes a query.  Statistics
        are identical to replaying ``log.operations()``.
        """
        if mode not in ("intersection", "union"):
            raise ValueError(f"unknown query mode {mode!r}")
        from repro.workloads.traces import TraceColumns

        stats = EngineStats()
        bytes_hist = obs.histogram("engine.query.bytes")
        hops_hist = obs.histogram("engine.query.hops")
        nodes_hist = obs.histogram("engine.query.nodes_contacted")
        with obs.span("replay", mode=mode, dedup=dedup) as replay_span:
            if dedup and isinstance(log, TraceColumns):
                # Columnar grouping: the code slice's raw bytes are the
                # group key (codes are an injective id encoding, so two
                # slices match exactly when the keyword tuples do).
                ids = log.ids
                code_groups: dict[bytes, list] = {}
                for _, codes in log.operation_slices():
                    key = codes.tobytes()
                    entry = code_groups.get(key)
                    if entry is None:
                        code_groups[key] = [
                            Query(tuple(ids[c] for c in codes)), 1
                        ]
                    else:
                        entry[1] += 1
                pairs = [(query, count) for query, count in code_groups.values()]
                obs.counter("engine.unique_queries").inc(len(pairs))
            elif dedup:
                # Keyword tuple -> [representative query, multiplicity],
                # in first-occurrence order so node accounting fills in
                # the same order as the sequential replay.
                groups: dict[tuple[str, ...], list] = {}
                for query in log:
                    if not isinstance(query, Query):
                        query = Query(tuple(query))
                    entry = groups.get(query.keywords)
                    if entry is None:
                        groups[query.keywords] = [query, 1]
                    else:
                        entry[1] += 1
                pairs = [(query, count) for query, count in groups.values()]
                obs.counter("engine.unique_queries").inc(len(pairs))
            else:
                pairs = [(query, 1) for query in log]
            for query, count in pairs:
                if mode == "intersection":
                    execution, senders = self._execute_with_senders(query)
                else:
                    execution, senders = self.execute_union(query), []
                stats.record_repeated(execution, senders, count)
                bytes_hist.observe_many(execution.bytes_transferred, count)
                hops_hist.observe_many(execution.hops, count)
                nodes_hist.observe_many(execution.nodes_contacted, count)
            replay_span.set(
                queries=stats.queries,
                total_bytes=stats.total_bytes,
                local_fraction=stats.local_fraction,
            )
        obs.counter("engine.queries").inc(stats.queries)
        obs.counter("engine.local_queries").inc(stats.local_queries)
        obs.counter("engine.bytes").inc(stats.total_bytes)
        obs.counter("engine.hops").inc(stats.total_hops)
        return stats


def build_placement_problem(
    index: InvertedIndex,
    log: QueryLog,
    nodes: Mapping[NodeId, float] | int,
    correlation_mode: str = "two_smallest",
    min_support: int = 1,
) -> PlacementProblem:
    """Bridge the search substrate into a CCA instance.

    Object sizes are keyword index sizes in bytes; correlations follow
    the chosen Section 3.2 estimator over the query log; pair cost is
    the default smaller-index size, matching what the engine actually
    ships.

    Args:
        index: The inverted index providing keyword sizes.
        log: The query trace providing correlations.
        nodes: Node -> capacity mapping, or an int for uncapacitated
            nodes.
        correlation_mode: ``"two_smallest"`` (paper's choice for
            intersection queries), ``"cooccurrence"``, or
            ``"union_largest"``.
        min_support: Minimum pair observations to keep a correlation.
    """
    sizes = {w: float(b) for w, b in index.sizes_bytes().items()}
    trace = list(log.operations())
    if correlation_mode == "two_smallest":
        correlations = two_smallest_correlations(trace, sizes, min_support)
    elif correlation_mode == "cooccurrence":
        correlations = cooccurrence_correlations(trace, min_support)
    elif correlation_mode == "union_largest":
        correlations = union_largest_correlations(trace, sizes, min_support)
    else:
        raise ValueError(f"unknown correlation mode {correlation_mode!r}")
    return PlacementProblem.build(sizes, nodes, correlations)
