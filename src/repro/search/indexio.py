"""Inverted-index persistence.

Index construction is the expensive part of the search substrate; this
module saves a built :class:`~repro.search.index.InvertedIndex` to a
single compressed ``.npz`` file (one posting array per keyword plus a
vocabulary manifest) and loads it back without re-tokenizing anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import TraceFormatError
from repro.search.index import InvertedIndex

FORMAT_KEY = "__repro_index_format__"
FORMAT_VERSION = 1
VOCAB_KEY = "__vocabulary_json__"


def save_index(index: InvertedIndex, path: str | Path) -> None:
    """Write an index to a compressed ``.npz`` file.

    Keyword names live in a JSON manifest inside the archive (npz keys
    cannot hold arbitrary strings safely), postings as uint64 arrays
    keyed by position.
    """
    vocabulary = index.vocabulary
    arrays: dict[str, np.ndarray] = {
        FORMAT_KEY: np.array([FORMAT_VERSION], dtype=np.int64),
        VOCAB_KEY: np.frombuffer(
            json.dumps(vocabulary).encode("utf-8"), dtype=np.uint8
        ).copy(),
    }
    for position, word in enumerate(vocabulary):
        arrays[f"p{position}"] = index.postings(word)
    np.savez_compressed(path, **arrays)


def load_index(path: str | Path) -> InvertedIndex:
    """Read an index written by :func:`save_index`.

    Raises:
        TraceFormatError: On missing files, foreign archives, or
            version mismatches.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            if FORMAT_KEY not in archive:
                raise TraceFormatError(f"{path} is not a repro index archive")
            version = int(archive[FORMAT_KEY][0])
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"index format v{version} unsupported (expected v{FORMAT_VERSION})"
                )
            vocabulary = json.loads(bytes(archive[VOCAB_KEY]).decode("utf-8"))
            postings = {
                word: archive[f"p{position}"]
                for position, word in enumerate(vocabulary)
            }
    except OSError as exc:
        raise TraceFormatError(f"cannot read index {path}: {exc}") from exc
    except (KeyError, json.JSONDecodeError, ValueError) as exc:
        raise TraceFormatError(f"corrupt index archive {path}: {exc}") from exc
    return InvertedIndex(postings)
