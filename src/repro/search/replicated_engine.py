"""Query execution over replicated keyword indices.

With a :class:`~repro.core.replication.ReplicatedPlacement`, every
keyword index exists on several nodes, and the engine can *route*: for
each query it picks one copy per keyword so the pipelined intersection
stays on as few nodes as possible.  Routing is the read-side payoff of
replication — the placement decides what is possible, routing decides
what each query actually pays.

Routing policy (greedy, per query): start at the node that holds a
copy of the smallest keyword and is shared by the most other queried
keywords; at each pipeline step, stay local when the next keyword has
a copy on the current node, otherwise jump to the copy node shared by
the most remaining keywords.

Degraded mode: the engine is also the failover layer of the resilience
subsystem.  Nodes can be marked down (:meth:`mark_down`) or slow
(:meth:`mark_slow`); routing then re-picks *surviving* copies per
query, prefers fast copies over slow ones at equal coverage, and a
query whose keyword has copies but none alive comes back with
``served=False`` instead of an exception — degraded service, not an
outage.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro import obs
from repro.core.replication import ReplicatedPlacement
from repro.search.engine import EngineStats, QueryExecution
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import Query, QueryLog

NodeId = Hashable


class ReplicatedSearchEngine:
    """Distributed engine with replica-aware, failure-aware routing.

    Args:
        index: The global inverted index.
        placement: Replicated keyword placement; keywords absent from
            the placement's problem are treated as unindexed.
        down_nodes: Node indices considered failed from the start
            (equivalent to calling :meth:`mark_down` immediately).
    """

    def __init__(
        self,
        index: InvertedIndex,
        placement: ReplicatedPlacement,
        down_nodes: Iterable[int] = (),
    ):
        self.index = index
        self.placement = placement
        problem = placement.problem
        self._copies: dict[str, frozenset[int]] = {
            obj: frozenset(int(k) for k in placement.assignment[i])
            for i, obj in enumerate(problem.object_ids)
        }
        self._node_ids = problem.node_ids
        self._down: set[int] = {int(k) for k in down_nodes}
        self._slow: set[int] = set()

    def copies_of(self, keyword: str) -> frozenset[int]:
        """Node indices holding copies of ``keyword`` (empty if none)."""
        return self._copies.get(keyword, frozenset())

    # ------------------------------------------------------------------
    # Degraded-mode controls
    # ------------------------------------------------------------------
    @property
    def down_nodes(self) -> frozenset[int]:
        """Node indices currently marked failed."""
        return frozenset(self._down)

    @property
    def slow_nodes(self) -> frozenset[int]:
        """Node indices currently marked slow (routed around)."""
        return frozenset(self._slow)

    def mark_down(self, *nodes: int) -> None:
        """Mark nodes failed; their copies stop being routing targets."""
        for k in nodes:
            self._down.add(int(k))
        obs.counter("engine.nodes_marked_down").inc(len(nodes))

    def mark_up(self, *nodes: int) -> None:
        """Bring nodes back; their copies become routable again."""
        for k in nodes:
            self._down.discard(int(k))

    def mark_slow(self, *nodes: int) -> None:
        """Mark nodes slow; routing prefers other copies when coverage ties."""
        for k in nodes:
            self._slow.add(int(k))

    def clear_slow(self) -> None:
        """Forget all slow-node markings."""
        self._slow.clear()

    def apply_view(self, view) -> None:
        """Adopt a :class:`~repro.resilience.faults.ClusterView` wholesale.

        Replaces the engine's down/slow sets with the view's, so a
        chaos epoch can hand the engine its exact cluster health
        instead of issuing incremental ``mark_*`` calls.  Isolated
        nodes are treated as down for routing purposes — the engine
        pipelines across nodes, which a partition forbids.
        """
        self._down = {int(k) for k in view.down} | {
            int(k) for k in view.isolated
        }
        self._slow = {int(k) for k in view.slow}

    def alive_copies_of(self, keyword: str) -> frozenset[int]:
        """Surviving (non-failed) copy holders of ``keyword``."""
        return self._copies.get(keyword, frozenset()) - self._down

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query | Iterable[str]) -> QueryExecution:
        """Run one query with greedy replica routing over live copies."""
        if not isinstance(query, Query):
            query = Query(tuple(query))
        alive: dict[str, frozenset[int]] = {}
        for w in dict.fromkeys(query.keywords):
            if w not in self.index:
                continue
            copies = self._copies.get(w)
            if not copies:
                continue  # unindexed keyword: skipped, as always
            survivors = copies - self._down
            if not survivors:
                # Placed but every copy is on a failed node: the query
                # is unservable right now — failover has nowhere to go.
                obs.counter("engine.unserved_queries").inc()
                return QueryExecution(query, 0, 0, 0, 0, served=False)
            alive[w] = survivors
        words = list(alive)
        if not words:
            return QueryExecution(query, 0, 0, 0, 0)
        words.sort(key=lambda w: (self.index.document_frequency(w), w))

        def shared_count(node: int, remaining: list[str]) -> int:
            return sum(1 for w in remaining if node in alive[w])

        def route_key(node: int, remaining: list[str]) -> tuple:
            # Coverage first, then avoid slow nodes, then lowest index
            # (negated because this keys a max()).
            return (shared_count(node, remaining), node not in self._slow, -node)

        # Start node: a live copy holder of the smallest keyword
        # covering the most of the rest of the query.
        first_copies = sorted(alive[words[0]])
        current = max(first_copies, key=lambda k: route_key(k, words[1:]))
        result = self.index.postings(words[0])
        transferred = 0
        hops = 0
        visited = {current}

        for position, word in enumerate(words[1:], start=1):
            copies = alive[word]
            if current not in copies:
                remaining = words[position + 1 :]
                target = max(
                    sorted(copies), key=lambda k: route_key(k, remaining)
                )
                shipped = ITEM_BYTES * int(result.size)
                transferred += shipped
                hops += 1
                current = target
            visited.add(current)
            result = np.intersect1d(
                result, self.index.postings(word), assume_unique=True
            )

        return QueryExecution(
            query=query,
            result_count=int(result.size),
            bytes_transferred=transferred,
            nodes_contacted=len(visited),
            hops=hops,
        )

    def execute_log(self, log: QueryLog | Iterable[Query]) -> EngineStats:
        """Run every query of a log and aggregate statistics."""
        stats = EngineStats()
        for query in log:
            execution = self.execute(query)
            stats.record(execution, [])
        return stats
