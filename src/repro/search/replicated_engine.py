"""Query execution over replicated keyword indices.

With a :class:`~repro.core.replication.ReplicatedPlacement`, every
keyword index exists on several nodes, and the engine can *route*: for
each query it picks one copy per keyword so the pipelined intersection
stays on as few nodes as possible.  Routing is the read-side payoff of
replication — the placement decides what is possible, routing decides
what each query actually pays.

Routing policy (greedy, per query): start at the node that holds a
copy of the smallest keyword and is shared by the most other queried
keywords; at each pipeline step, stay local when the next keyword has
a copy on the current node, otherwise jump to the copy node shared by
the most remaining keywords.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.core.replication import ReplicatedPlacement
from repro.search.engine import EngineStats, QueryExecution
from repro.search.index import ITEM_BYTES, InvertedIndex
from repro.search.query import Query, QueryLog

NodeId = Hashable


class ReplicatedSearchEngine:
    """Distributed engine with replica-aware routing.

    Args:
        index: The global inverted index.
        placement: Replicated keyword placement; keywords absent from
            the placement's problem are treated as unindexed.
    """

    def __init__(self, index: InvertedIndex, placement: ReplicatedPlacement):
        self.index = index
        self.placement = placement
        problem = placement.problem
        self._copies: dict[str, frozenset[int]] = {
            obj: frozenset(int(k) for k in placement.assignment[i])
            for i, obj in enumerate(problem.object_ids)
        }
        self._node_ids = problem.node_ids

    def copies_of(self, keyword: str) -> frozenset[int]:
        """Node indices holding copies of ``keyword`` (empty if none)."""
        return self._copies.get(keyword, frozenset())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, query: Query | Iterable[str]) -> QueryExecution:
        """Run one query with greedy replica routing."""
        if not isinstance(query, Query):
            query = Query(tuple(query))
        words = [
            w
            for w in dict.fromkeys(query.keywords)
            if w in self.index and self._copies.get(w)
        ]
        if not words:
            return QueryExecution(query, 0, 0, 0, 0)
        words.sort(key=lambda w: (self.index.document_frequency(w), w))

        def shared_count(node: int, remaining: list[str]) -> int:
            return sum(1 for w in remaining if node in self._copies[w])

        # Start node: a copy holder of the smallest keyword covering the
        # most of the rest of the query.
        first_copies = sorted(self._copies[words[0]])
        current = max(first_copies, key=lambda k: (shared_count(k, words[1:]), -k))
        result = self.index.postings(words[0])
        transferred = 0
        hops = 0
        visited = {current}

        for position, word in enumerate(words[1:], start=1):
            copies = self._copies[word]
            if current not in copies:
                remaining = words[position + 1 :]
                target = max(
                    sorted(copies), key=lambda k: (shared_count(k, remaining), -k)
                )
                shipped = ITEM_BYTES * int(result.size)
                transferred += shipped
                hops += 1
                current = target
            visited.add(current)
            result = np.intersect1d(
                result, self.index.postings(word), assume_unique=True
            )

        return QueryExecution(
            query=query,
            result_count=int(result.size),
            bytes_transferred=transferred,
            nodes_contacted=len(visited),
            hops=hops,
        )

    def execute_log(self, log: QueryLog | Iterable[Query]) -> EngineStats:
        """Run every query of a log and aggregate statistics."""
        stats = EngineStats()
        for query in log:
            execution = self.execute(query)
            stats.record(execution, [])
        return stats
