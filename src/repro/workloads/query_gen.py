"""Topic-model query-log generation.

Stands in for the Ask.com query traces.  The generator is built to
reproduce the two trace properties the paper's approach depends on
(Section 1, Figure 2):

* **Skewness** — keyword-pair correlations are highly skewed: queries
  draw from *topics* (small keyword groups) whose popularity is
  Zipf-distributed, so a few pairs co-occur orders of magnitude more
  often than the tail.
* **Stability** — a second period generated from a *drifted* copy of
  the model keeps almost all pair correlations near their period-one
  values, with a small configurable fraction changing by more than 2x.

Query lengths follow a distribution with mean ~2.54 keywords, matching
the paper's trace statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.query import Query, QueryLog
from repro.workloads.zipf import ZipfSampler, zipf_probabilities

# P(length = 1..6); mean = 2.56, close to the paper's 2.54.
LENGTH_DISTRIBUTION = np.array([0.25, 0.30, 0.22, 0.13, 0.07, 0.03])


@dataclass(frozen=True)
class Topic:
    """A group of keywords that tend to be queried together."""

    keywords: tuple[str, ...]
    popularity: float


class QueryWorkloadModel:
    """A generative model of multi-keyword search queries.

    Args:
        vocabulary: All keywords queries may use (e.g. the corpus
            vocabulary, so generated queries hit real indices).
        num_topics: Number of correlated keyword groups.
        topic_size_range: Inclusive (min, max) keywords per topic.
        topic_exponent: Zipf skew of topic popularity (drives pair-
            correlation skew).
        topic_query_fraction: Probability a query is topical; the rest
            are independent Zipf draws from the vocabulary (noise).
        word_exponent: Zipf skew for noise/padding word draws.  Kept
            mild by default: the pair-correlation skew that drives the
            paper's results comes from topic popularity, and strongly
            skewed noise words would bridge every topic into one giant
            correlated component (real query workloads are cluster-
            structured).
        membership_exponent: Zipf skew used when drawing topic member
            keywords; milder than ``word_exponent`` so hub words do not
            join every topic.
        max_topics_per_word: Cap on how many topics may share one
            keyword.  Real query workloads are cluster-structured
            ("car dealer", "software download"); without this cap the
            most popular words would chain every topic into one giant
            correlated component.
        seed: Seed controlling topic construction.
    """

    def __init__(
        self,
        vocabulary: list[str],
        num_topics: int = 200,
        topic_size_range: tuple[int, int] = (2, 4),
        topic_exponent: float = 1.1,
        topic_query_fraction: float = 0.7,
        word_exponent: float = 0.35,
        membership_exponent: float = 0.4,
        max_topics_per_word: int = 2,
        seed: int | None = 0,
    ):
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        lo, hi = topic_size_range
        if lo < 2 or hi < lo:
            raise ValueError("topic_size_range must satisfy 2 <= min <= max")
        self.vocabulary = sorted(vocabulary)
        self.topic_query_fraction = topic_query_fraction
        self.word_exponent = word_exponent
        self.membership_exponent = membership_exponent
        self.max_topics_per_word = max_topics_per_word

        if max_topics_per_word < 1:
            raise ValueError("max_topics_per_word must be at least 1")
        rng = np.random.default_rng(seed)
        member_sampler = ZipfSampler(len(self.vocabulary), membership_exponent, rng)
        popularity = zipf_probabilities(num_topics, topic_exponent)
        usage = np.zeros(len(self.vocabulary), dtype=np.int64)
        topics: list[Topic] = []
        for t in range(num_topics):
            size = int(rng.integers(lo, hi + 1))
            size = min(size, len(self.vocabulary))
            members = self._draw_members(member_sampler, usage, size, max_topics_per_word)
            usage[members] += 1
            topics.append(
                Topic(
                    tuple(self.vocabulary[i] for i in sorted(members)),
                    float(popularity[t]),
                )
            )
        self.topics = tuple(topics)

    @staticmethod
    def _draw_members(
        sampler: ZipfSampler,
        usage: np.ndarray,
        size: int,
        max_topics_per_word: int,
    ) -> np.ndarray:
        """Draw topic members, respecting the per-word topic cap."""
        chosen: dict[int, None] = {}
        for _ in range(50):
            for idx in np.atleast_1d(sampler.sample(4 * size)):
                idx = int(idx)
                if usage[idx] < max_topics_per_word:
                    chosen.setdefault(idx, None)
                    if len(chosen) == size:
                        return np.fromiter(chosen, dtype=np.int64, count=size)
        # Fallback: least-used words (guaranteed progress).
        fallback = np.argsort(usage, kind="stable")[: size - len(chosen)]
        for idx in fallback:
            chosen.setdefault(int(idx), None)
        return np.fromiter(chosen, dtype=np.int64, count=len(chosen))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _topic_probabilities(self) -> np.ndarray:
        weights = np.array([t.popularity for t in self.topics])
        return weights / weights.sum()

    def generate(
        self, num_queries: int, rng: np.random.Generator | int | None = None
    ) -> QueryLog:
        """Generate a query log of ``num_queries`` queries."""
        rng = np.random.default_rng(rng)
        word_sampler = ZipfSampler(len(self.vocabulary), self.word_exponent, rng)
        topic_probs = self._topic_probabilities()
        lengths = 1 + rng.choice(
            len(LENGTH_DISTRIBUTION), size=num_queries, p=LENGTH_DISTRIBUTION
        )
        topical = rng.random(num_queries) < self.topic_query_fraction
        topic_choice = rng.choice(len(self.topics), size=num_queries, p=topic_probs)

        log = QueryLog()
        for q in range(num_queries):
            length = int(lengths[q])
            words: list[str] = []
            if topical[q]:
                topic = self.topics[topic_choice[q]]
                take = min(length, len(topic.keywords))
                picked = rng.choice(len(topic.keywords), size=take, replace=False)
                words.extend(topic.keywords[i] for i in picked)
            while len(words) < length:
                candidate = self.vocabulary[int(word_sampler.sample())]
                if candidate not in words:
                    words.append(candidate)
            log.append(Query(tuple(words)))
        return log

    # ------------------------------------------------------------------
    # Temporal drift
    # ------------------------------------------------------------------
    def drifted(
        self, change_fraction: float = 0.02, seed: int | None = 1
    ) -> "QueryWorkloadModel":
        """A period-two model: most topics keep their popularity.

        A ``change_fraction`` of topics get their popularity rescaled
        by a factor outside [0.5, 2] — these are the pairs Figure 2B
        counts as unstable (the paper measured 1.2%).

        Returns:
            A structurally-shared copy with drifted topic popularity.
        """
        if not 0 <= change_fraction <= 1:
            raise ValueError("change_fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        clone = object.__new__(QueryWorkloadModel)
        clone.vocabulary = self.vocabulary
        clone.topic_query_fraction = self.topic_query_fraction
        clone.word_exponent = self.word_exponent
        clone.membership_exponent = getattr(self, "membership_exponent", 0.4)
        clone.max_topics_per_word = getattr(self, "max_topics_per_word", 2)

        changed = rng.random(len(self.topics)) < change_fraction
        topics: list[Topic] = []
        for topic, flip in zip(self.topics, changed):
            if flip:
                # Rescale well outside [0.5, 2] so the change registers.
                factor = float(rng.choice([0.2, 0.3, 3.0, 5.0]))
                topics.append(Topic(topic.keywords, topic.popularity * factor))
            else:
                # Mild jitter well inside [0.5, 2].
                factor = float(rng.uniform(0.9, 1.1))
                topics.append(Topic(topic.keywords, topic.popularity * factor))
        clone.topics = tuple(topics)
        return clone


def generate_query_log(
    vocabulary: list[str],
    num_queries: int,
    num_topics: int = 200,
    seed: int | None = 0,
    **model_kwargs,
) -> QueryLog:
    """One-call convenience: build a model and generate a log."""
    model = QueryWorkloadModel(
        vocabulary, num_topics=num_topics, seed=seed, **model_kwargs
    )
    return model.generate(num_queries, rng=seed)
