"""Finite-support Zipf sampling.

Web-object popularity is famously Zipf-like (Section 3.1 of the paper
leans on exactly this skew to justify partial optimization), so both
the corpus and query generators draw from this sampler.
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities ``p_i ∝ 1 / (i+1)^exponent``.

    Args:
        num_items: Support size (``>= 1``).
        exponent: Skew parameter; 0 gives uniform, larger is more
            skewed.  Must be nonnegative.
    """
    if num_items < 1:
        raise ValueError("num_items must be at least 1")
    if exponent < 0:
        raise ValueError("exponent must be nonnegative")
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfSampler:
    """Draw item indices ``0..n-1`` with Zipf-distributed popularity.

    Example:
        >>> sampler = ZipfSampler(100, exponent=1.0, rng=0)
        >>> draws = sampler.sample(1000)
        >>> (draws == 0).sum() > (draws == 99).sum()
        True
    """

    def __init__(
        self,
        num_items: int,
        exponent: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ):
        self.num_items = num_items
        self.exponent = exponent
        self.probabilities = zipf_probabilities(num_items, exponent)
        self._cdf = np.cumsum(self.probabilities)
        self._rng = np.random.default_rng(rng)

    def sample(self, size: int | None = None) -> np.ndarray | int:
        """Draw ``size`` indices (or a single int when ``size`` is None)."""
        uniform = self._rng.random(size)
        indices = np.searchsorted(self._cdf, uniform, side="right")
        indices = np.minimum(indices, self.num_items - 1)
        return int(indices) if size is None else indices

    def sample_distinct(self, count: int, max_attempts: int = 100) -> np.ndarray:
        """Draw ``count`` *distinct* indices, popularity-weighted.

        Args:
            count: Number of distinct indices (``<= num_items``).
            max_attempts: Oversampling rounds before falling back to an
                exact weighted draw without replacement.
        """
        if count > self.num_items:
            raise ValueError(
                f"cannot draw {count} distinct items from {self.num_items}"
            )
        chosen: dict[int, None] = {}
        for _ in range(max_attempts):
            needed = count - len(chosen)
            if needed <= 0:
                break
            for idx in np.atleast_1d(self.sample(4 * needed)):
                chosen.setdefault(int(idx), None)
                if len(chosen) == count:
                    break
        if len(chosen) < count:
            exact = self._rng.choice(
                self.num_items, size=count, replace=False, p=self.probabilities
            )
            return np.asarray(exact, dtype=np.int64)
        return np.fromiter(chosen, dtype=np.int64, count=count)
