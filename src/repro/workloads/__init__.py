"""Synthetic workload generation.

The paper's evaluation is driven by a 3.7M-page ODP web crawl and
Ask.com query traces — both unavailable.  This subpackage generates
their statistical stand-ins: a Zipf-distributed synthetic corpus
(reproducing the index-size skew) and a topic-model query generator
producing skewed, temporally stable keyword-pair correlations
(reproducing Figure 2's skewness and stability properties).
"""

from repro.workloads.adapters import load_aol_query_log, split_log_by_fraction
from repro.workloads.corpus_gen import generate_corpus
from repro.workloads.query_gen import QueryWorkloadModel, generate_query_log
from repro.workloads.stream import (
    TimedQuery,
    diurnal_rate,
    generate_stream,
    split_stream_by_window,
)
from repro.workloads.traces import load_operations, save_operations, split_periods
from repro.workloads.zipf import ZipfSampler, zipf_probabilities

__all__ = [
    "QueryWorkloadModel",
    "TimedQuery",
    "ZipfSampler",
    "diurnal_rate",
    "generate_corpus",
    "generate_query_log",
    "generate_stream",
    "load_aol_query_log",
    "load_operations",
    "save_operations",
    "split_log_by_fraction",
    "split_stream_by_window",
    "split_periods",
    "zipf_probabilities",
]
