"""Timestamped query streams with diurnal load patterns.

The latency simulator and the adaptive placer both consume traffic over
*time*; this module turns a query model into a timestamped stream whose
arrival rate follows a configurable diurnal curve (real search traffic
peaks mid-day and troughs at night), and slices streams into periods
for the control loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.search.query import Query
from repro.workloads.query_gen import QueryWorkloadModel


@dataclass(frozen=True)
class TimedQuery:
    """A query stamped with its arrival time (seconds from stream start)."""

    time_s: float
    query: Query


def diurnal_rate(time_s: float, base_qps: float, peak_factor: float = 2.0) -> float:
    """Arrival rate at a point in the 24h cycle.

    A sinusoid with its trough at hour 4 and peak at hour 16, scaled so
    the rate swings between ``base/peak_factor`` and ``base*peak_factor``.
    """
    if base_qps <= 0:
        raise ValueError("base_qps must be positive")
    if peak_factor < 1:
        raise ValueError("peak_factor must be at least 1")
    hours = (time_s / 3600.0) % 24.0
    phase = np.cos(2 * np.pi * (hours - 16.0) / 24.0)  # +1 at peak hour
    log_swing = np.log(peak_factor)
    return float(base_qps * np.exp(log_swing * phase))


def generate_stream(
    model: QueryWorkloadModel,
    duration_s: float,
    base_qps: float = 10.0,
    peak_factor: float = 2.0,
    seed: int | None = 0,
) -> list[TimedQuery]:
    """Generate a timestamped stream via a thinned Poisson process.

    Args:
        model: Query content generator.
        duration_s: Stream length in seconds.
        base_qps: Geometric-mean arrival rate.
        peak_factor: Peak-to-mean rate ratio of the diurnal curve.
        seed: Seed for arrivals and query content.

    Returns:
        Timed queries in increasing time order.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = np.random.default_rng(seed)
    max_rate = base_qps * peak_factor

    # Thinning: draw candidate arrivals at the max rate, keep each with
    # probability rate(t)/max_rate.
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / max_rate)
        if t >= duration_s:
            break
        if rng.random() <= diurnal_rate(t, base_qps, peak_factor) / max_rate:
            times.append(t)

    log = model.generate(len(times), rng=rng)
    return [TimedQuery(time_s, query) for time_s, query in zip(times, log)]


def split_stream_by_window(
    stream: list[TimedQuery], window_s: float
) -> Iterator[list[TimedQuery]]:
    """Slice a stream into consecutive fixed-length windows.

    Empty trailing windows are not produced; empty windows in the
    middle of the stream are (the adaptive placer sees quiet periods).

    Raises:
        ValueError: On a non-positive window, or when a timestamp runs
            backwards — out-of-order streams would be silently misfiled
            into the wrong windows.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if not stream:
        return
    current: list[TimedQuery] = []
    boundary = window_s
    last_time: float | None = None
    for timed in stream:
        if last_time is not None and timed.time_s < last_time:
            raise ValueError(
                "stream timestamps must be non-decreasing: got "
                f"{timed.time_s:g}s after {last_time:g}s"
            )
        last_time = timed.time_s
        while timed.time_s >= boundary:
            yield current
            current = []
            boundary += window_s
        current.append(timed)
    yield current
