"""Synthetic web-corpus generation.

Stands in for the paper's 3.7M crawled ODP pages.  Only two corpus
properties reach the placement algorithms — the per-keyword document
frequency distribution (index sizes) and the document membership needed
to execute queries — and both are reproduced here: word popularity is
Zipf-distributed (heavy-tailed index sizes, as in Figure 5) and each
page holds roughly ``words_per_doc`` distinct words (the paper reports
~114 after stopword removal).
"""

from __future__ import annotations

import numpy as np

from repro.search.documents import Corpus, Document
from repro.workloads.zipf import ZipfSampler


def word_name(index: int) -> str:
    """Canonical synthetic word for a popularity rank (0 = most popular)."""
    return f"w{index:06d}"


def generate_corpus(
    num_documents: int,
    vocabulary_size: int,
    words_per_doc: float = 114.0,
    zipf_exponent: float = 1.0,
    seed: int | None = 0,
) -> Corpus:
    """Generate a corpus of documents with Zipf word popularity.

    Args:
        num_documents: Number of pages to generate.
        vocabulary_size: Vocabulary size (words named ``w000000`` ...).
        words_per_doc: Mean distinct words per page (Poisson around
            this mean, truncated to ``[1, vocabulary_size]``).
        zipf_exponent: Word-popularity skew.
        seed: RNG seed for reproducibility.

    Returns:
        A :class:`~repro.search.documents.Corpus` whose document ids
        look like URLs (``http://synth.example/page/123``).
    """
    if num_documents < 0:
        raise ValueError("num_documents must be nonnegative")
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(vocabulary_size, zipf_exponent, rng)
    corpus = Corpus()
    lengths = rng.poisson(words_per_doc, size=num_documents)
    for doc_index in range(num_documents):
        target = int(np.clip(lengths[doc_index], 1, vocabulary_size))
        # Oversample then dedupe: cheap and keeps the Zipf shape.
        draw = sampler.sample(max(2 * target, 8))
        words = {word_name(int(w)) for w in draw}
        while len(words) < target:
            words |= {word_name(int(w)) for w in sampler.sample(target)}
        if len(words) > target:
            # Sorted before trimming: set order is not stable across
            # processes (string hash randomization).
            words = set(sorted(words)[:target])
        corpus.add(
            Document(f"http://synth.example/page/{doc_index}", frozenset(words))
        )
    return corpus
