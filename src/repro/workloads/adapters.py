"""Adapters for real-world query-log formats.

The paper's Ask.com traces are proprietary, but public logs with the
same structure exist (e.g. the AOL-500k format: tab-separated
``AnonID  Query  QueryTime [ItemRank  ClickURL]``).  These adapters
load such files into :class:`~repro.search.query.QueryLog` so every
experiment in this repository can run on real data when available.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import TraceFormatError
from repro.search.query import Query, QueryLog
from repro.search.tokenizer import tokenize


def load_aol_query_log(
    path: str | Path,
    max_queries: int | None = None,
    skip_header: bool = True,
    remove_stopwords: bool = False,
    min_keywords: int = 1,
) -> QueryLog:
    """Load an AOL-format query log.

    Expected columns (tab-separated): ``AnonID``, ``Query``,
    ``QueryTime``, and optionally ``ItemRank``/``ClickURL``.  Queries
    are lowercased and tokenized; duplicate submissions are kept (the
    correlation estimators weight pairs by frequency, as the paper
    does).

    Args:
        path: Path to the log file.
        max_queries: Stop after this many parsed queries.
        skip_header: Ignore a first line starting with ``AnonID``.
        remove_stopwords: Drop stopwords during tokenization.
        min_keywords: Skip queries with fewer tokens than this.

    Returns:
        A :class:`QueryLog` in file order.

    Raises:
        TraceFormatError: On unreadable files or rows without at least
            two columns.
    """
    if min_keywords < 1:
        raise ValueError("min_keywords must be at least 1")
    log = QueryLog()
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                if line_no == 1 and skip_header and line.startswith("AnonID"):
                    continue
                columns = line.split("\t")
                if len(columns) < 2:
                    raise TraceFormatError(
                        f"{path}:{line_no}: expected tab-separated columns"
                    )
                keywords = tokenize(columns[1], remove_stopwords=remove_stopwords)
                if len(keywords) < min_keywords:
                    continue
                log.append(Query(tuple(keywords)))
                if max_queries is not None and len(log) >= max_queries:
                    break
    except OSError as exc:
        raise TraceFormatError(f"cannot read query log {path}: {exc}") from exc
    return log


def split_log_by_fraction(
    log: QueryLog, fraction: float = 0.5
) -> tuple[QueryLog, QueryLog]:
    """Split a time-ordered log into two contiguous periods.

    Args:
        log: The full log, in time order.
        fraction: Share of queries in the first period (0 < f < 1).

    Returns:
        ``(period1, period2)`` — the inputs to the Figure 2B stability
        analysis on real data.
    """
    if not 0 < fraction < 1:
        raise ValueError("fraction must be strictly between 0 and 1")
    cut = int(len(log) * fraction)
    first, second = QueryLog(), QueryLog()
    for i, query in enumerate(log):
        (first if i < cut else second).append(query)
    return first, second
