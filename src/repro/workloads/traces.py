"""Generic multi-object operation-trace I/O.

Operations are stored one per line, object ids tab-separated.  Used by
the cluster examples and anywhere the workload is not a search-query
log (which has its own format in :mod:`repro.search.query`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import TraceFormatError

Operation = tuple[str, ...]


def save_operations(path: str | Path, operations: Iterable[Sequence[str]]) -> int:
    """Write operations to ``path``; returns the number written.

    Raises:
        TraceFormatError: If an object id contains a tab or newline.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for operation in operations:
            ids = [str(obj) for obj in operation]
            for obj in ids:
                if "\t" in obj or "\n" in obj:
                    raise TraceFormatError(
                        f"object id {obj!r} contains a separator character"
                    )
            fh.write("\t".join(ids) + "\n")
            count += 1
    return count


def load_operations(path: str | Path) -> list[Operation]:
    """Read operations written by :func:`save_operations`.

    Raises:
        TraceFormatError: On unreadable files or empty records.
    """
    operations: list[Operation] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                ids = tuple(part for part in line.split("\t") if part)
                if not ids:
                    raise TraceFormatError(f"{path}:{line_no}: empty operation")
                operations.append(ids)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    return operations


def split_periods(
    operations: Sequence[Operation], num_periods: int = 2
) -> list[list[Operation]]:
    """Split a trace into contiguous equal periods (e.g. Jan/Feb).

    Args:
        operations: The full trace, in time order.
        num_periods: Number of periods (``>= 1``).

    Returns:
        ``num_periods`` contiguous slices covering the trace; the last
        period absorbs any remainder.
    """
    if num_periods < 1:
        raise ValueError("num_periods must be at least 1")
    per = len(operations) // num_periods
    periods = []
    for p in range(num_periods):
        start = p * per
        end = (p + 1) * per if p < num_periods - 1 else len(operations)
        periods.append(list(operations[start:end]))
    return periods
