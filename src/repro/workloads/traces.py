"""Generic multi-object operation-trace I/O and columnar traces.

Operations are stored one per line, object ids tab-separated.  Used by
the cluster examples and anywhere the workload is not a search-query
log (which has its own format in :mod:`repro.search.query`).

:class:`TraceColumns` is the columnar in-memory form: object ids
interned to dense integer codes, one flat code array plus operation
offsets (CSR layout), optionally a timestamp per operation.  Consumers
with a vectorized path (sketch ingestion, replay dedup) work on the
code arrays directly; everything else iterates :meth:`TraceColumns.
operations`, which reproduces the row-oriented trace exactly — the row
path stays the equivalence oracle for every columnar fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import TraceFormatError

Operation = tuple[str, ...]
ObjectId = Hashable
Pair = tuple[ObjectId, ObjectId]


def save_operations(path: str | Path, operations: Iterable[Sequence[str]]) -> int:
    """Write operations to ``path``; returns the number written.

    Raises:
        TraceFormatError: If an object id contains a tab or newline.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for operation in operations:
            ids = [str(obj) for obj in operation]
            for obj in ids:
                if "\t" in obj or "\n" in obj:
                    raise TraceFormatError(
                        f"object id {obj!r} contains a separator character"
                    )
            fh.write("\t".join(ids) + "\n")
            count += 1
    return count


def load_operations(path: str | Path) -> list[Operation]:
    """Read operations written by :func:`save_operations`.

    Raises:
        TraceFormatError: On unreadable files or empty records.
    """
    operations: list[Operation] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                ids = tuple(part for part in line.split("\t") if part)
                if not ids:
                    raise TraceFormatError(f"{path}:{line_no}: empty operation")
                operations.append(ids)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    return operations


@dataclass(frozen=True, eq=False)
class TraceColumns:
    """A trace as columns: interned codes, CSR offsets, optional times.

    Codes are assigned in *repr order* of the distinct ids — sorting
    codes numerically inside an operation therefore reproduces the
    ``sorted(distinct, key=repr)`` step of the row-oriented pair
    reduction (:func:`repro.core.correlation.operation_pairs`), which
    is what makes the vectorized :meth:`cooccurrence_pairs` exactly
    equivalent to the per-operation loop.

    Attributes:
        ids: Distinct object ids, index = code, in repr order.
        codes: Flat int64 array of every operation's codes, in trace
            order, duplicates preserved.
        offsets: int64 array of length ``len(self) + 1``; operation
            ``i`` spans ``codes[offsets[i]:offsets[i + 1]]``.
        times: Optional float64 per-operation timestamps.
        all_str: Every id is a plain ``str`` — the gate for fast paths
            whose code arithmetic assumes value order is total and
            consistent with the ids' own ordering.
    """

    ids: tuple[ObjectId, ...]
    codes: np.ndarray
    offsets: np.ndarray
    times: np.ndarray | None = None
    all_str: bool = True

    @classmethod
    def from_operations(
        cls,
        operations: Iterable[Sequence[ObjectId]],
        times: Sequence[float] | None = None,
    ) -> "TraceColumns":
        """Intern a row-oriented trace into columns."""
        ops = [tuple(op) for op in operations]
        distinct: set[ObjectId] = set()
        for op in ops:
            distinct.update(op)
        all_str = all(type(obj) is str for obj in distinct)
        ordered = sorted(distinct, key=repr)
        code = {obj: i for i, obj in enumerate(ordered)}
        lengths = np.fromiter(
            (len(op) for op in ops), dtype=np.int64, count=len(ops)
        )
        offsets = np.zeros(len(ops) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = np.fromiter(
            (code[obj] for op in ops for obj in op),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        time_arr = None
        if times is not None:
            time_arr = np.asarray(times, dtype=np.float64)
            if time_arr.shape != (len(ops),):
                raise ValueError(
                    f"times must have one entry per operation; got "
                    f"{time_arr.shape} for {len(ops)} operations"
                )
            time_arr.setflags(write=False)
        codes.setflags(write=False)
        offsets.setflags(write=False)
        return cls(
            ids=tuple(ordered),
            codes=codes,
            offsets=offsets,
            times=time_arr,
            all_str=all_str,
        )

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __iter__(self) -> Iterator[tuple[ObjectId, ...]]:
        return self.operations()

    def operations(self) -> Iterator[tuple[ObjectId, ...]]:
        """The row-oriented view, exactly as ingested (the oracle)."""
        for i in range(len(self)):
            lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
            yield tuple(self.ids[c] for c in self.codes[lo:hi])

    def operation_slices(self) -> Iterator[tuple[int, np.ndarray]]:
        """(operation index, code slice) pairs without materializing ids."""
        for i in range(len(self)):
            lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
            yield i, self.codes[lo:hi]

    def cooccurrence_pairs(self) -> list[Pair]:
        """Every operation's distinct pairs, in row-path order.

        Exactly the concatenation of ``operation_pairs(op,
        "cooccurrence")`` over :meth:`operations` — same pairs, same
        canonical orientation, same global order — computed without the
        per-operation ``set``/``sorted(key=repr)``/comprehension loop.
        Non-``str`` ids fall back to that loop (code order is only
        provably repr order for plain strings).
        """
        if not self.all_str:
            from repro.core.correlation import operation_pairs

            out: list[Pair] = []
            for op in self.operations():
                out.extend(operation_pairs(op, "cooccurrence"))
            return out
        if self.codes.size == 0:
            return []
        n_ops = len(self)
        op_idx = np.repeat(np.arange(n_ops), np.diff(self.offsets))
        # Distinct codes per operation, sorted (= repr order of ids).
        order = np.lexsort((self.codes, op_idx))
        oc, cc = op_idx[order], self.codes[order]
        keep = np.ones(oc.size, dtype=bool)
        keep[1:] = (oc[1:] != oc[:-1]) | (cc[1:] != cc[:-1])
        oc, cc = oc[keep], cc[keep]
        counts = np.bincount(oc, minlength=n_ops)
        starts = np.zeros(n_ops + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])

        # Expand pairs per distinct-count group, then restore global
        # (operation, within-operation) order so order-sensitive
        # consumers (Space-Saving eviction, Counter insertion) see the
        # row path's exact stream.
        a_parts: list[np.ndarray] = []
        b_parts: list[np.ndarray] = []
        o_parts: list[np.ndarray] = []
        r_parts: list[np.ndarray] = []
        for length in np.unique(counts):
            length = int(length)
            if length < 2:
                continue
            members = np.where(counts == length)[0]
            rows = starts[members][:, None] + np.arange(length)[None, :]
            mat = cc[rows]
            a_i, b_i = np.triu_indices(length, k=1)  # row-major: (0,1)..
            a_parts.append(mat[:, a_i].ravel())
            b_parts.append(mat[:, b_i].ravel())
            o_parts.append(np.repeat(members, a_i.size))
            r_parts.append(np.tile(np.arange(a_i.size), members.size))
        if not a_parts:
            return []
        a = np.concatenate(a_parts)
        b = np.concatenate(b_parts)
        restore = np.lexsort((np.concatenate(r_parts), np.concatenate(o_parts)))
        a, b = a[restore], b[restore]
        # Canonical orientation is *value* order; codes are repr order.
        # For plain strings the two agree unless quoting differs, so
        # rank codes by the ids' own ordering and swap where needed.
        value_rank = np.empty(len(self.ids), dtype=np.int64)
        value_rank[
            sorted(range(len(self.ids)), key=lambda c: self.ids[c])
        ] = np.arange(len(self.ids))
        flip = value_rank[a] > value_rank[b]
        a[flip], b[flip] = b[flip], a[flip]
        ids = self.ids
        return [(ids[x], ids[y]) for x, y in zip(a.tolist(), b.tolist())]


def split_periods(
    operations: Sequence[Operation], num_periods: int = 2
) -> list[list[Operation]]:
    """Split a trace into contiguous equal periods (e.g. Jan/Feb).

    Args:
        operations: The full trace, in time order.
        num_periods: Number of periods (``>= 1``).

    Returns:
        ``num_periods`` contiguous slices covering the trace; the last
        period absorbs any remainder.
    """
    if num_periods < 1:
        raise ValueError("num_periods must be at least 1")
    per = len(operations) // num_periods
    periods = []
    for p in range(num_periods):
        start = p * per
        end = (p + 1) * per if p < num_periods - 1 else len(operations)
        periods.append(list(operations[start:end]))
    return periods
