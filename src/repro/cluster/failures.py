"""Node failures and availability under (replicated) placements.

Replication exists for availability; this module quantifies it.  Given
a placement and a set of failed nodes, it reports which objects are
still reachable and what fraction of a multi-object operation trace
can still be served — with single-copy placements losing every object
on a failed node, and replicated placements surviving any failure that
leaves at least one copy alive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.core.placement import Placement
from repro.core.replication import ReplicatedPlacement

NodeId = Hashable
ObjectId = Hashable
Operation = Sequence[ObjectId]


@dataclass(frozen=True)
class AvailabilityReport:
    """Impact of a failure set on objects and operations.

    Attributes:
        failed_nodes: The nodes taken down.
        lost_objects: Objects with no surviving copy.
        surviving_objects: Objects still reachable.
        total_operations: Operations evaluated.
        servable_operations: Operations whose every object survives.
    """

    failed_nodes: tuple[NodeId, ...]
    lost_objects: tuple[ObjectId, ...]
    surviving_objects: int
    total_operations: int
    servable_operations: int

    @property
    def object_availability(self) -> float:
        """Fraction of objects still reachable."""
        total = len(self.lost_objects) + self.surviving_objects
        return self.surviving_objects / total if total else 1.0

    @property
    def operation_availability(self) -> float:
        """Fraction of operations fully servable."""
        if self.total_operations == 0:
            return 1.0
        return self.servable_operations / self.total_operations


def _copies_by_object(
    placement: Placement | ReplicatedPlacement,
) -> dict[ObjectId, set[NodeId]]:
    problem = placement.problem
    if isinstance(placement, ReplicatedPlacement):
        return {
            obj: set(placement.nodes_of(obj)) for obj in problem.object_ids
        }
    return {obj: {node} for obj, node in placement.to_mapping().items()}


def fail_nodes(
    placement: Placement | ReplicatedPlacement,
    failed: Iterable[NodeId],
    operations: Iterable[Operation] = (),
) -> AvailabilityReport:
    """Evaluate a failure scenario.

    Args:
        placement: Single-copy or replicated placement.
        failed: Node ids that are down.
        operations: Optional trace; operations referencing unknown
            objects count as unservable only if a *known* object in
            them is lost (unknown ids are ignored, matching the
            engines' behaviour).

    Returns:
        An :class:`AvailabilityReport`.
    """
    failed_set = set(failed)
    for node in failed_set:
        placement.problem.node_index(node)  # validates ids
    copies = _copies_by_object(placement)

    lost = tuple(
        sorted(
            (obj for obj, nodes in copies.items() if nodes <= failed_set),
            key=repr,
        )
    )
    lost_set = set(lost)
    surviving = len(copies) - len(lost)

    total_ops = 0
    servable = 0
    for operation in operations:
        total_ops += 1
        known = [obj for obj in operation if obj in copies]
        if not any(obj in lost_set for obj in known):
            servable += 1

    return AvailabilityReport(
        failed_nodes=tuple(sorted(failed_set, key=repr)),
        lost_objects=lost,
        surviving_objects=surviving,
        total_operations=total_ops,
        servable_operations=servable,
    )


def worst_single_failure(
    placement: Placement | ReplicatedPlacement,
    operations: Sequence[Operation],
) -> AvailabilityReport:
    """The most damaging single-node failure for a trace."""
    problem = placement.problem
    worst: AvailabilityReport | None = None
    for node in problem.node_ids:
        report = fail_nodes(placement, [node], operations)
        if worst is None or report.operation_availability < worst.operation_availability:
            worst = report
    assert worst is not None  # problems always have >= 1 node
    return worst
