"""Hierarchical failure domains: node → rack → zone.

The paper's cluster model is flat — any node can fail independently —
but production failures are *correlated*: a rack loses power, a zone
drops off the network, and every node inside goes with it.  This module
gives the existing node indices a place in a three-level tree
(``zone → rack → node``) so replication can spread copies across
domains and chaos schedules can crash whole domains at once.

* :class:`Topology` — the flat-array form the planners consume: for
  every node index, the rack and zone it sits in.  Immutable, JSON
  round-trippable, and cheap to query.
* :class:`FailureDomain` — the same information as an explicit tree,
  for callers that want to walk the hierarchy.
* :func:`synthetic_topology` — deterministic synthetic topologies
  (contiguous balanced assignment; a pure function of its arguments).
* :func:`parse_topology_spec` — the CLI's ``zones:Z,racks:K`` parser.

Domain *labels* are strings like ``"zone:0"`` / ``"rack:3"`` /
``"node:7"`` and are the vocabulary shared with
:mod:`repro.resilience.faults` (``crash_domain`` events) and the
degraded report's per-domain impact table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DOMAIN_KINDS = ("zone", "rack", "node")


@dataclass(frozen=True)
class FailureDomain:
    """One node of the failure-domain tree.

    Attributes:
        kind: ``"root"``, ``"zone"``, ``"rack"``, or ``"node"``.
        index: The domain's index within its kind (``-1`` for the root).
        nodes: All node indices under this domain, sorted.
        children: Child domains, ordered by index.
    """

    kind: str
    index: int
    nodes: tuple[int, ...]
    children: tuple["FailureDomain", ...] = ()

    @property
    def label(self) -> str:
        """The shared string form, e.g. ``"rack:3"``."""
        return "root" if self.kind == "root" else f"{self.kind}:{self.index}"

    def walk(self):
        """Yield this domain and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class Topology:
    """Per-node failure-domain membership over the existing indices.

    Attributes:
        racks: ``racks[k]`` is the rack index of node ``k``.
        zones: ``zones[k]`` is the zone index of node ``k``.  Every
            rack must sit entirely inside one zone (the tree property).
    """

    racks: tuple[int, ...]
    zones: tuple[int, ...]

    def __post_init__(self) -> None:
        racks = tuple(int(r) for r in self.racks)
        zones = tuple(int(z) for z in self.zones)
        object.__setattr__(self, "racks", racks)
        object.__setattr__(self, "zones", zones)
        if len(racks) != len(zones):
            raise ValueError("racks and zones must have one entry per node")
        if not racks:
            raise ValueError("topology needs at least one node")
        if min(racks) < 0 or min(zones) < 0:
            raise ValueError("domain indices must be nonnegative")
        rack_zone: dict[int, int] = {}
        for rack, zone in zip(racks, zones):
            if rack_zone.setdefault(rack, zone) != zone:
                raise ValueError(
                    f"rack {rack} spans zones {rack_zone[rack]} and {zone}; "
                    "each rack must sit inside exactly one zone"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, num_nodes: int) -> "Topology":
        """Every node its own rack and zone — the pre-topology model.

        Spreading replicas across domains then degenerates to "distinct
        nodes", which is exactly the pre-1.7 replication constraint.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        indices = tuple(range(num_nodes))
        return cls(racks=indices, zones=indices)

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return len(self.racks)

    @property
    def num_racks(self) -> int:
        """Number of distinct racks."""
        return len(set(self.racks))

    @property
    def num_zones(self) -> int:
        """Number of distinct zones."""
        return len(set(self.zones))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def domain_of(self, node: int, kind: str) -> int:
        """The ``kind`` domain index node ``node`` belongs to."""
        if kind == "node":
            return int(node)
        if kind == "rack":
            return self.racks[node]
        if kind == "zone":
            return self.zones[node]
        raise ValueError(f"unknown domain kind {kind!r}")

    def domain_ids(self, kind: str) -> np.ndarray:
        """Per-node domain index array for ``kind`` (vectorized form)."""
        if kind == "node":
            return np.arange(self.num_nodes, dtype=np.int64)
        if kind == "rack":
            return np.asarray(self.racks, dtype=np.int64)
        if kind == "zone":
            return np.asarray(self.zones, dtype=np.int64)
        raise ValueError(f"unknown domain kind {kind!r}")

    def label_of(self, node: int, kind: str) -> str:
        """The string label of node ``node``'s ``kind`` domain."""
        return f"{kind}:{self.domain_of(node, kind)}"

    def nodes_of_domain(self, label: str) -> tuple[int, ...]:
        """Node indices under a domain label like ``"rack:1"``.

        Raises:
            ValueError: For malformed labels or unknown kinds/indices.
        """
        kind, _, raw = label.partition(":")
        if kind not in DOMAIN_KINDS or not raw:
            raise ValueError(f"malformed domain label {label!r}")
        index = int(raw)
        ids = self.domain_ids(kind)
        nodes = tuple(int(k) for k in np.flatnonzero(ids == index))
        if not nodes:
            raise ValueError(f"domain {label!r} has no nodes")
        return nodes

    def rack_nodes(self, rack: int) -> tuple[int, ...]:
        """Node indices in rack ``rack``."""
        return self.nodes_of_domain(f"rack:{rack}")

    def zone_nodes(self, zone: int) -> tuple[int, ...]:
        """Node indices in zone ``zone``."""
        return self.nodes_of_domain(f"zone:{zone}")

    def domain_labels(self, kind: str) -> tuple[str, ...]:
        """All labels of one kind, sorted by index."""
        ids = sorted(set(self.domain_ids(kind).tolist()))
        return tuple(f"{kind}:{i}" for i in ids)

    def spread_level(self, replicas: int) -> str:
        """The widest domain kind that can hold ``replicas`` spread copies.

        ``"zone"`` when there are at least ``replicas`` zones, else
        ``"rack"``, else ``"node"`` (plain distinct-node replication).
        """
        if replicas <= 1:
            return "node"
        if self.num_zones >= replicas:
            return "zone"
        if self.num_racks >= replicas:
            return "rack"
        return "node"

    def tree(self) -> FailureDomain:
        """The explicit ``root → zone → rack → node`` tree."""
        zone_children: list[FailureDomain] = []
        for zone in sorted(set(self.zones)):
            rack_children: list[FailureDomain] = []
            zone_nodes: list[int] = []
            racks_in_zone = sorted(
                {r for r, z in zip(self.racks, self.zones) if z == zone}
            )
            for rack in racks_in_zone:
                members = self.rack_nodes(rack)
                zone_nodes.extend(members)
                rack_children.append(
                    FailureDomain(
                        kind="rack",
                        index=rack,
                        nodes=members,
                        children=tuple(
                            FailureDomain(kind="node", index=k, nodes=(k,))
                            for k in members
                        ),
                    )
                )
            zone_children.append(
                FailureDomain(
                    kind="zone",
                    index=zone,
                    nodes=tuple(sorted(zone_nodes)),
                    children=tuple(rack_children),
                )
            )
        return FailureDomain(
            kind="root",
            index=-1,
            nodes=tuple(range(self.num_nodes)),
            children=tuple(zone_children),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "num_nodes": self.num_nodes,
            "racks": list(self.racks),
            "zones": list(self.zones),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            racks=tuple(int(r) for r in data["racks"]),
            zones=tuple(int(z) for z in data["zones"]),
        )


def synthetic_topology(
    num_nodes: int, zones: int = 1, racks_per_zone: int = 1
) -> Topology:
    """A deterministic balanced topology over ``num_nodes`` nodes.

    Racks are numbered ``zone * racks_per_zone + rack_in_zone`` and
    nodes are assigned to racks contiguously and as evenly as possible
    (the first ``num_nodes mod racks`` racks get one extra node).  A
    pure function of its arguments — no randomness — so every artifact
    derived from it is byte-reproducible.

    Args:
        num_nodes: Cluster size (must cover every rack: ``num_nodes >=
            zones * racks_per_zone``).
        zones: Zone count.
        racks_per_zone: Racks inside each zone.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    if zones < 1 or racks_per_zone < 1:
        raise ValueError("zones and racks_per_zone must be positive")
    total_racks = zones * racks_per_zone
    if num_nodes < total_racks:
        raise ValueError(
            f"{num_nodes} nodes cannot populate {total_racks} racks"
        )
    base, extra = divmod(num_nodes, total_racks)
    racks: list[int] = []
    zones_per_node: list[int] = []
    for rack in range(total_racks):
        members = base + (1 if rack < extra else 0)
        racks.extend([rack] * members)
        zones_per_node.extend([rack // racks_per_zone] * members)
    return Topology(racks=tuple(racks), zones=tuple(zones_per_node))


def parse_topology_spec(spec: str, num_nodes: int) -> Topology:
    """Parse the CLI form ``zones:Z,racks:K`` (K racks *per zone*).

    Examples:
        ``"zones:2,racks:2"`` over 8 nodes → 2 zones × 2 racks × 2
        nodes.  Either key may be omitted (defaults to 1).
    """
    zones = 1
    racks_per_zone = 1
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, raw = part.partition(":")
        if not raw:
            raise ValueError(
                f"malformed topology spec {spec!r}; expected zones:Z,racks:K"
            )
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"malformed topology spec {spec!r}; {raw!r} is not an integer"
            ) from None
        if key == "zones":
            zones = value
        elif key == "racks":
            racks_per_zone = value
        else:
            raise ValueError(
                f"unknown topology key {key!r}; expected zones or racks"
            )
    return synthetic_topology(num_nodes, zones=zones, racks_per_zone=racks_per_zone)
