"""A simulated cluster executing multi-object operations.

This is the generic (non-search) consumer of placements: given a
:class:`~repro.core.placement.Placement`, the cluster materializes the
objects on storage nodes and executes intersection-like or union-like
multi-object operations per Section 3.2's execution models, charging
every byte to the network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro import obs
from repro.cluster.network import NetworkModel
from repro.cluster.node import StorageNode
from repro.core.placement import Placement
from repro.exceptions import PlacementError

ObjectId = Hashable
NodeId = Hashable


@dataclass(frozen=True)
class OperationResult:
    """Outcome of one multi-object operation.

    Attributes:
        objects: The requested object ids, as given.
        bytes_transferred: Inter-node bytes this operation moved.
        coordinator: Node where the final aggregation happened.
        num_remote_objects: Objects that had to be moved.
        served: False when a requested object lives only on a failed
            node and the operation could not run.
    """

    objects: tuple[ObjectId, ...]
    bytes_transferred: float
    coordinator: NodeId
    num_remote_objects: int
    served: bool = True

    @property
    def is_local(self) -> bool:
        """Whether all requested objects shared one node."""
        return self.num_remote_objects == 0


class Cluster:
    """Storage nodes + network, populated from a placement.

    Args:
        placement: Object placement to materialize; node capacities
            come from the placement's problem.
        enforce_capacity: Forwarded to :class:`StorageNode`.
    """

    def __init__(self, placement: Placement, enforce_capacity: bool = False):
        problem = placement.problem
        self.placement = placement
        self.nodes: dict[NodeId, StorageNode] = {
            node_id: StorageNode(node_id, float(cap), enforce_capacity)
            for node_id, cap in zip(problem.node_ids, problem.capacities)
        }
        self.network = NetworkModel(list(problem.node_ids))
        self._sizes: dict[ObjectId, float] = {}
        self._location: dict[ObjectId, NodeId] = {}
        self._failed: set[NodeId] = set()
        for obj, node_id in placement.to_mapping().items():
            size = problem.size_of(obj)
            self.nodes[node_id].store(obj, size)
            self._sizes[obj] = size
            self._location[obj] = node_id

    def locate(self, obj: ObjectId) -> NodeId:
        """Node currently holding ``obj``."""
        try:
            return self._location[obj]
        except KeyError:
            raise PlacementError(f"unknown object {obj!r}") from None

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    @property
    def failed_nodes(self) -> frozenset[NodeId]:
        """Nodes currently down."""
        return frozenset(self._failed)

    def fail(self, node_id: NodeId) -> None:
        """Take a node down; its objects become unreachable (not lost —
        recovery brings them straight back)."""
        if node_id not in self.nodes:
            raise PlacementError(f"unknown node {node_id!r}")
        if node_id not in self._failed:
            self._failed.add(node_id)
            obs.counter("cluster.node_failures").inc()

    def recover(self, node_id: NodeId) -> None:
        """Bring a failed node back online with its stored objects."""
        if node_id not in self.nodes:
            raise PlacementError(f"unknown node {node_id!r}")
        if node_id in self._failed:
            self._failed.discard(node_id)
            obs.counter("cluster.node_recoveries").inc()

    def is_available(self, obj: ObjectId) -> bool:
        """Whether ``obj``'s hosting node is up."""
        return self.locate(obj) not in self._failed

    def unreachable_objects(self) -> list[ObjectId]:
        """Objects currently hosted on failed nodes, sorted by repr."""
        return sorted(
            (o for o, node in self._location.items() if node in self._failed),
            key=repr,
        )

    def _unserved(self, objects: tuple[ObjectId, ...]) -> OperationResult | None:
        """An unserved result if any requested object is unreachable."""
        down = [obj for obj in objects if self.locate(obj) in self._failed]
        if not down:
            return None
        obs.counter("cluster.ops.unserved").inc()
        return OperationResult(
            objects=objects,
            bytes_transferred=0.0,
            coordinator=self.locate(down[0]),
            num_remote_objects=0,
            served=False,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def execute_intersection(self, objects: Sequence[ObjectId]) -> OperationResult:
        """Intersection-like operation, smallest-first pipelined.

        The running result starts at the smallest object's node; at
        each step the (upper-bounded) running result — never larger
        than the smallest object — ships to the next object's node.
        This is conservative: real intersections shrink the result, so
        measured engine traffic is at most this.
        """
        objects = tuple(objects)
        distinct = sorted(set(objects), key=lambda o: (self._sizes_or_raise(o), repr(o)))
        if not distinct:
            raise ValueError("operation requests no objects")
        unserved = self._unserved(objects)
        if unserved is not None:
            return unserved
        coordinator = self.locate(distinct[0])
        running = self._sizes[distinct[0]]
        transferred = 0.0
        remote = 0
        for obj in distinct[1:]:
            target = self.locate(obj)
            if target != coordinator:
                moved = self.network.transfer(coordinator, target, int(running))
                transferred += moved
                remote += 1
                coordinator = target
            running = min(running, self._sizes[obj])
        obs.counter("cluster.ops.intersection").inc()
        obs.histogram("cluster.op.bytes").observe(transferred)
        return OperationResult(objects, transferred, coordinator, remote)

    def execute_union(self, objects: Sequence[ObjectId]) -> OperationResult:
        """Union-like operation: ship everything to the largest object.

        Matches Section 3.2's union model — all requested objects move
        to the node of the largest one, costing each mover's full size.
        """
        objects = tuple(objects)
        distinct = sorted(set(objects), key=lambda o: (self._sizes_or_raise(o), repr(o)))
        if not distinct:
            raise ValueError("operation requests no objects")
        unserved = self._unserved(objects)
        if unserved is not None:
            return unserved
        largest = distinct[-1]
        coordinator = self.locate(largest)
        transferred = 0.0
        remote = 0
        for obj in distinct[:-1]:
            source = self.locate(obj)
            if source != coordinator:
                moved = self.network.transfer(source, coordinator, int(self._sizes[obj]))
                transferred += moved
                remote += 1
        obs.counter("cluster.ops.union").inc()
        obs.histogram("cluster.op.bytes").observe(transferred)
        return OperationResult(objects, transferred, coordinator, remote)

    def execute_trace(
        self, operations: Iterable[Sequence[ObjectId]], mode: str = "intersection"
    ) -> list[OperationResult]:
        """Execute a whole trace; returns per-operation results.

        Args:
            operations: Iterable of object-id sequences.
            mode: ``"intersection"`` or ``"union"``.
        """
        if mode == "intersection":
            run = self.execute_intersection
        elif mode == "union":
            run = self.execute_union
        else:
            raise ValueError(f"unknown operation mode {mode!r}")
        with obs.span("cluster.trace", mode=mode) as trace_span:
            results = [run(op) for op in operations]
            trace_span.set(
                operations=len(results),
                total_bytes=sum(r.bytes_transferred for r in results),
                unserved=sum(1 for r in results if not r.served),
            )
        return results

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def overloaded_nodes(self) -> list[NodeId]:
        """Ids of nodes above capacity."""
        return [nid for nid, node in self.nodes.items() if node.is_overloaded]

    def migrate(self, obj: ObjectId, destination: NodeId) -> float:
        """Move an object to another node; returns bytes moved.

        Migrations into a failed node are rejected; migrations *out of*
        a failed node are allowed — that is exactly what incremental
        repair does (restoring the object from a replica or re-ingest,
        modelled as a transfer of its size).
        """
        source = self.locate(obj)
        if destination not in self.nodes:
            raise PlacementError(f"unknown node {destination!r}")
        if destination in self._failed:
            raise PlacementError(
                f"cannot migrate {obj!r} onto failed node {destination!r}"
            )
        if destination == source:
            return 0.0
        size = self.nodes[source].evict(obj)
        self.nodes[destination].store(obj, size)
        self._location[obj] = destination
        obs.counter("cluster.migrations").inc()
        return float(self.network.transfer(source, destination, int(size)))

    def _sizes_or_raise(self, obj: ObjectId) -> float:
        try:
            return self._sizes[obj]
        except KeyError:
            raise PlacementError(f"unknown object {obj!r}") from None

    def __repr__(self) -> str:
        return (
            f"Cluster(nodes={len(self.nodes)}, objects={len(self._sizes)}, "
            f"bytes={self.network.total_bytes})"
        )
