"""Closed-loop placement maintenance.

Glues the pieces into the control loop a deployment would run: observe
a period of operations, estimate pair correlations, compare against the
correlations the current placement was built for (Figure 2B's stability
analysis), and — only when drift crosses a threshold — re-optimize and
migrate the most profitable objects within a byte budget.

The paper's measurement that only ~1.2% of pairs change per month is
exactly what makes this loop cheap: most periods end with a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.analysis.stability import stability_report
from repro.core.correlation import (
    PairEstimator,
    cooccurrence_correlations,
    two_smallest_correlations,
)
from repro.core.lprr import LPRRPlanner
from repro.core.migration import MigrationPlan, select_migrations
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem

ObjectId = Hashable
Operation = Sequence[ObjectId]


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of one observation period.

    Attributes:
        replanned: Whether drift crossed the threshold and a migration
            ran.
        unstable_fraction: Measured fraction of tracked pairs whose
            correlation changed by more than 2x since the last replan.
        plan: The executed migration plan (None when not replanned).
        placement: The placement in force after the period.
    """

    replanned: bool
    unstable_fraction: float
    plan: MigrationPlan | None
    placement: Placement


class AdaptivePlacer:
    """Drift-triggered re-optimization over a fixed object universe.

    Args:
        sizes: Object id -> size; the object universe is fixed.
        num_nodes: Number of placement nodes.
        planner: Placement optimizer; defaults to
            :class:`~repro.core.lprr.LPRRPlanner` with seed 0.
        drift_threshold: Replan when the unstable pair fraction exceeds
            this (the paper's trace measured ~1.2% per month; 0.05 is a
            comfortable default margin).
        budget_fraction: Migration budget per replan, as a fraction of
            total object size.
        correlation_mode: ``"two_smallest"`` or ``"cooccurrence"``.
        min_count: Minimum period-one observations for a pair to count
            in the stability comparison (filters sampling noise).
        top_pairs: How many reference pairs the stability check tracks.
        estimator: Optional factory of
            :class:`~repro.core.correlation.PairEstimator` backends; a
            fresh instance estimates each period's correlations (e.g.
            ``lambda: SketchCorrelationEstimator(...)`` for bounded
            memory).  ``None`` (the default) keeps the exact
            trace-function path, byte-identical to earlier releases.
    """

    def __init__(
        self,
        sizes: Mapping[ObjectId, float],
        num_nodes: int,
        planner: Callable[[PlacementProblem], Placement] | None = None,
        drift_threshold: float = 0.05,
        budget_fraction: float = 0.05,
        correlation_mode: str = "two_smallest",
        min_count: int = 5,
        top_pairs: int = 1000,
        estimator: Callable[[], PairEstimator] | None = None,
    ):
        if not 0 <= drift_threshold <= 1:
            raise ValueError("drift_threshold must be in [0, 1]")
        if budget_fraction < 0:
            raise ValueError("budget_fraction must be nonnegative")
        if correlation_mode not in ("two_smallest", "cooccurrence"):
            raise ValueError(f"unknown correlation mode {correlation_mode!r}")
        self.sizes = dict(sizes)
        self.num_nodes = num_nodes
        self._plan_placement = planner or (
            lambda problem: LPRRPlanner(seed=0).plan(problem).placement
        )
        self.drift_threshold = drift_threshold
        self.budget_fraction = budget_fraction
        self.correlation_mode = correlation_mode
        self.min_count = min_count
        self.top_pairs = top_pairs
        self.estimator_factory = estimator
        self._reference: dict | None = None
        self._placement: Placement | None = None

    @property
    def placement(self) -> Placement:
        """The placement currently in force.

        Raises:
            RuntimeError: Before :meth:`bootstrap`.
        """
        if self._placement is None:
            raise RuntimeError("bootstrap the placer with an initial trace first")
        return self._placement

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _estimate(self, operations: Iterable[Operation], min_support: int = 1) -> dict:
        if self.estimator_factory is not None:
            backend = self.estimator_factory()
            backend.observe_all(operations)
            return backend.correlations(min_support)
        if self.correlation_mode == "two_smallest":
            return two_smallest_correlations(operations, self.sizes, min_support)
        return cooccurrence_correlations(operations, min_support)

    def _problem_for(self, correlations: dict) -> PlacementProblem:
        return PlacementProblem.build(self.sizes, self.num_nodes, correlations)

    def bootstrap(self, operations: Iterable[Operation]) -> Placement:
        """Build the initial placement from a first trace period."""
        correlations = self._estimate(operations)
        problem = self._problem_for(correlations)
        self._placement = self._plan_placement(problem)
        self._reference = correlations
        return self._placement

    def observe_period(self, operations: Iterable[Operation]) -> ReplanDecision:
        """Fold one period of traffic into the control loop.

        Raises:
            RuntimeError: Before :meth:`bootstrap`.
        """
        if self._placement is None or self._reference is None:
            raise RuntimeError("bootstrap the placer with an initial trace first")
        fresh = self._estimate(operations)
        supported_reference = {
            pair: p
            for pair, p in self._estimate_with_support(self._reference)
        }
        report = stability_report(
            supported_reference, fresh, top_k=self.top_pairs
        )

        if report.unstable_fraction <= self.drift_threshold:
            return ReplanDecision(
                replanned=False,
                unstable_fraction=report.unstable_fraction,
                plan=None,
                placement=self._placement,
            )

        problem = self._problem_for(fresh)
        current = Placement.from_mapping(problem, self._placement.to_mapping())
        target = self._plan_placement(problem)
        budget = self.budget_fraction * problem.total_size
        plan = select_migrations(current, target, budget_bytes=budget)
        self._placement = plan.apply(current)
        self._reference = fresh
        return ReplanDecision(
            replanned=True,
            unstable_fraction=report.unstable_fraction,
            plan=plan,
            placement=self._placement,
        )

    def _estimate_with_support(self, correlations: dict):
        """Filter reference pairs to well-supported ones.

        Correlations are probabilities; support filtering happened at
        estimation time for fresh traces, so for the stored reference
        we approximate by keeping the ``top_pairs`` strongest — the
        same pairs the stability report would track.
        """
        ranked = sorted(correlations.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[: self.top_pairs]
