"""Simulated distributed-system substrate.

A minimal but complete model of the environment the paper assumes: a
set of storage nodes with space capacities connected by a uniform-cost
network (Section 2.1's "local-area distributed environments in which
the communication latency between nodes are approximately equal").
The cluster places objects according to a placement scheme and executes
multi-object operations, accounting every byte moved between nodes.
"""

from repro.cluster.adaptive import AdaptivePlacer, ReplanDecision
from repro.cluster.cluster import Cluster, OperationResult
from repro.cluster.failures import AvailabilityReport, fail_nodes, worst_single_failure
from repro.cluster.network import NetworkModel
from repro.cluster.node import StorageNode
from repro.cluster.topology import (
    DOMAIN_KINDS,
    FailureDomain,
    Topology,
    parse_topology_spec,
    synthetic_topology,
)

__all__ = [
    "AdaptivePlacer",
    "AvailabilityReport",
    "Cluster",
    "DOMAIN_KINDS",
    "FailureDomain",
    "NetworkModel",
    "OperationResult",
    "ReplanDecision",
    "StorageNode",
    "Topology",
    "fail_nodes",
    "parse_topology_spec",
    "synthetic_topology",
    "worst_single_failure",
]
