"""Uniform-cost network model with traffic accounting.

The paper's analysis assumes pair communication cost independent of
where objects sit — a uniform network.  The model therefore only needs
to *count* traffic, not route it; it keeps a full traffic matrix so
experiments can also inspect per-link volumes.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro import obs

NodeId = Hashable


class NetworkModel:
    """Byte/message accounting between a fixed set of nodes."""

    def __init__(self, node_ids: list[NodeId]):
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("duplicate node ids")
        self.node_ids = list(node_ids)
        self._index = {node: i for i, node in enumerate(self.node_ids)}
        n = len(self.node_ids)
        self._bytes = np.zeros((n, n), dtype=np.int64)
        self._messages = np.zeros((n, n), dtype=np.int64)

    def transfer(self, src: NodeId, dst: NodeId, num_bytes: int) -> int:
        """Record a transfer; returns the bytes actually moved.

        A transfer between a node and itself is free and unrecorded.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be nonnegative")
        i, j = self._index[src], self._index[dst]
        if i == j:
            return 0
        self._bytes[i, j] += num_bytes
        self._messages[i, j] += 1
        obs.counter("network.transfers").inc()
        obs.counter("network.bytes").inc(num_bytes)
        return num_bytes

    @property
    def total_bytes(self) -> int:
        """All bytes moved between distinct nodes."""
        return int(self._bytes.sum())

    @property
    def total_messages(self) -> int:
        """All inter-node messages."""
        return int(self._messages.sum())

    def bytes_between(self, a: NodeId, b: NodeId) -> int:
        """Bytes moved on the (directed-summed) link between two nodes."""
        i, j = self._index[a], self._index[b]
        return int(self._bytes[i, j] + self._bytes[j, i])

    def traffic_matrix(self) -> np.ndarray:
        """Copy of the directed bytes matrix (senders on rows)."""
        return self._bytes.copy()

    def bytes_sent_by(self, node: NodeId) -> int:
        """Total bytes this node sent."""
        return int(self._bytes[self._index[node]].sum())

    def reset(self) -> None:
        """Zero all counters."""
        self._bytes[:] = 0
        self._messages[:] = 0

    def __repr__(self) -> str:
        return (
            f"NetworkModel(nodes={len(self.node_ids)}, "
            f"bytes={self.total_bytes}, messages={self.total_messages})"
        )
