"""Storage nodes."""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import PlacementError

ObjectId = Hashable


class StorageNode:
    """One node: bounded space holding named objects.

    Args:
        node_id: Identifier within the cluster.
        capacity: Space capacity (same unit as object sizes).
        enforce_capacity: When True, :meth:`store` raises on overflow;
            when False it records the overflow (the paper tolerates
            slight overruns under conservative capacities).
    """

    def __init__(
        self,
        node_id: Hashable,
        capacity: float = float("inf"),
        enforce_capacity: bool = False,
    ):
        if capacity < 0:
            raise ValueError("capacity must be nonnegative")
        self.node_id = node_id
        self.capacity = capacity
        self.enforce_capacity = enforce_capacity
        self._objects: dict[ObjectId, float] = {}

    @property
    def used(self) -> float:
        """Total size of stored objects."""
        return sum(self._objects.values())

    @property
    def free(self) -> float:
        """Remaining capacity (may be negative if overflowed)."""
        return self.capacity - self.used

    @property
    def is_overloaded(self) -> bool:
        """Whether the node exceeds its capacity."""
        return self.used > self.capacity + 1e-9

    def store(self, obj: ObjectId, size: float) -> None:
        """Store an object of the given size.

        Raises:
            PlacementError: On duplicate store, or on overflow when
                capacity enforcement is on.
        """
        if obj in self._objects:
            raise PlacementError(f"object {obj!r} already on node {self.node_id!r}")
        if self.enforce_capacity and self.used + size > self.capacity + 1e-9:
            raise PlacementError(
                f"node {self.node_id!r} cannot fit object {obj!r} "
                f"({size} > free {self.free})"
            )
        self._objects[obj] = float(size)

    def evict(self, obj: ObjectId) -> float:
        """Remove an object; returns its size.

        Raises:
            PlacementError: If the object is not stored here.
        """
        try:
            return self._objects.pop(obj)
        except KeyError:
            raise PlacementError(
                f"object {obj!r} not on node {self.node_id!r}"
            ) from None

    def holds(self, obj: ObjectId) -> bool:
        """Whether this node stores ``obj``."""
        return obj in self._objects

    def objects(self) -> list[ObjectId]:
        """Stored object ids, in insertion order."""
        return list(self._objects)

    def size_of(self, obj: ObjectId) -> float:
        """Size of a stored object."""
        try:
            return self._objects[obj]
        except KeyError:
            raise PlacementError(
                f"object {obj!r} not on node {self.node_id!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"StorageNode({self.node_id!r}, used={self.used:.6g}, "
            f"capacity={self.capacity:.6g})"
        )
