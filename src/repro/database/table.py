"""Tables: the placement objects of the database substrate.

A table is a named collection of fixed-width rows over named columns.
Rows are numpy record-like column arrays (int64 values keep the
substrate simple — the placement problem only cares about byte sizes
and join selectivities, not SQL types).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

ROW_HEADER_BYTES = 8  # per-row id/overhead, mirroring the 8-byte page ids
VALUE_BYTES = 8  # one int64 cell


class Table:
    """A named table of int64 columns.

    Args:
        name: Table name (the placement object id).
        columns: Column name -> value array; all columns must share one
            length.
    """

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]):
        self.name = str(name)
        self._columns: dict[str, np.ndarray] = {}
        length = None
        for column, values in columns.items():
            array = np.asarray(values, dtype=np.int64)
            if array.ndim != 1:
                raise ValueError(f"column {column!r} must be one-dimensional")
            if length is None:
                length = array.size
            elif array.size != length:
                raise ValueError(
                    f"column {column!r} has {array.size} rows, expected {length}"
                )
            self._columns[str(column)] = array
        if not self._columns:
            raise ValueError(f"table {self.name!r} needs at least one column")
        self._length = int(length or 0)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Row count."""
        return self._length

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names, in definition order."""
        return tuple(self._columns)

    @property
    def size_bytes(self) -> int:
        """Storage footprint: header plus cells, per row."""
        per_row = ROW_HEADER_BYTES + VALUE_BYTES * len(self._columns)
        return per_row * self._length

    def column(self, name: str) -> np.ndarray:
        """One column's values.

        Raises:
            KeyError: For unknown columns.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Whether the table defines ``name``."""
        return name in self._columns

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray) -> "Table":
        """Rows where ``mask`` is true, as a new table."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._length,):
            raise ValueError("mask length must equal row count")
        return Table(self.name, {c: v[mask] for c, v in self._columns.items()})

    def join(self, other: "Table", on: str) -> "Table":
        """Inner equi-join on a shared column.

        Columns of ``other`` (except the key) are suffixed with its
        table name on collision.  Join order does not affect the result
        contents (up to row order).

        Raises:
            KeyError: When either side lacks the join column.
        """
        left_keys = self.column(on)
        right_keys = other.column(on)
        # Sort-merge style matching via searchsorted on the right side.
        right_order = np.argsort(right_keys, kind="stable")
        sorted_right = right_keys[right_order]
        left_pos = np.searchsorted(sorted_right, left_keys, side="left")
        right_end = np.searchsorted(sorted_right, left_keys, side="right")

        left_indices: list[int] = []
        right_indices: list[int] = []
        for i, (start, end) in enumerate(zip(left_pos, right_end)):
            for j in range(start, end):
                left_indices.append(i)
                right_indices.append(int(right_order[j]))
        left_idx = np.asarray(left_indices, dtype=np.int64)
        right_idx = np.asarray(right_indices, dtype=np.int64)

        columns: dict[str, np.ndarray] = {
            c: v[left_idx] for c, v in self._columns.items()
        }
        for c, v in other._columns.items():
            if c == on:
                continue
            key = c if c not in columns else f"{other.name}.{c}"
            columns[key] = v[right_idx]
        return Table(f"{self.name}*{other.name}", columns)

    def aggregate(self, column: str, op: str = "sum") -> float:
        """Aggregate one column (``sum``, ``count``, ``min``, ``max``, ``mean``)."""
        values = self.column(column)
        if op == "sum":
            return float(values.sum())
        if op == "count":
            return float(values.size)
        if op == "min":
            return float(values.min()) if values.size else float("nan")
        if op == "max":
            return float(values.max()) if values.size else float("nan")
        if op == "mean":
            return float(values.mean()) if values.size else float("nan")
        raise ValueError(f"unknown aggregate {op!r}")

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"columns={len(self._columns)})"
        )
