"""The distributed database executor with communication accounting.

Join execution mirrors the search engine's pipelined intersection:
relations are visited smallest-first, the running join result ships to
the next table's node when they differ, and every shipped byte is
charged to the sending node.  Aggregate queries reduce locally and ship
only scalars (free, like the paper's ranked-result returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.database.queries import AggregateQuery, JoinQuery
from repro.database.table import ROW_HEADER_BYTES, VALUE_BYTES, Table

NodeId = Hashable


def _table_bytes(table: Table) -> int:
    per_row = ROW_HEADER_BYTES + VALUE_BYTES * len(table.column_names)
    return per_row * table.num_rows


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one query.

    Attributes:
        value: The aggregate value (or joined row count).
        rows: Rows in the final (pre-aggregate) result.
        bytes_transferred: Inter-node bytes moved.
        nodes_contacted: Distinct nodes involved.
        hops: Inter-node shipments performed.
    """

    value: float
    rows: int
    bytes_transferred: int
    nodes_contacted: int
    hops: int

    @property
    def is_local(self) -> bool:
        """Whether the query ran without moving data."""
        return self.bytes_transferred == 0


@dataclass
class DatabaseStats:
    """Aggregate statistics over executed queries."""

    queries: int = 0
    total_bytes: int = 0
    local_queries: int = 0
    total_hops: int = 0

    def record(self, result: QueryResult) -> None:
        """Fold one result into the totals."""
        self.queries += 1
        self.total_bytes += result.bytes_transferred
        self.total_hops += result.hops
        if result.is_local:
            self.local_queries += 1

    @property
    def local_fraction(self) -> float:
        """Fraction of queries that ran without communication."""
        return self.local_queries / self.queries if self.queries else 0.0


class DistributedDatabase:
    """Tables spread over nodes, with a placement lookup.

    Args:
        tables: The table catalog.
        placement: Table-name -> node mapping or a
            :class:`~repro.core.placement.Placement` over table names.
    """

    def __init__(
        self,
        tables: Iterable[Table],
        placement: Placement | Mapping[str, NodeId],
    ):
        self.catalog: dict[str, Table] = {t.name: t for t in tables}
        if isinstance(placement, Placement):
            self.lookup: dict[str, NodeId] = {
                str(k): v for k, v in placement.to_mapping().items()
            }
        else:
            self.lookup = dict(placement)
        missing = [name for name in self.catalog if name not in self.lookup]
        if missing:
            raise ValueError(f"tables without a node assignment: {missing}")

    def table(self, name: str) -> Table:
        """Catalog lookup.

        Raises:
            KeyError: For unknown tables.
        """
        try:
            return self.catalog[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_join(self, query: JoinQuery) -> QueryResult:
        """Run an equi-join chain, smallest relation first."""
        tables = [self.table(name) for name in query.tables]
        tables.sort(key=lambda t: (t.size_bytes, t.name))
        current = tables[0]
        current_node = self.lookup[tables[0].name]
        nodes = {self.lookup[t.name] for t in tables}
        transferred = 0
        hops = 0
        for nxt in tables[1:]:
            target = self.lookup[nxt.name]
            if target != current_node:
                transferred += _table_bytes(current)
                hops += 1
                current_node = target
            current = current.join(nxt, on=query.on)

        if query.aggregate_column is None:
            value = float(current.num_rows)
        else:
            value = current.aggregate(query.aggregate_column, query.aggregate_op)
        return QueryResult(
            value=value,
            rows=current.num_rows,
            bytes_transferred=transferred,
            nodes_contacted=len(nodes),
            hops=hops,
        )

    def execute_aggregate(self, query: AggregateQuery) -> QueryResult:
        """Scatter/gather aggregation: local partials, scalar gather."""
        partials = []
        nodes = set()
        for name in query.tables:
            table = self.table(name)
            nodes.add(self.lookup[name])
            if table.has_column(query.column):
                partials.append(table.aggregate(query.column, query.op))
        value = _combine(partials, query.op)
        # Scalar partials are control traffic — free, as in the paper.
        return QueryResult(
            value=value,
            rows=len(partials),
            bytes_transferred=0,
            nodes_contacted=len(nodes),
            hops=max(len(nodes) - 1, 0),
        )

    def execute_log(
        self, queries: Iterable[JoinQuery | AggregateQuery]
    ) -> DatabaseStats:
        """Execute a mixed query stream and aggregate statistics."""
        stats = DatabaseStats()
        for query in queries:
            if isinstance(query, JoinQuery):
                stats.record(self.execute_join(query))
            elif isinstance(query, AggregateQuery):
                stats.record(self.execute_aggregate(query))
            else:
                raise TypeError(f"unsupported query type {type(query).__name__}")
        return stats

    # ------------------------------------------------------------------
    # Placement bridge
    # ------------------------------------------------------------------
    def placement_problem(
        self,
        queries: Iterable[JoinQuery | AggregateQuery],
        nodes: Mapping[NodeId, float] | int,
        min_support: int = 1,
    ) -> PlacementProblem:
        """Build the CCA instance for this catalog and a query trace.

        Join queries use the two-smallest reduction (they are
        intersection-like); aggregate queries move no table data and
        contribute no correlations.
        """
        from repro.core.correlation import two_smallest_correlations

        sizes = {name: float(t.size_bytes) for name, t in self.catalog.items()}
        trace = [
            q.objects for q in queries if isinstance(q, JoinQuery)
        ]
        correlations = two_smallest_correlations(trace, sizes, min_support)
        return PlacementProblem.build(sizes, nodes, correlations)


def _combine(partials: list[float], op: str) -> float:
    if not partials:
        return float("nan") if op in ("min", "max", "mean") else 0.0
    if op in ("sum", "count"):
        return float(sum(partials))
    if op == "min":
        return float(min(partials))
    if op == "max":
        return float(max(partials))
    if op == "mean":
        # Mean of per-table means is not the global mean in general;
        # the substrate keeps the simple semantics and documents it.
        return float(sum(partials) / len(partials))
    raise ValueError(f"unknown aggregate {op!r}")
