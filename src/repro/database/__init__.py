"""Distributed database substrate.

Section 1.1's second motivating application: "an aggregation query
accesses multiple data objects in a distributed database".  This
subpackage is that application made concrete — relational tables as
placement objects, join/aggregation queries as multi-object operations,
and a distributed executor whose communication accounting matches the
CCA cost model (a two-table join ships the smaller relation).
"""

from repro.database.engine import DatabaseStats, DistributedDatabase, QueryResult
from repro.database.queries import AggregateQuery, JoinQuery
from repro.database.table import Table
from repro.database.workload import SchemaConfig, generate_schema, generate_queries

__all__ = [
    "AggregateQuery",
    "DatabaseStats",
    "DistributedDatabase",
    "JoinQuery",
    "QueryResult",
    "SchemaConfig",
    "Table",
    "generate_queries",
    "generate_schema",
]
