"""Query descriptions for the database substrate.

Two multi-object operation classes, matching Section 3.2's taxonomy:

* :class:`JoinQuery` — intersection-like: tables chain through equi-
  joins, the running result shrinking as it goes;
* :class:`AggregateQuery` — union-like only in its access pattern: it
  touches several tables and reduces each locally, shipping scalar
  partials (which the paper's accounting treats as free control
  traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class JoinQuery:
    """An equi-join chain over two or more tables.

    Attributes:
        tables: Table names, in declaration order (the executor is free
            to reorder — smaller relations first).
        on: The shared join column.
        aggregate_column: Optional column of the final result to
            aggregate (``None`` returns the row count).
        aggregate_op: Aggregate operator when a column is given.
    """

    tables: tuple[str, ...]
    on: str
    aggregate_column: str | None = None
    aggregate_op: str = "sum"

    def __post_init__(self):
        if len(self.tables) < 2:
            raise ValueError("a join needs at least two tables")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("join tables must be distinct")

    @property
    def objects(self) -> tuple[str, ...]:
        """The placement objects this query touches."""
        return self.tables


@dataclass(frozen=True)
class AggregateQuery:
    """Per-table aggregation over several tables (scatter/gather).

    Attributes:
        tables: Table names to aggregate.
        column: Column aggregated in each table (tables lacking it
            contribute nothing).
        op: Aggregate operator.
    """

    tables: tuple[str, ...]
    column: str = "value"
    op: str = "sum"

    def __post_init__(self):
        if not self.tables:
            raise ValueError("an aggregate query needs at least one table")

    @property
    def objects(self) -> tuple[str, ...]:
        """The placement objects this query touches."""
        return self.tables
