"""Synthetic schema and query workloads for the database substrate.

Models a star-ish analytics schema: entity groups (a fact table plus
its dimensions) whose tables are queried together — the database-world
analogue of the search workload's keyword topics.  Join queries stay
mostly within a group (skewed by group popularity), occasionally
crossing groups; aggregate queries sweep a few tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.database.queries import AggregateQuery, JoinQuery
from repro.database.table import Table
from repro.workloads.zipf import zipf_probabilities

JOIN_KEY = "key"
VALUE_COLUMN = "value"


@dataclass(frozen=True)
class SchemaConfig:
    """Shape of the synthetic schema.

    Attributes:
        num_groups: Entity groups (fact + dimensions).
        dimensions_per_group: Dimension tables per group.
        fact_rows: Rows in each group's fact table.
        dimension_rows: Rows in each dimension table.
        key_space: Distinct join-key values within a group (controls
            join selectivity).
        seed: RNG seed.
    """

    num_groups: int = 8
    dimensions_per_group: int = 3
    fact_rows: int = 2000
    dimension_rows: int = 300
    key_space: int = 500
    seed: int = 0


def generate_schema(config: SchemaConfig = SchemaConfig()) -> list[Table]:
    """Generate the table catalog for a schema config."""
    rng = np.random.default_rng(config.seed)
    tables: list[Table] = []
    for g in range(config.num_groups):
        fact_keys = rng.integers(0, config.key_space, config.fact_rows)
        tables.append(
            Table(
                f"fact_{g}",
                {
                    JOIN_KEY: fact_keys,
                    VALUE_COLUMN: rng.integers(1, 1000, config.fact_rows),
                },
            )
        )
        for d in range(config.dimensions_per_group):
            # Dimensions hold a subset of the key space (like lookup
            # tables): distinct keys plus an attribute.
            keys = rng.choice(
                config.key_space,
                size=min(config.dimension_rows, config.key_space),
                replace=False,
            )
            tables.append(
                Table(
                    f"dim_{g}_{d}",
                    {
                        JOIN_KEY: keys,
                        VALUE_COLUMN: rng.integers(1, 100, keys.size),
                        "attr": rng.integers(0, 10, keys.size),
                    },
                )
            )
    return tables


def generate_queries(
    config: SchemaConfig = SchemaConfig(),
    num_queries: int = 2000,
    group_exponent: float = 1.0,
    cross_group_fraction: float = 0.1,
    aggregate_fraction: float = 0.15,
    seed: int | None = 1,
) -> list[JoinQuery | AggregateQuery]:
    """Generate a mixed join/aggregate query trace.

    Args:
        config: The schema the queries run against.
        num_queries: Trace length.
        group_exponent: Zipf skew of group popularity (drives the
            correlation skew, like topic popularity does for search).
        cross_group_fraction: Probability a join reaches into a second
            group (the workload's weak cross-correlations).
        aggregate_fraction: Share of scatter/gather aggregate queries.
        seed: RNG seed.
    """
    if not 0 <= cross_group_fraction <= 1 or not 0 <= aggregate_fraction <= 1:
        raise ValueError("fractions must be in [0, 1]")
    rng = np.random.default_rng(seed)
    popularity = zipf_probabilities(config.num_groups, group_exponent)

    def group_tables(g: int) -> list[str]:
        return [f"fact_{g}"] + [
            f"dim_{g}_{d}" for d in range(config.dimensions_per_group)
        ]

    queries: list[JoinQuery | AggregateQuery] = []
    for _ in range(num_queries):
        g = int(rng.choice(config.num_groups, p=popularity))
        members = group_tables(g)
        if rng.random() < aggregate_fraction:
            count = int(rng.integers(2, len(members) + 1))
            picked = rng.choice(members, size=count, replace=False)
            queries.append(AggregateQuery(tuple(sorted(picked)), VALUE_COLUMN, "sum"))
            continue
        # Join: the fact table with 1-2 of its dimensions.
        num_dims = int(rng.integers(1, min(2, config.dimensions_per_group) + 1))
        dims = list(
            rng.choice(members[1:], size=num_dims, replace=False)
        )
        tables = [members[0], *dims]
        if rng.random() < cross_group_fraction and config.num_groups > 1:
            other = int(rng.choice([x for x in range(config.num_groups) if x != g]))
            tables.append(f"dim_{other}_0")
        queries.append(JoinQuery(tuple(tables), on=JOIN_KEY, aggregate_column=VALUE_COLUMN))
    return queries
