"""The optimality-gap harness: exact vs LPRR vs first-order.

The paper evaluates LPRR only against baselines it dominates (hash,
greedy), so its distance from the true optimum is an article of faith.
This module measures it: :func:`run_gap` draws a batch of seeded small
instances, solves each with a proven-optimal reference — the
dependency-free branch-and-bound in :mod:`repro.core.exact` by
default, or CP-SAT (``--reference cpsat``, needs the ``repro[exact]``
extra) — and plans the same instance with HiGHS LPRR and the
first-order backend (``lprr:fo``).  The per-instance cost ratios
``lprr/exact`` and ``fo/exact`` are the optimality gaps.

Instances are clustered (topic-style co-access groups plus a sprinkle
of cross-cluster pairs) because that is the workload shape the paper's
Section 4 mines from real query logs; ``objects`` stays small enough
for the exact reference (default 12 <= the branch-and-bound's
18-object guard).

Determinism: every instance is a pure function of ``(seed, index)``,
planners run with fixed seeds, and the report rounds every float and
sorts every key — same-seed runs are byte-identical, which the CI
``gap-smoke`` job enforces with a literal byte compare.  A cost of 0
(everything colocatable) makes a ratio meaningless; those instances
report ``ratio = 1.0`` when the planner also reached 0, else the
absolute cost is surfaced in ``*_cost`` for inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, plan

GAP_REPORT_SCHEMA = "repro.gap.report/v1"


@dataclass(frozen=True)
class GapCase:
    """One instance's exact/LPRR/first-order comparison.

    Attributes:
        index: Instance number within the batch.
        objects: Objects in the instance.
        nodes: Nodes in the instance.
        pairs: Correlated pairs in the instance.
        exact_cost: The proven-optimal communication cost.
        lprr_cost: HiGHS LPRR's cost on the same instance.
        fo_cost: The first-order backend's cost.
        lprr_ratio: ``lprr_cost / exact_cost`` (1.0 when both are 0).
            Near-zero optima inflate this wildly; read it together
            with the excess.
        fo_ratio: ``fo_cost / exact_cost`` (1.0 when both are 0).
        lprr_excess: ``(lprr_cost - exact_cost) / total_weight`` — the
            fraction of all correlated traffic LPRR leaves
            un-colocated beyond what is unavoidable.  Stable even when
            ``exact_cost`` is (near) zero.
        fo_excess: Same for the first-order backend.
    """

    index: int
    objects: int
    nodes: int
    pairs: int
    exact_cost: float
    lprr_cost: float
    fo_cost: float
    lprr_ratio: float
    fo_ratio: float
    lprr_excess: float
    fo_excess: float

    def to_dict(self) -> dict:
        """JSON-ready form (floats rounded for byte stability)."""
        return {
            "index": self.index,
            "objects": self.objects,
            "nodes": self.nodes,
            "pairs": self.pairs,
            "exact_cost": round(self.exact_cost, 9),
            "lprr_cost": round(self.lprr_cost, 9),
            "fo_cost": round(self.fo_cost, 9),
            "lprr_ratio": round(self.lprr_ratio, 9),
            "fo_ratio": round(self.fo_ratio, 9),
            "lprr_excess": round(self.lprr_excess, 9),
            "fo_excess": round(self.fo_excess, 9),
        }


@dataclass(frozen=True)
class GapReport:
    """A full gap run: per-instance cases plus aggregate ratios.

    Attributes:
        seed: Root seed of the batch.
        reference: ``"exact"`` (branch and bound) or ``"cpsat"``.
        cases: Per-instance comparisons.
    """

    seed: int
    reference: str
    cases: tuple[GapCase, ...]

    @property
    def mean_lprr_ratio(self) -> float:
        """Mean LPRR optimality gap across the batch."""
        return float(np.mean([c.lprr_ratio for c in self.cases]))

    @property
    def mean_fo_ratio(self) -> float:
        """Mean first-order optimality gap across the batch."""
        return float(np.mean([c.fo_ratio for c in self.cases]))

    @property
    def max_lprr_ratio(self) -> float:
        """Worst LPRR gap in the batch."""
        return float(max(c.lprr_ratio for c in self.cases))

    @property
    def max_fo_ratio(self) -> float:
        """Worst first-order gap in the batch."""
        return float(max(c.fo_ratio for c in self.cases))

    @property
    def mean_lprr_excess(self) -> float:
        """Mean LPRR excess-cost fraction across the batch."""
        return float(np.mean([c.lprr_excess for c in self.cases]))

    @property
    def mean_fo_excess(self) -> float:
        """Mean first-order excess-cost fraction across the batch."""
        return float(np.mean([c.fo_excess for c in self.cases]))

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "schema": GAP_REPORT_SCHEMA,
            "seed": self.seed,
            "reference": self.reference,
            "instances": len(self.cases),
            "mean_lprr_ratio": round(self.mean_lprr_ratio, 9),
            "mean_fo_ratio": round(self.mean_fo_ratio, 9),
            "max_lprr_ratio": round(self.max_lprr_ratio, 9),
            "max_fo_ratio": round(self.max_fo_ratio, 9),
            "mean_lprr_excess": round(self.mean_lprr_excess, 9),
            "mean_fo_excess": round(self.mean_fo_excess, 9),
            "cases": [c.to_dict() for c in self.cases],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — byte-identical per seed."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable per-instance table."""
        lines = [
            f"optimality gap: {len(self.cases)} seeded instances vs "
            f"{self.reference} reference (seed {self.seed})",
            "",
            f"{'inst':>4} {'objs':>5} {'pairs':>6} {'exact':>10} "
            f"{'lprr':>10} {'fo':>10} {'lprr/opt':>9} {'fo/opt':>9}",
        ]
        for c in self.cases:
            lines.append(
                f"{c.index:>4} {c.objects:>5} {c.pairs:>6} "
                f"{c.exact_cost:>10.4f} {c.lprr_cost:>10.4f} "
                f"{c.fo_cost:>10.4f} {c.lprr_ratio:>9.4f} {c.fo_ratio:>9.4f}"
            )
        lines.append("")
        lines.append(
            f"mean gap: lprr {self.mean_lprr_ratio:.4f}x, "
            f"fo {self.mean_fo_ratio:.4f}x | "
            f"max gap: lprr {self.max_lprr_ratio:.4f}x, "
            f"fo {self.max_fo_ratio:.4f}x"
        )
        lines.append(
            f"mean excess (fraction of total pair weight): "
            f"lprr {self.mean_lprr_excess:.4f}, fo {self.mean_fo_excess:.4f}"
        )
        return "\n".join(lines)


def gap_instance(
    seed: int, index: int, objects: int = 12, nodes: int = 3
) -> PlacementProblem:
    """One seeded small instance for the gap harness.

    Objects come in co-access clusters of 3-4 with dense intra-cluster
    pairs, a few cross-cluster pairs, heterogeneous sizes, and tight
    capacities (1.4x average load) so colocating a whole cluster is
    usually — but not always — possible.  Pure function of
    ``(seed, index, objects, nodes)``.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    sizes = {f"o{i}": float(rng.uniform(0.5, 2.0)) for i in range(objects)}
    cluster_size = int(rng.integers(3, 5))
    pairs: dict[tuple[str, str], float] = {}
    for start in range(0, objects, cluster_size):
        members = [f"o{i}" for i in range(start, min(start + cluster_size, objects))]
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                pairs[(members[a], members[b])] = float(rng.uniform(0.5, 1.0))
    # Cross-cluster noise: weak pairs that make the optimum nontrivial.
    for _ in range(objects // 3):
        i, j = rng.choice(objects, size=2, replace=False)
        key = (f"o{min(i, j)}", f"o{max(i, j)}")
        pairs.setdefault(key, float(rng.uniform(0.05, 0.2)))
    total = sum(sizes.values())
    capacity = 1.4 * total / nodes
    return PlacementProblem.build(
        sizes, {f"n{k}": capacity for k in range(nodes)}, pairs
    )


def _ratio(cost: float, exact: float) -> float:
    """Planner-to-optimal cost ratio, defined even at a 0 optimum."""
    if exact <= 1e-12:
        return 1.0 if cost <= 1e-9 else float("inf")
    return cost / exact


def run_gap(
    *,
    seed: int = 0,
    instances: int = 8,
    objects: int = 12,
    nodes: int = 3,
    reference: str = "exact",
) -> GapReport:
    """Measure LPRR's and the first-order backend's optimality gaps.

    Args:
        seed: Root seed; the whole report is a pure function of it.
        instances: Seeded instances to draw.
        objects: Objects per instance (keep <= 18 for the
            branch-and-bound reference).
        nodes: Nodes per instance.
        reference: ``"exact"`` for the dependency-free branch and
            bound, ``"cpsat"`` for the ortools backend (raises
            :class:`~repro.exceptions.SolverError` when ortools is
            absent).

    Returns:
        The byte-reproducible :class:`GapReport`.
    """
    if reference not in ("exact", "cpsat"):
        raise ValueError(f"unknown reference {reference!r} (exact or cpsat)")
    if instances < 1:
        raise ValueError("instances must be at least 1")

    cases = []
    with obs.span("gap.run", instances=instances, reference=reference):
        for index in range(instances):
            problem = gap_instance(seed, index, objects=objects, nodes=nodes)
            if reference == "cpsat":
                from repro.lpsolve.cpsat_backend import solve_placement_cpsat

                exact_cost = solve_placement_cpsat(problem, seed=seed).cost
            else:
                from repro.core.exact import solve_exact

                exact_cost = solve_exact(problem).cost
            # capacity_factor=None keeps the instance's own (tight)
            # capacities, and zero tolerance keeps every placement
            # strictly feasible — otherwise the 5% default slack lets a
            # planner "beat" the optimum and the ratio dips below 1.
            config = PlanConfig(
                seed=seed, capacity_factor=None, capacity_tolerance=0.0
            )
            lprr_cost = plan(problem, "lprr", config).cost
            fo_cost = plan(problem, "lprr:fo", config).cost
            total_weight = float(np.sum(problem.pair_weights))
            case = GapCase(
                index=index,
                objects=problem.num_objects,
                nodes=problem.num_nodes,
                pairs=problem.num_pairs,
                exact_cost=exact_cost,
                lprr_cost=lprr_cost,
                fo_cost=fo_cost,
                lprr_ratio=_ratio(lprr_cost, exact_cost),
                fo_ratio=_ratio(fo_cost, exact_cost),
                lprr_excess=(lprr_cost - exact_cost) / max(total_weight, 1e-12),
                fo_excess=(fo_cost - exact_cost) / max(total_weight, 1e-12),
            )
            cases.append(case)
            obs.record("gap.case", **case.to_dict())
    return GapReport(seed=seed, reference=reference, cases=tuple(cases))
