"""Placement-group indirection: plan millions of objects via a small map.

See ``docs/SCALE.md``.  The public surface:

* :class:`PGMap` — the small, stable object→node map (a
  :class:`~repro.core.placement.PlacementMap`).
* :func:`build_grouping` / :func:`aggregate_problem` /
  :func:`expand_assignment` — the coarsening pipeline.
* :func:`plan_with_groups` — the ``"lprr:pg"`` registry planner.
* :func:`select_group_migrations` / :func:`repair_lost_groups` —
  PG-granular replanning and repair.
"""

from repro.pg.aggregate import (
    Grouping,
    aggregate_problem,
    build_grouping,
    expand_assignment,
    map_from_coarse,
)
from repro.pg.groups import PGMap, pg_group, rendezvous_node
from repro.pg.planner import (
    DEFAULT_GROUPS,
    plan_with_groups,
    repair_lost_groups,
    resolve_pg_scope,
    select_group_migrations,
)

__all__ = [
    "DEFAULT_GROUPS",
    "Grouping",
    "PGMap",
    "aggregate_problem",
    "build_grouping",
    "expand_assignment",
    "map_from_coarse",
    "pg_group",
    "plan_with_groups",
    "rendezvous_node",
    "repair_lost_groups",
    "resolve_pg_scope",
    "select_group_migrations",
]
