"""Aggregate a problem to placement-group granularity and back.

The pg planner's pipeline is ``build_grouping`` (who is exact, who is
in which group) → ``aggregate_problem`` (a coarse
:class:`~repro.core.problem.PlacementProblem` over groups + exact
objects) → plan the coarse problem → ``expand_assignment`` (gather the
coarse answer back to one node index per object).

Aggregation is exact for the objective restricted to inter-coarse
pairs: group sizes are the sums of their members' sizes, a coarse
pair's weight is the summed ``r(i,j) * w(i,j)`` of the object pairs it
covers (stored as the coarse correlation with unit cost), and resource
loads sum the same way.  Intra-group pairs are dropped — their members
are co-located by construction, so they contribute zero cost in the
expanded placement.  All three steps are vectorized gathers/scatters
(coarse-index gather, packed int64 pair keys, ``np.unique`` +
``bincount``) and emit ``pg.build`` / ``pg.aggregate`` / ``pg.expand``
spans and journal records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.importance import top_important
from repro.core.problem import PlacementProblem
from repro.core.resources import ResourceSpec
from repro.pg.groups import PGMap, _group_key, pg_group, rendezvous_node


@dataclass(frozen=True)
class Grouping:
    """How one problem's objects fold into coarse planning units.

    Coarse object order: the non-empty groups in ascending group id,
    then the exact objects in importance order.  Group coarse ids are
    ``("pg", g)`` tuples so they can never collide with real object
    ids.

    Attributes:
        num_groups: Requested group count ``K``.
        salt: Hash salt the grouping was drawn with.
        exact_ids: Object ids kept exact, in importance order.
        exact_index: Their indices in the problem's object order.
        object_groups: ``(t,)`` group id per object, ``-1`` for exact
            objects.
        group_coarse: ``(K,)`` coarse index per group, ``-1`` for
            groups no object hashed into.
        coarse_of_object: ``(t,)`` coarse index per object.
        coarse_ids: Coarse object ids, in coarse index order.
    """

    num_groups: int
    salt: str
    exact_ids: tuple
    exact_index: np.ndarray
    object_groups: np.ndarray
    group_coarse: np.ndarray
    coarse_of_object: np.ndarray
    coarse_ids: tuple

    @property
    def num_coarse(self) -> int:
        return len(self.coarse_ids)

    @property
    def nonempty_groups(self) -> int:
        return int((self.group_coarse >= 0).sum())


def build_grouping(
    problem: PlacementProblem,
    groups: int,
    important: int = 0,
    salt: str = "",
) -> Grouping:
    """Split a problem into exact objects and hashed placement groups.

    The top-``important`` objects by the paper's importance ranking
    (:func:`~repro.core.importance.top_important`) stay exact; every
    other object lands in ``pg_group(obj, groups, salt)``.  Groups
    that end up empty are dropped from the coarse space (the coarse
    problem requires positive sizes) but keep their ids in the PG map.
    """
    if groups < 1:
        raise ValueError("groups must be at least 1")
    t = problem.num_objects
    with obs.span("pg.build", objects=t, groups=groups) as span:
        exact_ids = tuple(top_important(problem, min(important, t)))
        exact_index = np.fromiter(
            (problem.object_index(obj) for obj in exact_ids),
            dtype=np.int64,
            count=len(exact_ids),
        )
        object_groups = np.fromiter(
            (pg_group(obj, groups, salt) for obj in problem.object_ids),
            dtype=np.int64,
            count=t,
        )
        object_groups[exact_index] = -1

        tail = object_groups >= 0
        counts = np.bincount(object_groups[tail], minlength=groups)
        nonempty = np.flatnonzero(counts > 0)
        group_coarse = np.full(groups, -1, dtype=np.int64)
        group_coarse[nonempty] = np.arange(nonempty.size, dtype=np.int64)

        coarse_of_object = np.empty(t, dtype=np.int64)
        coarse_of_object[tail] = group_coarse[object_groups[tail]]
        coarse_of_object[exact_index] = nonempty.size + np.arange(
            len(exact_ids), dtype=np.int64
        )
        coarse_ids = tuple(("pg", int(g)) for g in nonempty) + exact_ids
        span.set(nonempty=int(nonempty.size), exact=len(exact_ids))
        obs.record(
            "pg.build",
            objects=t,
            groups=groups,
            nonempty=int(nonempty.size),
            exact=len(exact_ids),
        )
    return Grouping(
        num_groups=groups,
        salt=salt,
        exact_ids=exact_ids,
        exact_index=exact_index,
        object_groups=object_groups,
        group_coarse=group_coarse,
        coarse_of_object=coarse_of_object,
        coarse_ids=coarse_ids,
    )


def aggregate_problem(
    problem: PlacementProblem, grouping: Grouping
) -> PlacementProblem:
    """The coarse problem over groups + exact objects.

    Sizes, pair weights, and resource loads aggregate by sum;
    intra-coarse pairs are dropped (co-located for free).  Node ids
    and capacities carry over unchanged, so a feasible coarse
    placement expands to a feasible object placement exactly.
    """
    c = grouping.num_coarse
    with obs.span(
        "pg.aggregate", objects=problem.num_objects, coarse=c
    ) as span:
        sizes = np.bincount(
            grouping.coarse_of_object, weights=problem.sizes, minlength=c
        )
        if problem.num_pairs:
            u = grouping.coarse_of_object[problem.pair_index[:, 0]]
            v = grouping.coarse_of_object[problem.pair_index[:, 1]]
            inter = u != v
            lo = np.minimum(u[inter], v[inter])
            hi = np.maximum(u[inter], v[inter])
            # Packed keys sort as (lo, hi) lexicographic, so the
            # unique'd coarse pairs come out canonically ordered.
            keys = lo * c + hi
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            weights = np.bincount(
                inverse,
                weights=problem.pair_weights[inter],
                minlength=unique_keys.size,
            )
            pair_index = np.stack(
                [unique_keys // c, unique_keys % c], axis=1
            ).astype(np.int64)
            dropped = int(problem.num_pairs - inter.sum())
        else:
            pair_index = np.empty((0, 2), dtype=np.int64)
            weights = np.empty(0, dtype=float)
            dropped = 0
        resources = tuple(
            ResourceSpec(
                name=spec.name,
                loads=np.bincount(
                    grouping.coarse_of_object,
                    weights=spec.loads,
                    minlength=c,
                ),
                budgets=spec.budgets.copy(),
            )
            for spec in problem.resources
        )
        coarse = PlacementProblem(
            object_ids=grouping.coarse_ids,
            sizes=sizes,
            node_ids=problem.node_ids,
            capacities=problem.capacities.copy(),
            pair_index=pair_index,
            # Summed pair weight rides in the correlation with unit
            # cost, so coarse pair_weights equal the covered object
            # pair weights exactly.
            correlations=weights,
            pair_costs=np.ones(len(weights)),
            resources=resources,
        )
        span.set(pairs=coarse.num_pairs, intra_dropped=dropped)
        obs.record(
            "pg.aggregate",
            coarse_objects=c,
            coarse_pairs=coarse.num_pairs,
            intra_dropped=dropped,
        )
    return coarse


def expand_assignment(grouping: Grouping, pg_map: PGMap) -> np.ndarray:
    """Object-level node indices for a PG map, as one vectorized gather.

    The inverse of aggregation: tail objects gather their group's node
    from ``pg_map.group_nodes``; exact objects look up their own
    entry.
    """
    t = grouping.object_groups.size
    with obs.span("pg.expand", objects=t, groups=grouping.num_groups):
        assignment = np.empty(t, dtype=np.int64)
        tail = grouping.object_groups >= 0
        assignment[tail] = pg_map.group_nodes[grouping.object_groups[tail]]
        for obj, i in zip(grouping.exact_ids, grouping.exact_index):
            assignment[i] = pg_map.exact_nodes[obj]
        obs.record(
            "pg.expand", objects=t, exact=len(grouping.exact_ids)
        )
    return assignment


def map_from_coarse(
    problem: PlacementProblem,
    grouping: Grouping,
    coarse_assignment: np.ndarray,
    salt: str = "",
    fallback: PGMap | None = None,
) -> PGMap:
    """A :class:`PGMap` from a coarse placement's assignment array.

    Empty groups (no member object, hence no coarse entry) still need
    a node for future objects hashing into them: they keep their entry
    from ``fallback`` when given, else take their rendezvous winner
    over all nodes.
    """
    group_nodes = np.empty(grouping.num_groups, dtype=np.int64)
    all_nodes = range(problem.num_nodes)
    for g in range(grouping.num_groups):
        coarse = grouping.group_coarse[g]
        if coarse >= 0:
            group_nodes[g] = coarse_assignment[coarse]
        elif fallback is not None:
            group_nodes[g] = fallback.group_nodes[g]
        else:
            group_nodes[g] = rendezvous_node(
                _group_key(g), all_nodes, problem.node_ids, salt
            )
    offset = grouping.nonempty_groups
    exact_nodes = {
        obj: int(coarse_assignment[offset + m])
        for m, obj in enumerate(grouping.exact_ids)
    }
    return PGMap(
        num_groups=grouping.num_groups,
        salt=salt,
        node_ids=problem.node_ids,
        group_nodes=group_nodes,
        exact_nodes=exact_nodes,
        retired=frozenset() if fallback is None else fallback.retired,
    )
