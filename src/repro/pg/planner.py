"""The ``"lprr:pg"`` planner and PG-granular replan/repair helpers.

:func:`plan_with_groups` runs the paper's LPRR pipeline at
placement-group granularity: group the tail
(:func:`~repro.pg.aggregate.build_grouping`), aggregate
(:func:`~repro.pg.aggregate.aggregate_problem`), plan the coarse
problem through the ordinary ``"lprr"`` planner, then expand the
answer back to an object-level placement.  The LP sees ``K + M``
"objects" regardless of the real object count, which is what makes
million-object problems plannable on a laptop (see ``docs/SCALE.md``
and the ``pg`` bench case).

Plans cache under their own ``pgplan`` kind, keyed by the full
problem's fingerprint plus every grouping and LPRR knob — a PG plan
and an exact plan for the same problem can never collide.

:func:`select_group_migrations` and :func:`repair_lost_groups` compose
the map with :func:`~repro.core.migration.select_migrations` and the
:class:`~repro.resilience.repair.RepairOutcome` contract, so replans
and repairs move PG-granular byte volumes instead of bookkeeping a
million individual objects.
"""

from __future__ import annotations

import json

import numpy as np

from repro import obs
from repro.core.migration import (
    MigrationPlan,
    diff_placements,
    select_migrations,
)
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import (
    PlanConfig,
    PlanResult,
    PlanScope,
    _finish,
    plan,
)
from repro.pg.aggregate import (
    Grouping,
    aggregate_problem,
    build_grouping,
    expand_assignment,
    map_from_coarse,
)
from repro.pg.groups import PGMap

# Default group count when ``lprr:pg`` is invoked without a pg scope
# (e.g. ``repro place --strategy lprr:pg`` with no ``--pg-groups``).
DEFAULT_GROUPS = 1024


def resolve_pg_scope(
    problem: PlacementProblem, config: PlanConfig
) -> PlanScope:
    """The effective pg scope: the config's, or a clipped default."""
    spec = config.scope_spec
    if spec.kind == "pg":
        return spec
    return PlanScope.pg(
        groups=max(1, min(DEFAULT_GROUPS, problem.num_objects)), important=0
    )


def _pg_signature(config: PlanConfig, spec: PlanScope) -> str:
    """Cache signature covering every knob a pg plan depends on.

    ``jobs`` is deliberately absent — the parallel engine guarantees
    identical placements for every jobs value.
    """
    return json.dumps(
        {
            "scope": spec.signature(),
            "salt": config.hash_salt,
            "seed": config.seed,
            "rounding_trials": config.rounding_trials,
            "capacity_factor": config.capacity_factor,
            "capacity_tolerance": config.capacity_tolerance,
            "backend": config.backend,
            "lp_time_limit": config.lp_time_limit,
            "lp_iteration_limit": config.lp_iteration_limit,
            "decompose": config.decompose,
            "repair": config.repair,
        },
        sort_keys=True,
    )


def _load_cached_map(doc: dict, grouping: Grouping) -> PGMap | None:
    """Rebuild the cached PG map keyed by this problem's real ids."""
    try:
        stored = PGMap.from_dict(doc["pg_map"])
        exact = {
            obj: stored.exact_nodes[str(obj)] for obj in grouping.exact_ids
        }
        return PGMap(
            num_groups=stored.num_groups,
            salt=stored.salt,
            node_ids=stored.node_ids,
            group_nodes=stored.group_nodes,
            exact_nodes=exact,
            retired=stored.retired,
        )
    except Exception:  # noqa: BLE001 — corrupt cache degrades to a miss
        return None


def plan_with_groups(
    problem: PlacementProblem, *, config: PlanConfig = PlanConfig()
) -> PlanResult:
    """Plan through placement groups; the registry's ``"lprr:pg"``.

    Args:
        problem: The CCA instance (any size — the LP only ever sees
            the coarse problem).
        config: Planning knobs; ``config.scope`` should be a
            ``PlanScope.pg(K, M)`` (anything else falls back to
            ``K = min(1024, |T|)``, ``M = 0``).

    Returns:
        A :class:`PlanResult` with ``planner="lprr:pg"``, the expanded
        object-level placement, and the :class:`PGMap` in ``details``.
    """
    spec = resolve_pg_scope(problem, config)
    with obs.timed("plan", planner="lprr:pg") as span:
        cache = config.make_cache()
        if config.warm_start is not None:
            # Warm-started aggregate solves depend on state outside the
            # cache signature; skip the pg cache like LPRR skips its own.
            cache = None
        key = None
        pg_map = None
        cached: dict | None = None
        if cache is not None:
            from repro.parallel.cache import (
                problem_fingerprint,
                signature_key,
            )

            key = signature_key(
                problem_fingerprint(problem), _pg_signature(config, spec)
            )
            cached = cache.load("pgplan", key)

        grouping = build_grouping(
            problem, spec.groups, spec.important, config.hash_salt
        )
        if cached is not None:
            pg_map = _load_cached_map(cached, grouping)

        diagnostics: dict = {
            "groups": spec.groups,
            "nonempty_groups": grouping.nonempty_groups,
            "important": len(grouping.exact_ids),
            "jobs": config.jobs,
        }
        if pg_map is not None:
            diagnostics["cache"] = "hit"
            diagnostics["coarse_objects"] = int(
                cached.get("coarse_objects", grouping.num_coarse)
            )
            diagnostics["coarse_pairs"] = int(cached.get("coarse_pairs", 0))
            diagnostics["coarse_lp_lower_bound"] = float(
                cached.get("coarse_lp_lower_bound", 0.0)
            )
        else:
            coarse = aggregate_problem(problem, grouping)
            inner = plan(coarse, "lprr", config.with_options(scope=None))
            pg_map = map_from_coarse(
                problem,
                grouping,
                inner.placement.assignment,
                salt=config.hash_salt,
            )
            diagnostics["cache"] = "off" if cache is None else "miss"
            diagnostics["coarse_objects"] = coarse.num_objects
            diagnostics["coarse_pairs"] = coarse.num_pairs
            diagnostics["coarse_lp_lower_bound"] = float(
                inner.diagnostics.get("lp_lower_bound", 0.0)
            )
            if cache is not None and key is not None:
                cache.store(
                    "pgplan",
                    key,
                    {
                        "pg_map": pg_map.to_dict(),
                        "coarse_objects": coarse.num_objects,
                        "coarse_pairs": coarse.num_pairs,
                        "coarse_lp_lower_bound": diagnostics[
                            "coarse_lp_lower_bound"
                        ],
                    },
                )

        placement = Placement(
            problem, expand_assignment(grouping, pg_map)
        )
    return _finish(
        "lprr:pg", placement, span.duration, diagnostics, pg_map
    )


# ----------------------------------------------------------------------
# PG-granular replanning and repair
# ----------------------------------------------------------------------
def _coarse_assignment(grouping: Grouping, pg_map: PGMap) -> np.ndarray:
    assignment = np.empty(grouping.num_coarse, dtype=np.int64)
    for g in np.flatnonzero(grouping.group_coarse >= 0):
        assignment[grouping.group_coarse[g]] = pg_map.group_nodes[g]
    offset = grouping.nonempty_groups
    for m, obj in enumerate(grouping.exact_ids):
        assignment[offset + m] = pg_map.exact_nodes[obj]
    return assignment


def _check_compatible(current: PGMap, target: PGMap) -> None:
    if (
        current.num_groups != target.num_groups
        or current.salt != target.salt
        or current.node_ids != target.node_ids
        or set(current.exact_nodes) != set(target.exact_nodes)
    ):
        raise ValueError(
            "PG maps disagree on grouping parameters; migrations need "
            "maps drawn from the same (groups, salt, exact set)"
        )


def select_group_migrations(
    problem: PlacementProblem,
    grouping: Grouping,
    current: PGMap,
    target: PGMap,
    budget_bytes: float | None = None,
) -> tuple[PGMap, MigrationPlan]:
    """Move toward a target PG map under a byte budget, group-wise.

    The coarse problem stands in for the real one, so
    :func:`~repro.core.migration.select_migrations` picks whole groups
    (or exact objects) by gain-per-byte — each selected move carries
    the group's full byte volume, which is exactly the PG-granular
    migration the online controller budgets for.

    Returns:
        ``(new_map, plan)`` — the map after applying the selected
        moves, and the coarse migration plan (object ids in the plan
        are coarse ids: ``("pg", g)`` tuples and exact object ids).
    """
    _check_compatible(current, target)
    coarse = aggregate_problem(problem, grouping)
    cur = Placement(coarse, _coarse_assignment(grouping, current))
    tgt = Placement(coarse, _coarse_assignment(grouping, target))
    migration = select_migrations(cur, tgt, budget_bytes=budget_bytes)
    applied = migration.apply(cur)
    new_map = map_from_coarse(
        problem,
        grouping,
        applied.assignment,
        salt=current.salt,
        fallback=current,
    )
    return new_map, migration


def repair_lost_groups(
    problem: PlacementProblem,
    pg_map: PGMap,
    failed,
    operations=(),
    grouping: Grouping | None = None,
):
    """Retire failed nodes and re-home their groups, as a repair.

    The PG analogue of
    :func:`~repro.resilience.repair.replace_lost_objects`: each failed
    node is retired from the map (rendezvous re-homes exactly its
    groups and exact objects), and the object-level difference is
    returned in the standard
    :class:`~repro.resilience.repair.RepairOutcome` shape — so chaos
    and availability tooling consume PG repairs unchanged.
    """
    from repro.cluster.failures import fail_nodes
    from repro.resilience.repair import RepairOutcome

    failed_set = {node for node in failed}
    operations = [tuple(op) for op in operations]
    before = pg_map.expand(problem, grouping)
    if not failed_set:
        return RepairOutcome(
            plan=diff_placements(before, before),
            placement=before,
            failed_nodes=(),
            lost_objects=(),
            availability_before=1.0,
            availability_after=1.0,
        )
    with obs.span("pg.repair", failed=len(failed_set)):
        new_map = pg_map
        for node in sorted(failed_set, key=repr):
            new_map = new_map.remove_node(node)
        after = new_map.expand(problem, grouping)
        plan_ = diff_placements(before, after)
        moved = np.flatnonzero(before.assignment != after.assignment)
        obs.record(
            "pg.repair",
            failed=len(failed_set),
            moves=plan_.num_moves,
            bytes=round(float(plan_.bytes_moved), 9),
        )
    return RepairOutcome(
        plan=plan_,
        placement=after,
        failed_nodes=tuple(sorted(failed_set, key=repr)),
        lost_objects=tuple(problem.object_ids[i] for i in moved),
        availability_before=fail_nodes(
            before, failed_set, operations
        ).operation_availability,
        availability_after=fail_nodes(
            after, failed_set, operations
        ).operation_availability,
    )
