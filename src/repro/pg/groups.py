"""Placement groups: a small, stable object→node map.

A million-object placement serialized per object is megabytes of state
that every replan rewrites.  The PG layer (Ceph/CRUSH-style) instead
hashes the long tail of objects into ``K`` placement groups with the
same seeded MD5 idiom as :mod:`repro.core.hashing`, keeps the top-M
important objects exact, and stores only ``K`` group→node entries plus
the exact entries — a map whose size is independent of the object
count.

:class:`PGMap` implements the
:class:`~repro.core.placement.PlacementMap` protocol
(``assign``/``locate``/``to_dict``/``from_dict``).  Node membership
changes use highest-random-weight (rendezvous) hashing so the remapped
set is provably minimal:

* ``remove_node`` re-homes exactly the groups (and exact objects)
  hosted on the removed node; everything else keeps its node.
* ``add_node`` moves exactly the groups whose rendezvous draw the new
  node wins (expected ``K / (n + 1)``); nothing else moves.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.problem import NodeId, ObjectId, PlacementProblem
from repro.exceptions import PlacementError


def _text(value) -> str:
    """The hashing text of an id (string ids hash as themselves)."""
    return value if isinstance(value, str) else repr(value)


def pg_group(obj: ObjectId, num_groups: int, salt: str = "") -> int:
    """The placement group of ``obj`` under seeded MD5-mod-K hashing.

    Same idiom as :func:`repro.core.hashing.hash_node` with a ``pg``
    namespace prefix, so group membership is a pure function of
    ``(obj, num_groups, salt)`` — stable across processes and runs.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be at least 1")
    digest = hashlib.md5(f"{salt}|pg|{_text(obj)}".encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % num_groups


def _hrw_score(salt: str, key: str, node: NodeId) -> int:
    digest = hashlib.md5(
        f"{salt}|pg-hrw|{key}|{_text(node)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_node(
    key: str,
    candidates,
    node_ids,
    salt: str = "",
) -> int:
    """Highest-random-weight winner among candidate node indices.

    Scores are keyed on node *ids* (not indices), so adding or
    retiring nodes never perturbs the scores of the survivors — the
    property that makes remaps minimal.

    Args:
        key: Hash key of the thing being placed (group or object).
        candidates: Iterable of eligible node indices.
        node_ids: The map's node-id tuple the indices point into.
        salt: The map's salt.

    Returns:
        The winning node index.
    """
    best = -1
    best_score = -1
    for k in candidates:
        score = _hrw_score(salt, key, node_ids[k])
        if score > best_score or (score == best_score and k < best):
            best, best_score = int(k), score
    if best < 0:
        raise PlacementError("rendezvous needs at least one candidate node")
    return best


def _group_key(group: int) -> str:
    return f"g{group}"


def _exact_key(obj: ObjectId) -> str:
    return f"x{_text(obj)}"


class PGMap:
    """A placement-group map: ``K`` group entries plus exact entries.

    Attributes:
        num_groups: Placement-group count ``K``.
        salt: Hash salt shared by grouping and rendezvous draws.
        node_ids: Node identifiers, in index order.  Indices are stable
            for the lifetime of the map: removed nodes are *retired*
            (kept in the tuple, barred from hosting) so existing
            entries never need renumbering.
        group_nodes: ``(K,)`` int array; ``group_nodes[g]`` is the node
            index hosting group ``g``.
        exact_nodes: Important objects mapped to node indices directly,
            bypassing grouping.
        retired: Node indices that no longer host anything.
    """

    def __init__(
        self,
        num_groups: int,
        salt: str,
        node_ids,
        group_nodes: np.ndarray,
        exact_nodes: dict,
        retired: frozenset = frozenset(),
    ):
        self.num_groups = int(num_groups)
        self.salt = salt
        self.node_ids: tuple[NodeId, ...] = tuple(node_ids)
        self.group_nodes = np.asarray(group_nodes, dtype=np.int64)
        self.exact_nodes: dict[ObjectId, int] = dict(exact_nodes)
        self.retired = frozenset(int(k) for k in retired)
        if self.num_groups < 1:
            raise PlacementError("a PG map needs at least one group")
        if self.group_nodes.shape != (self.num_groups,):
            raise PlacementError(
                f"group_nodes has shape {self.group_nodes.shape}, "
                f"expected ({self.num_groups},)"
            )
        n = len(self.node_ids)
        live = set(range(n)) - self.retired
        if not live:
            raise PlacementError("a PG map needs at least one live node")
        hosts = set(int(k) for k in self.group_nodes)
        hosts.update(int(k) for k in self.exact_nodes.values())
        if not hosts <= live:
            raise PlacementError(
                "PG map hosts objects on retired or out-of-range nodes"
            )
        self._node_index = {node: k for k, node in enumerate(self.node_ids)}

    # ------------------------------------------------------------------
    # PlacementMap protocol
    # ------------------------------------------------------------------
    def group_of(self, obj: ObjectId) -> int | None:
        """The group of ``obj``, or ``None`` for exact objects."""
        if obj in self.exact_nodes:
            return None
        return pg_group(obj, self.num_groups, self.salt)

    def assign(self, obj: ObjectId) -> int:
        """The node index hosting ``obj``."""
        node = self.exact_nodes.get(obj)
        if node is not None:
            return int(node)
        return int(self.group_nodes[pg_group(obj, self.num_groups, self.salt)])

    def locate(self, obj: ObjectId) -> NodeId:
        """The node id hosting ``obj``."""
        return self.node_ids[self.assign(obj)]

    def to_dict(self) -> dict:
        """JSON-ready form (ids become strings, keys sorted by JSON)."""
        from repro.core.serialization import PG_MAP_SCHEMA

        return {
            "schema": PG_MAP_SCHEMA,
            "num_groups": self.num_groups,
            "salt": self.salt,
            "nodes": [str(node) for node in self.node_ids],
            "retired": sorted(self.retired),
            "group_nodes": [int(k) for k in self.group_nodes],
            "exact": {
                str(obj): int(k) for obj, k in self.exact_nodes.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PGMap":
        """Rebuild a map from :meth:`to_dict` output.

        Object and node ids come back as strings, matching the
        problem-serialization convention.

        Raises:
            TraceFormatError: On schema mismatch or missing fields.
        """
        from repro.core.serialization import PG_MAP_SCHEMA
        from repro.exceptions import TraceFormatError

        if data.get("schema") != PG_MAP_SCHEMA:
            raise TraceFormatError(
                f"expected schema {PG_MAP_SCHEMA!r}, "
                f"got {data.get('schema')!r}"
            )
        try:
            return cls(
                num_groups=int(data["num_groups"]),
                salt=str(data["salt"]),
                node_ids=[str(node) for node in data["nodes"]],
                group_nodes=np.asarray(data["group_nodes"], dtype=np.int64),
                exact_nodes={
                    str(obj): int(k) for obj, k in data["exact"].items()
                },
                retired=frozenset(int(k) for k in data.get("retired", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed PG map: {exc}") from exc

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> tuple[int, ...]:
        """Node indices currently eligible to host groups."""
        return tuple(
            k for k in range(len(self.node_ids)) if k not in self.retired
        )

    def node_index(self, node: NodeId) -> int:
        """The index of ``node``, raising on unknown ids."""
        try:
            return self._node_index[node]
        except KeyError:
            raise PlacementError(f"unknown node {node!r}") from None

    def expand(self, problem: PlacementProblem, grouping=None):
        """The map as an exact :class:`~repro.core.placement.Placement`.

        Args:
            problem: The object universe to expand over; its node ids
                must match the map's.
            grouping: Optional
                :class:`~repro.pg.aggregate.Grouping` for the
                vectorized fast path (must describe this map's
                grouping parameters).
        """
        from repro.core.placement import Placement

        if tuple(problem.node_ids) != self.node_ids:
            raise PlacementError(
                "problem and PG map disagree on the node universe"
            )
        if grouping is not None:
            from repro.pg.aggregate import expand_assignment

            return Placement(problem, expand_assignment(grouping, self))
        assignment = np.fromiter(
            (self.assign(obj) for obj in problem.object_ids),
            dtype=np.int64,
            count=problem.num_objects,
        )
        return Placement(problem, assignment)

    # ------------------------------------------------------------------
    # Membership changes (minimal remap)
    # ------------------------------------------------------------------
    def remove_node(self, node: NodeId) -> "PGMap":
        """A new map with ``node`` retired.

        Exactly the groups and exact objects hosted on ``node`` are
        re-homed (by rendezvous hashing over the survivors); every
        other entry is untouched.
        """
        failed = self.node_index(node)
        if failed in self.retired:
            raise PlacementError(f"node {node!r} is already retired")
        survivors = [k for k in self.live_nodes if k != failed]
        if not survivors:
            raise PlacementError("cannot retire the last live node")
        group_nodes = self.group_nodes.copy()
        for g in np.flatnonzero(group_nodes == failed):
            group_nodes[g] = rendezvous_node(
                _group_key(int(g)), survivors, self.node_ids, self.salt
            )
        exact_nodes = dict(self.exact_nodes)
        for obj, k in self.exact_nodes.items():
            if int(k) == failed:
                exact_nodes[obj] = rendezvous_node(
                    _exact_key(obj), survivors, self.node_ids, self.salt
                )
        return PGMap(
            num_groups=self.num_groups,
            salt=self.salt,
            node_ids=self.node_ids,
            group_nodes=group_nodes,
            exact_nodes=exact_nodes,
            retired=self.retired | {failed},
        )

    def add_node(self, node: NodeId) -> "PGMap":
        """A new map with ``node`` added (or un-retired).

        Exactly the groups whose rendezvous draw over the enlarged
        node set is won by the new node move onto it — expected
        ``K / n_live`` of them; exact objects and every other group
        keep their node.
        """
        if node in self._node_index:
            added = self._node_index[node]
            if added not in self.retired:
                raise PlacementError(f"node {node!r} is already live")
            node_ids = self.node_ids
            retired = self.retired - {added}
        else:
            added = len(self.node_ids)
            node_ids = self.node_ids + (node,)
            retired = self.retired
        candidates = [
            k for k in range(len(node_ids)) if k not in retired
        ]
        group_nodes = self.group_nodes.copy()
        for g in range(self.num_groups):
            winner = rendezvous_node(
                _group_key(g), candidates, node_ids, self.salt
            )
            if winner == added:
                group_nodes[g] = added
        return PGMap(
            num_groups=self.num_groups,
            salt=self.salt,
            node_ids=node_ids,
            group_nodes=group_nodes,
            exact_nodes=self.exact_nodes,
            retired=retired,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PGMap):
            return NotImplemented
        return (
            self.num_groups == other.num_groups
            and self.salt == other.salt
            and self.node_ids == other.node_ids
            and np.array_equal(self.group_nodes, other.group_nodes)
            and self.exact_nodes == other.exact_nodes
            and self.retired == other.retired
        )

    def __repr__(self) -> str:
        return (
            f"PGMap(groups={self.num_groups}, exact={len(self.exact_nodes)}, "
            f"nodes={len(self.node_ids)}, retired={len(self.retired)})"
        )
