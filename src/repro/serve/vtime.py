"""A deterministic virtual-time asyncio event loop.

Serving reports must be byte-reproducible under a fixed seed — latency
percentiles included — which rules out the wall clock.  This loop keeps
asyncio's real scheduling semantics (tasks, futures, ``call_later``)
but replaces *time itself*: :meth:`VirtualTimeLoop.time` returns a
virtual clock that only advances when the loop has nothing runnable,
jumping straight to the next scheduled timer.  Timers therefore fire in
exactly the order and at exactly the instants the program asked for,
with zero real-time blocking, on every run.

Latencies under this loop come from an explicit service-time model (see
:mod:`repro.serve.router`), not from how fast the host happens to be —
the same philosophy as the journal's logical clock (obs/journal.py).
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine

__all__ = ["VirtualTimeLoop", "run_virtual"]


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector loop whose clock is virtual and deterministic.

    The loop relies on two private-but-stable pieces of the asyncio
    base loop (unchanged across CPython 3.10–3.13): ``_ready``, the
    runnable-callback queue, and ``_scheduled``, the timer heap.  When
    nothing is runnable, virtual time advances to the earliest timer's
    deadline before the base ``_run_once`` computes its selector
    timeout, which then comes out as zero — so the loop never sleeps
    for real.
    """

    def __init__(self) -> None:
        super().__init__()
        self._vtime = 0.0

    def time(self) -> float:
        return self._vtime

    def _run_once(self) -> None:
        if not self._ready and self._scheduled:
            # A cancelled timer at the heap head is harmless here: time
            # jumps to its (defunct) deadline and the next iteration
            # advances again.  Monotonicity is preserved either way.
            when = self._scheduled[0]._when
            if when > self._vtime:
                self._vtime = when
        super()._run_once()


def run_virtual(main: Coroutine[Any, Any, Any]) -> Any:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`."""
    loop = VirtualTimeLoop()
    try:
        return loop.run_until_complete(main)
    finally:
        loop.close()
