"""The serving layer: batched asyncio routing over hot-swappable plans.

See docs/SERVING.md for the architecture.  The pieces:

* :mod:`repro.serve.snapshot` — immutable :class:`PlanSnapshot` behind
  an atomic-swap :class:`PlanHandle`;
* :mod:`repro.serve.admission` — token-bucket admission with typed
  :class:`AdmissionError` rejections;
* :mod:`repro.serve.router` — the max-batch/max-delay
  :class:`QueryRouter` with its explicit service-time model;
* :mod:`repro.serve.vtime` — the deterministic
  :class:`VirtualTimeLoop` that makes loadgen byte-reproducible;
* :mod:`repro.serve.loadgen` — seeded scenarios and the
  :class:`ServeReport` deliverable;
* :mod:`repro.serve.server` — the ``repro serve`` JSON-lines TCP front
  end (real clock, same router).
"""

from repro.serve.admission import AdmissionError, TokenBucket
from repro.serve.loadgen import (
    LoadgenConfig,
    ServeReport,
    build_scenario,
    run_loadgen,
)
from repro.serve.router import QueryRouter, RoutedQuery, ServeConfig
from repro.serve.snapshot import PlanHandle, PlanSnapshot
from repro.serve.vtime import VirtualTimeLoop, run_virtual

__all__ = [
    "AdmissionError",
    "TokenBucket",
    "LoadgenConfig",
    "ServeReport",
    "build_scenario",
    "run_loadgen",
    "QueryRouter",
    "RoutedQuery",
    "ServeConfig",
    "PlanHandle",
    "PlanSnapshot",
    "VirtualTimeLoop",
    "run_virtual",
]
