"""The asyncio query router: batching, admission, hot-swappable plans.

The router turns the replicated engine into a *service*:

* **Batching** — queries accumulate until ``max_batch`` or the oldest
  has waited ``max_delay_s``, then dispatch as one batch.  A batch pays
  the fixed dispatch overhead once and executes each distinct query
  once (repeat queries in a batch share the execution), which is where
  the ≥10× throughput over per-query dispatch comes from.
* **Admission** — a token bucket caps the admitted rate and a backlog
  cap bounds queueing; everything else is shed immediately with a typed
  :class:`~repro.serve.admission.AdmissionError`.
* **Hot swap** — each batch captures exactly one
  :class:`~repro.serve.snapshot.PlanSnapshot` at dispatch via
  :meth:`PlanHandle.acquire`, so plans published mid-flight never tear
  a batch and no query is ever dropped by a swap.

Service time is an explicit model (fixed per-dispatch overhead, a
marginal cost per distinct executed query, a cost per byte shipped) on
the loop's clock.  Under :class:`~repro.serve.vtime.VirtualTimeLoop`
this makes every latency a pure function of the workload and the
config — byte-reproducible — while preserving real queueing dynamics:
one executor, FIFO batches, backpressure when it falls behind.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Iterable

from repro import obs
from repro.search.engine import EngineStats, QueryExecution
from repro.search.query import Query
from repro.serve.admission import (
    DRAINING,
    QUEUE_FULL,
    THROTTLED,
    AdmissionError,
    TokenBucket,
)
from repro.serve.snapshot import PlanHandle, PlanSnapshot

__all__ = ["ServeConfig", "RoutedQuery", "QueryRouter"]


@dataclass(frozen=True)
class ServeConfig:
    """Router knobs (see docs/SERVING.md for the tuning story).

    Attributes:
        max_batch: Dispatch as soon as this many queries are pending.
        max_delay_s: ... or when the oldest pending query has waited
            this long — the latency price of batching.
        rate: Token-bucket sustained admission rate, queries/second.
        burst: Token-bucket capacity (spike allowance).
        max_queue: Backlog cap — admitted-but-unfinished queries beyond
            which new arrivals are shed with ``queue_full``.
        dispatch_overhead_s: Fixed service cost per dispatched batch.
        per_query_s: Marginal service cost per *distinct* query
            executed in a batch.
        per_byte_s: Service cost per byte the batch's executions moved.
    """

    max_batch: int = 32
    max_delay_s: float = 0.005
    rate: float = 8000.0
    burst: float = 800.0
    max_queue: int = 2048
    dispatch_overhead_s: float = 3e-3
    per_query_s: float = 5e-5
    per_byte_s: float = 2e-9

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_delay_s < 0 or self.max_queue < 1:
            raise ValueError("max_delay_s must be >= 0 and max_queue >= 1")


@dataclass(frozen=True)
class RoutedQuery:
    """One answered query: the execution plus serving metadata."""

    execution: QueryExecution
    version: int
    batch_seq: int
    arrival_t: float
    completion_t: float

    @property
    def latency_s(self) -> float:
        """Admission-to-completion latency on the loop's clock."""
        return self.completion_t - self.arrival_t


@dataclass
class _Pending:
    query: Query
    future: asyncio.Future
    arrival_t: float


@dataclass
class ShedCounts:
    """Per-reason rejection tallies."""

    throttled: int = 0
    queue_full: int = 0
    draining: int = 0

    def total(self) -> int:
        return self.throttled + self.queue_full + self.draining

    def to_dict(self) -> dict:
        return {
            "throttled": self.throttled,
            "queue_full": self.queue_full,
            "draining": self.draining,
        }


class QueryRouter:
    """Batched, admission-controlled routing over a swappable plan.

    Single-loop object: construct and use inside one running event
    loop.  ``stats`` aggregates every executed query via
    :class:`~repro.search.engine.EngineStats` (admission rejections go
    through :meth:`EngineStats.record_rejected`, keeping availability
    honest — see that method's docstring).
    """

    def __init__(self, handle: PlanHandle, config: ServeConfig | None = None):
        self.handle = handle
        self.config = config or ServeConfig()
        self.stats = EngineStats()
        self.shed = ShedCounts()
        self.queries_by_version: dict[int, int] = {}
        self.batches = 0
        self.completed = 0
        self.dropped_in_flight = 0
        self._bucket = TokenBucket(self.config.rate, self.config.burst)
        self._pending: list[_Pending] = []
        self._timer: asyncio.TimerHandle | None = None
        self._executor_free_t = 0.0
        self._backlog = 0
        self._draining = False
        self._idle: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Plan publication
    # ------------------------------------------------------------------
    def publish(self, snapshot: PlanSnapshot) -> None:
        """Hot-swap the serving plan; in-flight batches are untouched."""
        self.handle.swap(snapshot)
        obs.counter("serve.swaps").inc()
        obs.record(
            "serve.swap",
            version=snapshot.version,
            planner=snapshot.planner,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, query: Query | Iterable[str]) -> RoutedQuery:
        """Admit, batch, execute; raises :class:`AdmissionError` if shed."""
        if not isinstance(query, Query):
            query = Query(tuple(query))
        loop = asyncio.get_running_loop()
        now = loop.time()
        if self._draining:
            self._reject(DRAINING, 0.0)
        if self._backlog >= self.config.max_queue:
            self._reject(QUEUE_FULL, self._drain_eta(now))
        if not self._bucket.try_acquire(now):
            self._reject(THROTTLED, self._bucket.retry_after(now))

        future: asyncio.Future = loop.create_future()
        self._pending.append(_Pending(query, future, now))
        self._backlog += 1
        if len(self._pending) >= self.config.max_batch:
            self._flush(loop)
        elif self._timer is None:
            self._timer = loop.call_at(
                now + self.config.max_delay_s, self._flush, loop
            )
        return await future

    def _reject(self, reason: str, retry_after_s: float) -> None:
        self.stats.record_rejected()
        setattr(self.shed, reason, getattr(self.shed, reason) + 1)
        obs.counter("serve.shed", labels={"reason": reason}).inc()
        obs.record("serve.shed", reason=reason)
        raise AdmissionError(reason, retry_after_s)

    def _drain_eta(self, now: float) -> float:
        return max(0.0, self._executor_free_t - now)

    # ------------------------------------------------------------------
    # Batch dispatch
    # ------------------------------------------------------------------
    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        now = loop.time()
        snapshot = self.handle.acquire()

        # Execute each distinct query once; repeats share the result.
        executions: dict[tuple, QueryExecution] = {}
        for item in batch:
            key = item.query.keywords
            if key not in executions:
                executions[key] = snapshot.engine.execute(item.query)
        moved = sum(e.bytes_transferred for e in executions.values())
        service = (
            self.config.dispatch_overhead_s
            + self.config.per_query_s * len(executions)
            + self.config.per_byte_s * moved
        )
        start = max(now, self._executor_free_t)
        completion = start + service
        self._executor_free_t = completion

        self.batches += 1
        seq = self.batches
        obs.counter("serve.batches").inc()
        obs.histogram("serve.batch_size").observe(len(batch))
        obs.record(
            "serve.batch",
            seq=seq,
            size=len(batch),
            unique=len(executions),
            version=snapshot.version,
        )
        loop.call_at(
            completion, self._finish, batch, executions, snapshot, seq, completion
        )

    def _finish(
        self,
        batch: list[_Pending],
        executions: dict[tuple, QueryExecution],
        snapshot: PlanSnapshot,
        seq: int,
        completion: float,
    ) -> None:
        for item in batch:
            execution = executions[item.query.keywords]
            self.stats.record(execution, [])
            self.queries_by_version[snapshot.version] = (
                self.queries_by_version.get(snapshot.version, 0) + 1
            )
            self.completed += 1
            self._backlog -= 1
            if item.future.cancelled():
                # Callers abandoning their own awaits is the only way a
                # query "drops"; a swap never causes this.
                self.dropped_in_flight += 1
            else:
                item.future.set_result(
                    RoutedQuery(
                        execution=execution,
                        version=snapshot.version,
                        batch_seq=seq,
                        arrival_t=item.arrival_t,
                        completion_t=completion,
                    )
                )
        self.handle.release(snapshot)
        if self._backlog == 0 and self._idle is not None:
            self._idle.set()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Admitted queries not yet completed."""
        return self._backlog

    async def drain(self) -> None:
        """Stop admitting, flush pending work, wait for the backlog."""
        self._draining = True
        loop = asyncio.get_running_loop()
        self._flush(loop)
        if self._backlog:
            self._idle = asyncio.Event()
            if self._backlog:  # re-check: _flush may have completed sync
                await self._idle.wait()
            self._idle = None
