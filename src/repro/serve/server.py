"""A minimal JSON-lines TCP front end over the query router.

``repro serve`` binds this server on the real event loop (real clock,
real sockets) — the router underneath is exactly the one loadgen
exercises deterministically, which is the point: the served path and
the measured path are the same code.

Protocol: one JSON object per line.

Request::

    {"keywords": ["w000001", "w000007"]}

Response::

    {"ok": true, "results": 3, "bytes": 128, "served": true,
     "version": 1, "latency_ms": 4.1}

Shed queries answer ``{"ok": false, "error": "throttled",
"retry_after_s": 0.01}`` and the connection stays open.  An empty line
closes the connection; ``{"op": "stats"}`` returns router totals.
"""

from __future__ import annotations

import asyncio
import json

from repro.search.query import Query
from repro.serve.admission import AdmissionError
from repro.serve.router import QueryRouter
from repro.serve.snapshot import PlanHandle

__all__ = ["serve_forever", "handle_connection"]


def _stats_payload(router: QueryRouter) -> dict:
    stats = router.stats
    return {
        "ok": True,
        "queries": stats.queries,
        "rejected": stats.rejected_queries,
        "unserved": stats.unserved_queries,
        "batches": router.batches,
        "swaps": router.handle.swaps,
        "version": router.handle.current.version,
        "availability": round(stats.availability, 6),
        "service_level": round(stats.service_level, 6),
    }


async def handle_connection(
    router: QueryRouter,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client until it sends an empty line or disconnects."""
    loop = asyncio.get_running_loop()
    try:
        while True:
            line = await reader.readline()
            if not line or not line.strip():
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": f"bad request: {exc.msg}"}
            else:
                if request.get("op") == "stats":
                    response = _stats_payload(router)
                else:
                    response = await _answer(router, loop, request)
            writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        await writer.wait_closed()


async def _answer(
    router: QueryRouter, loop: asyncio.AbstractEventLoop, request: dict
) -> dict:
    keywords = request.get("keywords")
    if not isinstance(keywords, list) or not all(
        isinstance(w, str) for w in keywords
    ):
        return {"ok": False, "error": "keywords must be a list of strings"}
    try:
        routed = await router.submit(Query(tuple(keywords)))
    except AdmissionError as exc:
        return {
            "ok": False,
            "error": exc.reason,
            "retry_after_s": round(exc.retry_after_s, 6),
        }
    return {
        "ok": True,
        "results": routed.execution.result_count,
        "bytes": routed.execution.bytes_transferred,
        "served": routed.execution.served,
        "version": routed.version,
        "latency_ms": round(routed.latency_s * 1000.0, 3),
    }


async def serve_forever(
    handle: PlanHandle,
    router: QueryRouter,
    host: str = "127.0.0.1",
    port: int = 7621,
) -> None:
    """Run the TCP server until cancelled."""
    server = await asyncio.start_server(
        lambda r, w: handle_connection(router, r, w), host, port
    )
    async with server:
        await server.serve_forever()
