"""Immutable placement snapshots behind an atomically swappable handle.

The router must keep answering queries while the online planner
publishes new placements.  The classic lock-free recipe: a *snapshot*
is a fully immutable view of one placement (frozen assignment arrays
plus the routing engine built over them), and a *handle* is a single
mutable cell holding the current snapshot.  Swapping the handle is one
attribute assignment — atomic under the GIL and trivially atomic on an
asyncio loop — so a batch captures exactly one snapshot at dispatch and
routes every query in it against that version, no matter how many swaps
land while it is in flight.  There is no torn read to have: nothing a
snapshot references can change after :meth:`PlanSnapshot.build`.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro.core.problem import PlacementProblem
from repro.core.replication import ReplicatedPlacement
from repro.search.index import InvertedIndex
from repro.search.replicated_engine import ReplicatedSearchEngine

__all__ = ["PlanSnapshot", "PlanHandle"]

ObjectId = Hashable


class PlanSnapshot:
    """One immutable, versioned placement plus its routing engine.

    Build via :meth:`build` (from a replicated placement) or
    :meth:`from_mapping` (from a planner's object→node dict).  The
    assignment array is frozen (``writeable=False``); the engine is
    private to the snapshot and must not have its failure view mutated
    — degraded-mode markings belong on a *new* snapshot.
    """

    __slots__ = ("version", "engine", "planner", "_assignment")

    def __init__(
        self,
        version: int,
        engine: ReplicatedSearchEngine,
        planner: str = "",
    ) -> None:
        self.version = version
        self.engine = engine
        self.planner = planner
        assignment = engine.placement.assignment
        assignment.setflags(write=False)
        self._assignment = assignment

    @classmethod
    def build(
        cls,
        index: InvertedIndex,
        placement: ReplicatedPlacement,
        version: int,
        planner: str = "",
        down_nodes: tuple[int, ...] = (),
    ) -> "PlanSnapshot":
        """Snapshot a replicated placement for serving."""
        engine = ReplicatedSearchEngine(index, placement, down_nodes=down_nodes)
        return cls(version, engine, planner=planner)

    @classmethod
    def from_mapping(
        cls,
        index: InvertedIndex,
        problem: PlacementProblem,
        mapping: Mapping[ObjectId, int],
        version: int,
        planner: str = "",
    ) -> "PlanSnapshot":
        """Snapshot an unreplicated object→node mapping (R = 1).

        This is the adapter between :class:`~repro.online.OnlinePlanner`
        (whose published plans are plain mappings) and the replicated
        routing engine: each object gets a single-copy column.
        """
        column = np.array(
            [int(mapping[obj]) for obj in problem.object_ids], dtype=np.int64
        )
        placement = ReplicatedPlacement(problem, column[:, None])
        return cls.build(index, placement, version, planner=planner)

    @property
    def assignment(self) -> np.ndarray:
        """The frozen ``(t, R)`` assignment array."""
        return self._assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanSnapshot(version={self.version}, planner={self.planner!r})"


class PlanHandle:
    """The single mutable cell: which snapshot is current.

    Also keeps per-version in-flight reference counts so tests (and the
    loadgen report) can prove no query was dropped or torn by a swap:
    a batch acquires the current snapshot once at dispatch and releases
    it at completion; retiring versions with live references is visible
    in :meth:`active_versions`.
    """

    def __init__(self, snapshot: PlanSnapshot) -> None:
        self._current = snapshot
        self._active: dict[int, int] = {}
        self.swaps = 0

    @property
    def current(self) -> PlanSnapshot:
        """The snapshot new work should capture."""
        return self._current

    def swap(self, snapshot: PlanSnapshot) -> PlanSnapshot:
        """Atomically install ``snapshot``; returns the one replaced.

        In-flight work keeps routing against whatever it captured; only
        *new* acquisitions see the new version.
        """
        if snapshot.version <= self._current.version:
            raise ValueError(
                f"snapshot version {snapshot.version} must exceed current "
                f"{self._current.version}"
            )
        previous, self._current = self._current, snapshot
        self.swaps += 1
        return previous

    def acquire(self) -> PlanSnapshot:
        """Capture the current snapshot and pin it as in-flight."""
        snapshot = self._current
        self._active[snapshot.version] = self._active.get(snapshot.version, 0) + 1
        return snapshot

    def release(self, snapshot: PlanSnapshot) -> None:
        """Drop one in-flight reference on ``snapshot``."""
        count = self._active.get(snapshot.version, 0) - 1
        if count < 0:
            raise ValueError(
                f"release without acquire for version {snapshot.version}"
            )
        if count:
            self._active[snapshot.version] = count
        else:
            self._active.pop(snapshot.version, None)

    def active_versions(self) -> dict[int, int]:
        """Versions with in-flight references → reference counts."""
        return dict(self._active)
