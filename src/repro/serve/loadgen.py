"""Deterministic load generation against the query router.

``repro loadgen`` builds a self-contained serving scenario (synthetic
corpus → inverted index → initial placement), replays the seeded
diurnal drifting stream through a :class:`~repro.serve.router.
QueryRouter` on a :class:`~repro.serve.vtime.VirtualTimeLoop`, replans
mid-run with the ``stream:greedy`` tier and hot-swaps the plan, and
distills everything into a :class:`ServeReport` — a pure function of
the seed and the knobs, byte-identical across runs, which is what the
CI serve-smoke job asserts with ``cmp``.

The drifting stream mirrors ``repro online``: the second half of the
stream comes from a topic-shifted copy of the workload model, so the
mid-run replans have genuine drift to chase.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro import obs
from repro.core.strategies import PlanConfig, plan
from repro.search.engine import build_placement_problem
from repro.search.index import InvertedIndex
from repro.search.query import QueryLog
from repro.serve.admission import AdmissionError
from repro.serve.router import QueryRouter, RoutedQuery, ServeConfig
from repro.serve.snapshot import PlanHandle, PlanSnapshot
from repro.serve.vtime import run_virtual
from repro.workloads.corpus_gen import generate_corpus
from repro.workloads.query_gen import QueryWorkloadModel
from repro.workloads.stream import TimedQuery, generate_stream

__all__ = ["LoadgenConfig", "ServeReport", "run_loadgen", "build_scenario"]

SERVE_REPORT_SCHEMA = "repro.serve/v1"


@dataclass(frozen=True)
class LoadgenConfig:
    """One loadgen scenario, seed included — the report's whole input.

    Attributes:
        vocabulary: Vocabulary size (keyword count).
        topics: Topic count of the workload model.
        documents: Synthetic corpus size backing the inverted index.
        nodes: Serving nodes.
        duration_s: Stream length in virtual seconds.
        qps: Geometric-mean arrival rate of the diurnal curve.
        peak_factor: Diurnal peak-to-mean ratio.
        shift_fraction: Topic-popularity drift applied at half time.
        swaps: Mid-run replans (each hot-swaps the plan).
        seed: Master seed.
        planner: Planner for the initial plan and every replan.
        warmup_queries: Queries sampled offline to seed the first plan.
        headroom: Node capacity as a multiple of even-split load.
        serve: Router knobs.
    """

    vocabulary: int = 200
    topics: int = 30
    documents: int = 400
    nodes: int = 5
    duration_s: float = 8.0
    qps: float = 6000.0
    peak_factor: float = 2.0
    shift_fraction: float = 0.6
    swaps: int = 3
    seed: int = 0
    planner: str = "stream:greedy"
    warmup_queries: int = 400
    headroom: float = 1.5
    serve: ServeConfig = field(default_factory=ServeConfig)

    def node_capacities(self, total_bytes: float) -> dict[int, float]:
        """Per-node capacities with the configured headroom."""
        per_node = self.headroom * total_bytes / self.nodes
        return {k: per_node for k in range(self.nodes)}


@dataclass(frozen=True)
class ServeReport:
    """The deliverable of one loadgen run — byte-reproducible JSON."""

    mode: str
    seed: int
    duration_s: float
    qps: float
    max_batch: int
    offered: int
    admitted: int
    completed: int
    unserved: int
    shed: dict[str, int]
    swaps: int
    dropped_in_flight: int
    queries_by_version: dict[int, int]
    plan_costs: dict[int, float]
    makespan_s: float
    throughput_qps: float
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    availability: float
    service_level: float

    def to_dict(self) -> dict:
        """JSON-ready form (floats rounded for byte-stable output)."""
        return {
            "schema": SERVE_REPORT_SCHEMA,
            "mode": self.mode,
            "seed": self.seed,
            "duration_s": round(self.duration_s, 6),
            "qps": round(self.qps, 6),
            "max_batch": self.max_batch,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "unserved": self.unserved,
            "shed": dict(sorted(self.shed.items())),
            "swaps": self.swaps,
            "dropped_in_flight": self.dropped_in_flight,
            "queries_by_version": {
                str(v): n for v, n in sorted(self.queries_by_version.items())
            },
            "plan_costs": {
                str(v): round(c, 9) for v, c in sorted(self.plan_costs.items())
            },
            "makespan_s": round(self.makespan_s, 6),
            "throughput_qps": round(self.throughput_qps, 3),
            "mean_latency_ms": round(self.mean_latency_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "availability": round(self.availability, 6),
            "service_level": round(self.service_level, 6),
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — byte-identical per seed."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary (the ``repro loadgen`` output)."""
        shed = sum(self.shed.values())
        return "\n".join(
            [
                f"loadgen ({self.mode}): offered {self.offered} queries over "
                f"{self.duration_s:g}s (~{self.qps:g} qps diurnal)",
                f"completed {self.completed} ({shed} shed: {self.shed}), "
                f"throughput {self.throughput_qps:.0f} q/s "
                f"over {self.makespan_s:.2f}s makespan",
                f"latency ms: p50 {self.p50_ms:.2f}  p95 {self.p95_ms:.2f}  "
                f"p99 {self.p99_ms:.2f}  (mean {self.mean_latency_ms:.2f})",
                f"plan swaps: {self.swaps}, in-flight dropped: "
                f"{self.dropped_in_flight}, queries by version: "
                f"{dict(sorted(self.queries_by_version.items()))}",
                f"availability {self.availability:.4f}, "
                f"service level {self.service_level:.4f}",
            ]
        )


def build_scenario(
    config: LoadgenConfig,
) -> tuple[InvertedIndex, list[TimedQuery], QueryLog]:
    """Index, drifting stream, and warmup log for one seeded scenario."""
    vocabulary = [f"w{i:06d}" for i in range(config.vocabulary)]
    corpus = generate_corpus(
        config.documents, config.vocabulary, seed=config.seed
    )
    index = InvertedIndex.from_corpus(corpus)
    model = QueryWorkloadModel(
        vocabulary, num_topics=config.topics, seed=config.seed
    )
    shifted = model.drifted(config.shift_fraction, seed=config.seed + 1)
    half = config.duration_s / 2.0
    stream = generate_stream(
        model,
        half,
        base_qps=config.qps,
        peak_factor=config.peak_factor,
        seed=config.seed,
    )
    stream += [
        TimedQuery(timed.time_s + half, timed.query)
        for timed in generate_stream(
            shifted,
            half,
            base_qps=config.qps,
            peak_factor=config.peak_factor,
            seed=config.seed + 1,
        )
    ]
    warmup = model.generate(config.warmup_queries, rng=config.seed + 2)
    return index, stream, warmup


def _plan_snapshot(
    index: InvertedIndex,
    log: QueryLog,
    config: LoadgenConfig,
    version: int,
) -> tuple[PlanSnapshot, float]:
    """Plan ``log`` and freeze the result as a serving snapshot."""
    problem = build_placement_problem(
        index,
        log,
        config.node_capacities(float(index.total_bytes)),
        correlation_mode="cooccurrence",
    )
    result = plan(
        problem, config.planner, PlanConfig(seed=config.seed + version)
    )
    mapping = {
        obj: int(node)
        for obj, node in zip(problem.object_ids, result.placement.assignment)
    }
    snapshot = PlanSnapshot.from_mapping(
        index, problem, mapping, version, planner=config.planner
    )
    return snapshot, result.cost


def run_loadgen(config: LoadgenConfig) -> ServeReport:
    """Run one seeded loadgen scenario to completion (virtual time)."""
    index, stream, warmup = build_scenario(config)
    mode = "batched" if config.serve.max_batch > 1 else "per_query"
    obs.record(
        "serve.start",
        mode=mode,
        seed=config.seed,
        queries=len(stream),
        duration_s=round(config.duration_s, 6),
        max_batch=config.serve.max_batch,
    )
    snapshot, cost = _plan_snapshot(index, warmup, config, version=1)
    plan_costs = {1: cost}
    handle = PlanHandle(snapshot)

    results: list[RoutedQuery] = []

    async def _drive() -> QueryRouter:
        loop = asyncio.get_running_loop()
        router = QueryRouter(handle, config.serve)

        async def one(timed: TimedQuery) -> None:
            await asyncio.sleep(timed.time_s - loop.time())
            try:
                results.append(await router.submit(timed.query))
            except AdmissionError:
                pass  # already counted by the router's shed tallies

        async def replanner() -> None:
            interval = config.duration_s / (config.swaps + 1)
            for swap in range(config.swaps):
                target = interval * (swap + 1)
                await asyncio.sleep(target - loop.time())
                start = loop.time() - interval
                window = QueryLog(
                    timed.query
                    for timed in stream
                    if start <= timed.time_s < loop.time()
                )
                if not len(window):
                    continue
                version = swap + 2
                new_snapshot, new_cost = _plan_snapshot(
                    index, window, config, version
                )
                plan_costs[version] = new_cost
                router.publish(new_snapshot)

        tasks = [asyncio.ensure_future(one(timed)) for timed in stream]
        tasks.append(asyncio.ensure_future(replanner()))
        await asyncio.gather(*tasks)
        await router.drain()
        return router

    router = run_virtual(_drive())

    latencies = sorted(r.latency_s for r in results)
    makespan = max((r.completion_t for r in results), default=0.0)
    completed = len(results)
    throughput = completed / makespan if makespan else 0.0

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        i = min(len(latencies) - 1, int(q * len(latencies)))
        return latencies[i] * 1000.0

    report = ServeReport(
        mode=mode,
        seed=config.seed,
        duration_s=config.duration_s,
        qps=config.qps,
        max_batch=config.serve.max_batch,
        offered=len(stream),
        admitted=router.stats.queries,
        completed=completed,
        unserved=router.stats.unserved_queries,
        shed=router.shed.to_dict(),
        swaps=handle.swaps,
        dropped_in_flight=router.dropped_in_flight,
        queries_by_version=dict(router.queries_by_version),
        plan_costs=plan_costs,
        makespan_s=makespan,
        throughput_qps=throughput,
        mean_latency_ms=(
            sum(latencies) / len(latencies) * 1000.0 if latencies else 0.0
        ),
        p50_ms=pct(0.50),
        p95_ms=pct(0.95),
        p99_ms=pct(0.99),
        availability=router.stats.availability,
        service_level=router.stats.service_level,
    )
    obs.record(
        "serve.end",
        mode=mode,
        completed=completed,
        shed=sum(report.shed.values()),
        swaps=report.swaps,
        throughput_qps=round(throughput, 3),
        p99_ms=round(report.p99_ms, 3),
    )
    return report
