"""Admission control: shed load with typed rejections, not queue collapse.

A router without admission control converts overload into unbounded
queues — every query eventually answered, none answered on time.  The
token bucket here caps the *admitted* rate (with a burst allowance for
diurnal peaks), and the router separately caps its backlog; everything
beyond either limit is rejected immediately with a typed reason and a
``retry_after_s`` hint, keeping latency bounded for what is admitted.

Time is whatever clock the caller supplies (the virtual loop's under
loadgen, the wall clock under ``repro serve``), so refill arithmetic is
deterministic when the clock is.
"""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = ["AdmissionError", "TokenBucket", "THROTTLED", "QUEUE_FULL", "DRAINING"]

THROTTLED = "throttled"
QUEUE_FULL = "queue_full"
DRAINING = "draining"

REASONS = (THROTTLED, QUEUE_FULL, DRAINING)


class AdmissionError(ReproError):
    """A query was shed before execution.

    Attributes:
        reason: One of ``"throttled"`` (token bucket empty),
            ``"queue_full"`` (backlog cap reached), ``"draining"``
            (router shutting down).
        retry_after_s: Suggested client backoff; 0 when retrying will
            not help (draining).
    """

    def __init__(self, reason: str, retry_after_s: float = 0.0) -> None:
        if reason not in REASONS:
            raise ValueError(f"unknown rejection reason {reason!r}")
        super().__init__(f"query rejected: {reason}")
        self.reason = reason
        self.retry_after_s = retry_after_s


class TokenBucket:
    """Deterministic token bucket over a caller-supplied clock.

    Args:
        rate: Sustained refill, tokens (queries) per second.
        burst: Bucket capacity — how far above ``rate`` a short spike
            may go.  The bucket starts full.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = 0.0

    def _refill(self, now: float) -> None:
        if now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
            self._refilled_at = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available at virtual instant ``now``."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if already)."""
        self._refill(now)
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        """Tokens available as of the last refill."""
        return self._tokens
