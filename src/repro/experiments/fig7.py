"""Figure 7: communication cost vs system size.

Fix the optimization scope and sweep the number of nodes (the paper
uses 10..100 at scope 10000).  Paper shape: LPRR saves 73-86% with the
best reductions in the middle of the range; greedy is only effective at
small node counts (large per-node capacity) and degrades as nodes grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.asciiplot import ascii_chart
from repro.analysis.reporting import format_table
from repro.experiments.common import CaseStudy


@dataclass(frozen=True)
class NodeSweepConfig:
    """Parameters for the Figure 7 sweep."""

    node_counts: Sequence[int] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
    scope: int | None = 1000
    rounding_trials: int = 10


@dataclass(frozen=True)
class NodeSweepResult:
    """Figure 7 as data: per-system-size normalized costs.

    The hash baseline is recomputed at every node count (random
    placement gets *more* expensive as nodes grow: a pair splits with
    probability (n-1)/n).
    """

    node_counts: tuple[int, ...]
    hash_bytes: tuple[int, ...]
    greedy_bytes: tuple[int, ...]
    lprr_bytes: tuple[int, ...]

    @property
    def normalized_greedy(self) -> tuple[float, ...]:
        """Greedy cost over hash cost, per node count."""
        return tuple(g / h for g, h in zip(self.greedy_bytes, self.hash_bytes))

    @property
    def normalized_lprr(self) -> tuple[float, ...]:
        """LPRR cost over hash cost, per node count."""
        return tuple(l / h for l, h in zip(self.lprr_bytes, self.hash_bytes))

    @property
    def lprr_saving_range(self) -> tuple[float, float]:
        """(min, max) fractional savings of LPRR across system sizes."""
        savings = [1.0 - v for v in self.normalized_lprr]
        return min(savings), max(savings)

    def render(self) -> str:
        """Figure 7 as a text table."""
        rows = [
            [n, g, l]
            for n, g, l in zip(
                self.node_counts, self.normalized_greedy, self.normalized_lprr
            )
        ]
        table = format_table(["nodes", "greedy / hash", "LPRR / hash"], rows)
        lo, hi = self.lprr_saving_range
        chart = ascii_chart(
            {
                "greedy/hash": (list(self.node_counts), list(self.normalized_greedy)),
                "LPRR/hash": (list(self.node_counts), list(self.normalized_lprr)),
            },
            title="normalized communication vs nodes",
        )
        return (
            "Figure 7 — normalized communication vs system size\n"
            + table
            + f"\nLPRR savings range: {lo:.0%}-{hi:.0%} (paper: 73%-86%)"
            + "\n" + chart
        )


def run_node_sweep(
    study: CaseStudy, config: NodeSweepConfig = NodeSweepConfig()
) -> NodeSweepResult:
    """Run the Figure 7 sweep on a case study."""
    hash_bytes, greedy_bytes, lprr_bytes = [], [], []
    for n in config.node_counts:
        hash_bytes.append(study.replay_cost(study.place_hash(n)))
        greedy_bytes.append(study.replay_cost(study.place_greedy(n, config.scope)))
        lprr_bytes.append(
            study.replay_cost(
                study.place_lprr(n, config.scope, config.rounding_trials)
            )
        )
    return NodeSweepResult(
        node_counts=tuple(config.node_counts),
        hash_bytes=tuple(hash_bytes),
        greedy_bytes=tuple(greedy_bytes),
        lprr_bytes=tuple(lprr_bytes),
    )
