"""Figure 2: skewness and stability of keyword-pair correlations.

(A) ranks the most correlated pairs of period one and reports the
probability curve (the paper's trace: pair #1 is 177x pair #1000);
(B) looks those same pairs up in period two and reports the fraction
whose probability changed by more than 2x (paper: 1.2%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.asciiplot import ascii_chart
from repro.analysis.skewness import pair_probability_curve, skew_ratio
from repro.analysis.stability import StabilityReport, stability_report
from repro.core.correlation import cooccurrence_correlations
from repro.experiments.common import CaseStudy


@dataclass(frozen=True)
class SkewStabilityConfig:
    """Parameters for the Figure 2 analysis.

    ``min_count`` applies to the stability panel only: pairs observed
    fewer times than this in period one are not tracked, because their
    probability estimates are sampling noise.  The paper's top-1000
    pairs over 29M queries all had thousands of observations; at
    laptop-scale traces the threshold plays that role.
    """

    top_pairs: int = 1000
    change_factor: float = 2.0
    min_count: int = 10


@dataclass(frozen=True)
class SkewStabilityResult:
    """Figure 2's two panels as data.

    Attributes:
        ranks: Pair ranks reported (1-based checkpoints).
        period1_probabilities: Period-one probability at each rank.
        period2_probabilities: Period-two probability of the same pairs.
        skew: Ratio of rank-1 to rank-``top_pairs`` probability (2A).
        stability: Full period-over-period report (2B).
    """

    ranks: tuple[int, ...]
    period1_probabilities: tuple[float, ...]
    period2_probabilities: tuple[float, ...]
    skew: float
    stability: StabilityReport

    def render(self) -> str:
        """Figure 2 as text."""
        lines = [
            "Figure 2(A) — skewness of keyword-pair correlations",
            f"  top-1 / top-{self.ranks[-1]} probability ratio: {self.skew:.1f}x",
            "  rank: probability (period 1)",
        ]
        for rank, p1 in zip(self.ranks, self.period1_probabilities):
            lines.append(f"    #{rank}: {p1:.3e}")
        lines += [
            "Figure 2(B) — stability across periods",
            f"  pairs changing >{2.0:.0f}x or <1/2: "
            f"{self.stability.unstable_fraction:.1%} (paper: 1.2%)",
        ]
        period2 = [
            (rank, p2)
            for rank, p2 in zip(self.ranks, self.period2_probabilities)
            if p2 > 0
        ]
        series = {"period 1": (list(self.ranks), list(self.period1_probabilities))}
        if period2:
            series["period 2"] = ([r for r, _ in period2], [p for _, p in period2])
        lines.append(
            ascii_chart(series, log_y=True, title="ranked pair probabilities")
        )
        return "\n".join(lines)


def run_skewness_stability(
    study: CaseStudy, config: SkewStabilityConfig = SkewStabilityConfig()
) -> SkewStabilityResult:
    """Run the Figure 2 analysis on a case study's two periods."""
    corr1 = cooccurrence_correlations(study.log.operations())
    corr2 = cooccurrence_correlations(study.log_period2.operations())

    pairs, probs = pair_probability_curve(corr1, top_k=config.top_pairs)
    supported = cooccurrence_correlations(
        study.log.operations(), min_support=config.min_count
    )
    report = stability_report(
        supported,
        corr2,
        top_k=config.top_pairs,
        change_factor=config.change_factor,
    )

    # Checkpoint ranks: 1, then every ~10% of the curve, then the last.
    k = len(pairs)
    step = max(k // 10, 1)
    checkpoints = sorted({1, *range(step, k + 1, step), k}) if k else []
    ranks = tuple(checkpoints)
    return SkewStabilityResult(
        ranks=ranks,
        period1_probabilities=tuple(probs[r - 1] for r in ranks),
        period2_probabilities=tuple(
            float(corr2.get(pairs[r - 1], 0.0)) for r in ranks
        ),
        skew=skew_ratio(probs),
        stability=report,
    )
