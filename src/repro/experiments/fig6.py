"""Figure 6: communication cost vs optimization scope.

For a 10-node system, sweep the number of most-important keywords
subject to correlation-aware placement; out-of-scope keywords are
hash-placed.  Costs come from replaying the full query trace through
the engine, normalized to random hash placement — exactly the paper's
presentation.  Paper shape: LPRR reaches ~78% savings at the widest
scope, the greedy heuristic peaks around ~44%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.asciiplot import ascii_chart
from repro.analysis.reporting import format_table
from repro.experiments.common import CaseStudy


@dataclass(frozen=True)
class ScopeSweepConfig:
    """Parameters for the Figure 6 sweep.

    Scopes default to ten steps up to half the vocabulary — the scaled
    analogue of the paper's 1000..10000 over a 253k vocabulary.
    """

    scopes: Sequence[int] | None = None
    num_nodes: int = 10
    rounding_trials: int = 10


@dataclass(frozen=True)
class ScopeSweepResult:
    """Figure 6 as data: per-scope normalized costs.

    All costs are engine bytes over the full trace; ``normalized_*``
    divide by the hash baseline (lower is better, 1.0 = no savings).
    """

    scopes: tuple[int, ...]
    hash_bytes: int
    greedy_bytes: tuple[int, ...]
    lprr_bytes: tuple[int, ...]

    @property
    def normalized_greedy(self) -> tuple[float, ...]:
        """Greedy cost normalized to hash placement."""
        return tuple(b / self.hash_bytes for b in self.greedy_bytes)

    @property
    def normalized_lprr(self) -> tuple[float, ...]:
        """LPRR cost normalized to hash placement."""
        return tuple(b / self.hash_bytes for b in self.lprr_bytes)

    @property
    def best_lprr_saving(self) -> float:
        """Largest fractional saving LPRR achieves over hash."""
        return 1.0 - min(self.normalized_lprr)

    @property
    def best_greedy_saving(self) -> float:
        """Largest fractional saving greedy achieves over hash."""
        return 1.0 - min(self.normalized_greedy)

    def render(self) -> str:
        """Figure 6 as a text table."""
        rows = [
            [scope, g, l]
            for scope, g, l in zip(
                self.scopes, self.normalized_greedy, self.normalized_lprr
            )
        ]
        table = format_table(
            ["scope", "greedy / hash", "LPRR / hash"], rows
        )
        chart = ascii_chart(
            {
                "greedy/hash": (list(self.scopes), list(self.normalized_greedy)),
                "LPRR/hash": (list(self.scopes), list(self.normalized_lprr)),
            },
            title="normalized communication vs scope",
        )
        return (
            "Figure 6 — normalized communication vs optimization scope "
            f"({len(self.scopes)} scopes, hash baseline {self.hash_bytes} bytes)\n"
            + table
            + f"\nbest saving: greedy {self.best_greedy_saving:.0%} "
            f"(paper: up to 44%), LPRR {self.best_lprr_saving:.0%} (paper: ~78%)"
            + "\n" + chart
        )


def run_scope_sweep(
    study: CaseStudy, config: ScopeSweepConfig = ScopeSweepConfig()
) -> ScopeSweepResult:
    """Run the Figure 6 sweep on a case study."""
    problem = study.placement_problem(config.num_nodes)
    scopes = config.scopes
    if scopes is None:
        limit = max(problem.num_objects // 2, 1)
        step = max(limit // 10, 1)
        scopes = list(range(step, limit + 1, step))
    scopes = [min(s, problem.num_objects) for s in scopes]

    hash_bytes = study.replay_cost(study.place_hash(config.num_nodes))
    greedy_bytes = []
    lprr_bytes = []
    for scope in scopes:
        greedy_bytes.append(
            study.replay_cost(study.place_greedy(config.num_nodes, scope))
        )
        lprr_bytes.append(
            study.replay_cost(
                study.place_lprr(config.num_nodes, scope, config.rounding_trials)
            )
        )
    return ScopeSweepResult(
        scopes=tuple(scopes),
        hash_bytes=hash_bytes,
        greedy_bytes=tuple(greedy_bytes),
        lprr_bytes=tuple(lprr_bytes),
    )
