"""Shared case-study construction for all experiments.

Builds the synthetic analogue of the paper's evaluation setup — web
corpus, inverted index, two-period query log — once, with every size a
parameter.  Default sizes are scaled ~50x below the paper's (3.7M pages
/ 6.8M queries) so the full experiment grid runs on a laptop in
minutes; EXPERIMENTS.md records the shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.strategies import PlanConfig, PlanResult, get_planner
from repro.search.engine import DistributedSearchEngine, build_placement_problem
from repro.search.index import InvertedIndex
from repro.search.query import QueryLog
from repro.workloads.corpus_gen import generate_corpus
from repro.workloads.query_gen import QueryWorkloadModel


@dataclass(frozen=True)
class CaseStudyConfig:
    """Sizes and seeds of the synthetic search case study.

    The defaults trade fidelity for runtime; raise them toward the
    paper's scale (3.7M docs, 254k vocabulary, 6.8M queries, scopes to
    10000) if you have hours to spend.
    """

    num_documents: int = 1500
    vocabulary_size: int = 4000
    words_per_doc: float = 60.0
    corpus_zipf_exponent: float = 1.0
    num_queries: int = 30_000
    num_topics: int = 400
    topic_query_fraction: float = 0.7
    topic_size_range: tuple[int, int] = (2, 3)
    membership_exponent: float = 0.3
    drift_fraction: float = 0.02
    min_support: int = 3
    seed: int = 0


@dataclass
class CaseStudy:
    """The materialized evaluation setup.

    Attributes:
        config: The generating configuration.
        index: Inverted index over the synthetic corpus.
        model: Period-one query workload model.
        log: Period-one query log (drives placement and evaluation).
        log_period2: Period-two log from the drifted model (stability
            analysis only).
        planning: Base :class:`~repro.core.strategies.PlanConfig` for
            every placement this study computes.  The workload seed and
            per-call scope/trials are overlaid on it, so setting e.g.
            ``planning=PlanConfig(jobs=4, cache_dir="...")`` parallelizes
            and caches the whole experiment grid without touching any
            figure code.  The default is the legacy serial engine.
    """

    config: CaseStudyConfig
    index: InvertedIndex
    model: QueryWorkloadModel
    log: QueryLog
    log_period2: QueryLog
    planning: PlanConfig = field(default_factory=PlanConfig)
    _problems: dict = field(default_factory=dict, repr=False)

    @classmethod
    def build(
        cls,
        config: CaseStudyConfig = CaseStudyConfig(),
        planning: PlanConfig | None = None,
    ) -> "CaseStudy":
        """Generate corpus, index, and both query-log periods."""
        corpus = generate_corpus(
            config.num_documents,
            config.vocabulary_size,
            words_per_doc=config.words_per_doc,
            zipf_exponent=config.corpus_zipf_exponent,
            seed=config.seed,
        )
        index = InvertedIndex.from_corpus(corpus)
        model = QueryWorkloadModel(
            index.vocabulary,
            num_topics=config.num_topics,
            topic_size_range=config.topic_size_range,
            topic_query_fraction=config.topic_query_fraction,
            membership_exponent=config.membership_exponent,
            seed=config.seed,
        )
        log = model.generate(config.num_queries, rng=config.seed)
        drifted = model.drifted(config.drift_fraction, seed=config.seed + 1)
        log_period2 = drifted.generate(config.num_queries, rng=config.seed + 2)
        return cls(config, index, model, log, log_period2, planning or PlanConfig())

    def placement_problem(self, num_nodes: int) -> PlacementProblem:
        """The CCA instance for a given system size (cached).

        Nodes are uncapacitated here; strategies apply their own
        conservative capacities (the paper's 2x-average rule).
        """
        if num_nodes not in self._problems:
            self._problems[num_nodes] = build_placement_problem(
                self.index,
                self.log,
                num_nodes,
                correlation_mode="two_smallest",
                min_support=self.config.min_support,
            )
        return self._problems[num_nodes]

    # ------------------------------------------------------------------
    # The paper's three placement strategies (via the Planner registry)
    # ------------------------------------------------------------------
    def plan_with(
        self, planner: str, num_nodes: int, **overrides: Any
    ) -> PlanResult:
        """Run a registered planner on this study's problem.

        The study's ``planning`` config is used with the workload seed
        and any ``overrides`` applied on top, so all placements across
        an experiment derive from one configuration.
        """
        config = replace(self.planning, seed=self.config.seed, **overrides)
        return get_planner(planner)(
            self.placement_problem(num_nodes), config=config
        )

    def place_hash(self, num_nodes: int) -> Placement:
        """Random MD5-hash placement (baseline)."""
        return self.plan_with("hash", num_nodes).placement

    def place_greedy(self, num_nodes: int, scope: int | None) -> Placement:
        """Greedy correlation-aware placement at an optimization scope."""
        return self.plan_with("greedy", num_nodes, scope=scope).placement

    def place_lprr(
        self, num_nodes: int, scope: int | None, rounding_trials: int = 10
    ) -> Placement:
        """LPRR placement at an optimization scope."""
        return self.plan_with(
            "lprr", num_nodes, scope=scope, rounding_trials=rounding_trials
        ).placement

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def replay_cost(self, placement: Placement) -> int:
        """Total engine communication (bytes) replaying the query log.

        This mirrors the paper's methodology: the prototype executes
        the full trace against the placed indices and logs every
        inter-node transfer.
        """
        engine = DistributedSearchEngine(self.index, placement)
        return engine.execute_log(self.log).total_bytes


@lru_cache(maxsize=4)
def default_case_study(seed: int = 0) -> CaseStudy:
    """A process-wide cached default case study (used by benchmarks)."""
    return CaseStudy.build(CaseStudyConfig(seed=seed))
