"""Experiment harness: one module per paper figure, plus ablations.

Each experiment is a plain function taking a config dataclass and
returning a result dataclass with a ``render()`` method; the benchmark
suite, the CLI, and the examples all call the same code so paper
figures are regenerated identically everywhere.
"""

from repro.experiments.common import CaseStudy, CaseStudyConfig
from repro.experiments.fig2 import (
    SkewStabilityConfig,
    SkewStabilityResult,
    run_skewness_stability,
)
from repro.experiments.fig5 import DominanceConfig, DominanceResult, run_dominance
from repro.experiments.fig6 import ScopeSweepConfig, ScopeSweepResult, run_scope_sweep
from repro.experiments.fig7 import NodeSweepConfig, NodeSweepResult, run_node_sweep
from repro.experiments.report import FullReport, run_full_report

__all__ = [
    "CaseStudy",
    "CaseStudyConfig",
    "DominanceConfig",
    "DominanceResult",
    "FullReport",
    "NodeSweepConfig",
    "NodeSweepResult",
    "ScopeSweepConfig",
    "ScopeSweepResult",
    "SkewStabilityConfig",
    "SkewStabilityResult",
    "run_dominance",
    "run_full_report",
    "run_node_sweep",
    "run_scope_sweep",
    "run_skewness_stability",
]
