"""Figure 5: dominance of the most important keywords.

Cumulative fraction of total index size and of total inter-keyword
communication cost covered by the top-ranked keywords — the evidence
that a small optimization scope captures most of the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.asciiplot import ascii_chart
from repro.analysis.dominance import DominanceCurves, dominance_curves
from repro.analysis.reporting import format_table
from repro.experiments.common import CaseStudy


@dataclass(frozen=True)
class DominanceConfig:
    """Parameters for the Figure 5 analysis."""

    checkpoints: Sequence[int] | None = None
    num_nodes: int = 10  # only affects problem construction, not curves


@dataclass(frozen=True)
class DominanceResult:
    """Figure 5 as data."""

    curves: DominanceCurves
    vocabulary_size: int

    def render(self) -> str:
        """Figure 5 as a text table."""
        rows = [
            [scope, size, cost]
            for scope, size, cost in zip(
                self.curves.checkpoints,
                self.curves.size_fraction,
                self.curves.cost_fraction,
            )
        ]
        table = format_table(
            ["top keywords", "cum. index size", "cum. comm. cost"], rows
        )
        chart = ascii_chart(
            {
                "index size": (
                    list(self.curves.checkpoints),
                    list(self.curves.size_fraction),
                ),
                "comm. cost": (
                    list(self.curves.checkpoints),
                    list(self.curves.cost_fraction),
                ),
            },
            title="cumulative coverage vs importance rank",
        )
        return (
            "Figure 5 — dominance of important keywords "
            f"(vocabulary: {self.vocabulary_size})\n" + table + "\n" + chart
        )


def run_dominance(
    study: CaseStudy, config: DominanceConfig = DominanceConfig()
) -> DominanceResult:
    """Compute Figure 5's curves for a case study."""
    problem = study.placement_problem(config.num_nodes)
    checkpoints = config.checkpoints
    if checkpoints is None:
        t = problem.num_objects
        step = max(t // 12, 1)
        checkpoints = list(range(step, t + 1, step))
        if checkpoints[-1] != t:
            checkpoints.append(t)
    curves = dominance_curves(problem, checkpoints=list(checkpoints))
    return DominanceResult(curves=curves, vocabulary_size=problem.num_objects)
