"""One-shot evaluation report: every figure, one document.

``run_full_report`` executes the complete experiment suite on one case
study and renders a single text report — the quickest way to regenerate
the paper's whole evaluation section (the CLI exposes it as
``repro experiment all``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.experiments.common import CaseStudy
from repro.experiments.fig2 import SkewStabilityConfig, run_skewness_stability
from repro.experiments.fig5 import DominanceConfig, run_dominance
from repro.experiments.fig6 import ScopeSweepConfig, run_scope_sweep
from repro.experiments.fig7 import NodeSweepConfig, run_node_sweep


@dataclass(frozen=True)
class FullReport:
    """All four figures plus headline numbers and timing."""

    fig2: object
    fig5: object
    fig6: object
    fig7: object
    elapsed_seconds: float

    @property
    def headline_vs_hash(self) -> tuple[float, float]:
        """(min, max) LPRR savings vs hash over both sweeps."""
        savings = [1 - v for v in self.fig6.normalized_lprr] + [
            1 - v for v in self.fig7.normalized_lprr
        ]
        return min(savings), max(savings)

    @property
    def headline_vs_greedy(self) -> tuple[float, float]:
        """(min, max) LPRR savings vs greedy over both sweeps."""
        savings = [
            1 - l / g
            for l, g in zip(self.fig6.lprr_bytes, self.fig6.greedy_bytes)
        ] + [
            1 - l / g
            for l, g in zip(self.fig7.lprr_bytes, self.fig7.greedy_bytes)
        ]
        return min(savings), max(savings)

    def render(self) -> str:
        """The full evaluation as one text document."""
        lo_h, hi_h = self.headline_vs_hash
        lo_g, hi_g = self.headline_vs_greedy
        parts = [
            "=" * 70,
            "Correlation-Aware Object Placement — full evaluation report",
            f"(generated in {self.elapsed_seconds:.0f}s; see EXPERIMENTS.md "
            "for paper-vs-measured commentary)",
            "=" * 70,
            self.fig2.render(),
            "-" * 70,
            self.fig5.render(),
            "-" * 70,
            self.fig6.render(),
            "-" * 70,
            self.fig7.render(),
            "-" * 70,
            "Headline (paper: 37-86% vs hash, 30-78% vs greedy):",
            f"  LPRR vs hash:   {lo_h:.0%} .. {hi_h:.0%}",
            f"  LPRR vs greedy: {lo_g:.0%} .. {hi_g:.0%}",
        ]
        return "\n".join(parts)


def run_full_report(
    study: CaseStudy,
    scopes: tuple[int, ...] | None = None,
    node_counts: tuple[int, ...] = (10, 20, 40, 70, 100),
    fig7_scope: int | None = 400,
    rounding_trials: int = 10,
) -> FullReport:
    """Run the entire evaluation suite on one case study."""
    figure_hist = obs.histogram("experiment.figure_seconds")
    with obs.timed("experiment.full_report") as report_span:
        with obs.timed("experiment.fig2") as sp:
            fig2 = run_skewness_stability(study, SkewStabilityConfig())
        figure_hist.observe(sp.duration)
        with obs.timed("experiment.fig5") as sp:
            fig5 = run_dominance(study, DominanceConfig())
        figure_hist.observe(sp.duration)
        with obs.timed("experiment.fig6") as sp:
            fig6 = run_scope_sweep(
                study,
                ScopeSweepConfig(scopes=scopes, rounding_trials=rounding_trials),
            )
        figure_hist.observe(sp.duration)
        with obs.timed("experiment.fig7") as sp:
            fig7 = run_node_sweep(
                study,
                NodeSweepConfig(
                    node_counts=node_counts,
                    scope=fig7_scope,
                    rounding_trials=rounding_trials,
                ),
            )
        figure_hist.observe(sp.duration)
    return FullReport(
        fig2=fig2,
        fig5=fig5,
        fig6=fig6,
        fig7=fig7,
        elapsed_seconds=report_span.duration,
    )
