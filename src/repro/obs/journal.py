"""Flight recorder: a bounded, append-only structured event journal.

Where spans answer *where did the time go* and metrics answer *how much
of what happened*, the journal answers *why did the system do what it
did*: every control-loop decision — a drift verdict, a fallback-chain
attempt, a fault injection, a cache hit — lands here as one
schema-versioned record, in order, with the inputs that produced it.

Design constraints, in priority order:

1. **Byte-reproducible.**  Records never contain wall-clock time, host
   names, process ids, or memory addresses.  Ordering is a logical
   clock (``seq``, a per-journal monotone counter); call sites that
   live on a virtual timeline (stream periods, chaos epochs) attach it
   as the ``t`` field.  Two same-seed runs therefore produce
   byte-identical journals, which CI enforces with ``cmp``.
2. **Bounded.**  The journal is a flight recorder, not a log file: it
   keeps at most ``max_records`` records and ``max_bytes`` of encoded
   payload, evicting oldest-first.  A long ``repro online`` run can
   journal every period forever without growing without bound; the
   ``dropped`` count in the header says how much history was shed.
3. **Append-only, JSONL.**  One JSON object per line, sorted keys,
   compact separators.  The first line is a header record carrying the
   schema version and eviction bookkeeping; every subsequent line is
   an event.

The rest of the codebase reaches the journal through
:func:`repro.obs.record`, which is a no-op (one global read) unless an
active :class:`~repro.obs.runtime.Instrumentation` carries a journal.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Iterator

#: Schema marker stamped on the header line; bump when the record
#: layout changes incompatibly.
JOURNAL_SCHEMA = "repro.journal/v1"

#: Default record cap — generous for any bundled scenario, small enough
#: that a runaway loop cannot exhaust memory.
DEFAULT_MAX_RECORDS = 100_000

#: Default cap on total encoded bytes (16 MiB).
DEFAULT_MAX_BYTES = 16 * 1024 * 1024


def _encode(record: dict) -> str:
    """Canonical one-line encoding (sorted keys, compact separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class Journal:
    """A bounded, append-only, deterministic event journal.

    Args:
        max_records: Retain at most this many records (>= 1).
        max_bytes: Retain at most this many encoded bytes across all
            records; ``None`` disables the byte cap.

    Records are plain dicts.  :meth:`record` stamps each with the next
    ``seq`` value and its ``kind``, encodes it immediately (so a record
    that cannot be JSON-encoded fails at the call site, not at dump
    time), and evicts oldest-first when either cap is exceeded.
    """

    def __init__(
        self,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
    ):
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None)")
        self.max_records = max_records
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: deque[tuple[dict, int]] = deque()
        self._bytes = 0
        self._seq = 0
        self._dropped = 0

    def record(self, kind: str, **fields: Any) -> dict:
        """Append one event and return the stored record.

        Args:
            kind: Dotted lowercase event type (``"online.period"``,
                ``"plan.attempt"``, ``"cache.load"``).
            **fields: JSON-encodable payload.  ``kind`` and ``seq`` are
                reserved; a ``t`` field is the caller's *virtual* time
                (period start, epoch index) — never the wall clock.

        Returns:
            The record dict actually stored (including ``seq``).
        """
        with self._lock:
            record = {"seq": self._seq, "kind": kind, **fields}
            size = len(_encode(record)) + 1  # + newline
            self._seq += 1
            self._entries.append((record, size))
            self._bytes += size
            self._evict()
            return record

    def _evict(self) -> None:
        while len(self._entries) > self.max_records or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            _, size = self._entries.popleft()
            self._bytes -= size
            self._dropped += 1

    @property
    def dropped(self) -> int:
        """Records evicted so far (oldest-first)."""
        return self._dropped

    @property
    def total_bytes(self) -> int:
        """Encoded size of the retained records (newlines included)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[dict]:
        with self._lock:
            entries = list(self._entries)
        return (record for record, _ in entries)

    def records(self, kind: str | None = None) -> list[dict]:
        """Retained records in order, optionally filtered by kind."""
        if kind is None:
            return list(self)
        return [r for r in self if r.get("kind") == kind]

    def header(self) -> dict:
        """The JSONL header line: schema + retention bookkeeping."""
        with self._lock:
            return {
                "schema": JOURNAL_SCHEMA,
                "kind": "journal.header",
                "records": len(self._entries),
                "dropped": self._dropped,
            }

    def to_jsonl(self) -> str:
        """The whole journal as JSONL text (header first)."""
        lines = [_encode(self.header())]
        lines.extend(_encode(record) for record in self)
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> None:
        """Write the journal to ``path`` as JSONL."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    def reset(self) -> None:
        """Drop every record and restart the logical clock."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._seq = 0
            self._dropped = 0

    def __repr__(self) -> str:
        return (
            f"Journal({len(self._entries)} records, "
            f"{self._bytes} bytes, dropped={self._dropped})"
        )


def load_journal(path: str | Path) -> list[dict]:
    """Parse a JSONL journal file back into its records.

    The header line (``kind == "journal.header"``) is validated for
    schema compatibility and included in the returned list — analytics
    filter by ``kind`` anyway, and the header's ``dropped`` count is
    itself reportable.

    Raises:
        ValueError: On malformed lines or an incompatible schema.
    """
    records: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: journal lines must be objects")
        if record.get("kind") == "journal.header":
            schema = record.get("schema")
            if schema != JOURNAL_SCHEMA:
                raise ValueError(
                    f"{path}: unsupported journal schema {schema!r} "
                    f"(expected {JOURNAL_SCHEMA!r})"
                )
        records.append(record)
    return records
