"""Exporters: JSON document, Prometheus text, Chrome trace, span tree.

Four consumers, four formats:

* :func:`to_json` — one machine-readable document per run, the
  ``--metrics-out`` payload (metrics summaries + full span forest);
* :func:`to_prometheus` — the text exposition format scrapers expect
  (histograms become summaries with ``quantile`` labels; label values
  are escaped per the format);
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON that
  ``chrome://tracing`` and Perfetto load, one timeline track per
  worker process (the ``--trace-out`` payload);
* :func:`render_span_tree` — a human-readable tree for the terminal,
  the ``--trace`` output.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import Span, Tracer

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value per the exposition format.

    Backslash, double quote, and newline are the three characters the
    format reserves inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    """Render ``{k="v",...}`` with escaped values ('' when empty)."""
    parts = [
        f'{k}="{escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def metrics_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """Metrics grouped by kind, histogram values summarized.

    Keys are instrument *keys* (name plus sorted labels), so two
    instruments sharing a name but not labels do not collide.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for instrument in registry:
        if isinstance(instrument, Counter):
            counters[instrument.key] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[instrument.key] = instrument.value
        elif isinstance(instrument, Histogram):
            histograms[instrument.key] = instrument.summary()
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def to_json(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    indent: int | None = 2,
) -> str:
    """The full run report as one JSON document."""
    document: dict[str, Any] = {"metrics": metrics_to_dict(registry)}
    if tracer is not None:
        document["spans"] = [root.to_dict() for root in tracer.roots]
    return json.dumps(document, indent=indent, sort_keys=False)


def _prom_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (one sample set per metric).

    Counters get the conventional ``_total`` suffix; histograms are
    exported as summaries (quantiles exact unless the histogram runs
    in capped-reservoir mode).  Instrument labels are rendered with
    values escaped per the exposition format.
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in sorted(registry, key=lambda i: i.key):
        name = _prom_name(instrument.name)
        labels = _prom_labels(instrument.labels)
        if isinstance(instrument, Counter):
            if not name.endswith("_total"):
                name += "_total"
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{labels} {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{labels} {_fmt(instrument.value)}")
        elif isinstance(instrument, Histogram):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} summary")
            for q in (0.5, 0.9, 0.95, 0.99):
                value = instrument.percentile(q * 100)
                quantile = _prom_labels(
                    instrument.labels, extra=f'quantile="{_fmt(q)}"'
                )
                lines.append(f"{name}{quantile} {_fmt(value)}")
            lines.append(f"{name}_sum{labels} {_fmt(instrument.sum)}")
            lines.append(f"{name}_count{labels} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Render a float the way Prometheus likes: integral values bare."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_chrome_trace(
    source: Tracer | Iterable[Span], indent: int | None = None
) -> str:
    """The span forest as Chrome ``trace_event`` JSON.

    Loads in ``chrome://tracing`` and https://ui.perfetto.dev.  Each
    span becomes one complete event (``ph: "X"``, microsecond ``ts`` /
    ``dur`` relative to the earliest span).  Track assignment: spans on
    the main process render on thread 0; a subtree rooted at a span
    carrying a ``pid`` attribute — stitched back from a ``TaskRunner``
    worker — renders on its own track named after that worker, so a
    ``jobs=2`` run shows per-worker timelines side by side.
    """
    roots = list(source.roots) if isinstance(source, Tracer) else list(source)
    starts = [s.start_time for root in roots for s in root.walk()]
    origin = min(starts) if starts else 0.0

    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids)
        return tids[track]

    def emit(span: Span, track: str) -> None:
        if "pid" in span.attributes:
            track = f"worker pid={span.attributes['pid']}"
        end = span.end_time if span.end_time is not None else span.start_time
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": tid_for(track),
                "ts": round((span.start_time - origin) * 1e6, 3),
                "dur": round((end - span.start_time) * 1e6, 3),
                "args": {
                    k: v for k, v in sorted(span.attributes.items())
                },
            }
        )
        for child in span.children:
            emit(child, track)

    for root in roots:
        emit(root, "main")

    metadata: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
    document = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, indent=indent, sort_keys=False)


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_span_tree(tracer: Tracer, min_duration: float = 0.0) -> str:
    """The span forest as an indented console tree.

    Args:
        tracer: The tracer whose roots to render.
        min_duration: Hide spans shorter than this many seconds
            (children of hidden spans are hidden too).
    """
    lines: list[str] = []
    for root in tracer.roots:
        _render(root, "", "", lines, min_duration)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def _render(
    span: Span,
    lead: str,
    child_lead: str,
    lines: list[str],
    min_duration: float,
) -> None:
    if span.duration < min_duration:
        return
    attrs = " ".join(
        f"{k}={_fmt_attr(v)}" for k, v in sorted(span.attributes.items())
    )
    label = f"{lead}{span.name}"
    timing = f"{span.duration * 1000:.1f}ms"
    line = f"{label:<48} {timing:>10}"
    if attrs:
        line += f"  {attrs}"
    lines.append(line)
    visible = [c for c in span.children if c.duration >= min_duration]
    for i, child in enumerate(visible):
        last = i == len(visible) - 1
        branch = "└─ " if last else "├─ "
        extend = "   " if last else "│  "
        _render(child, child_lead + branch, child_lead + extend, lines, min_duration)
