"""Exporters: JSON document, Prometheus text format, console span tree.

Three consumers, three formats:

* :func:`to_json` — one machine-readable document per run, the
  ``--metrics-out`` payload (metrics summaries + full span forest);
* :func:`to_prometheus` — the text exposition format scrapers expect
  (histograms become summaries with ``quantile`` labels);
* :func:`render_span_tree` — a human-readable tree for the terminal,
  the ``--trace`` output.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import Span, Tracer

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metrics_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """Metrics grouped by kind, histogram values summarized."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for instrument in registry:
        if isinstance(instrument, Counter):
            counters[instrument.name] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[instrument.name] = instrument.value
        elif isinstance(instrument, Histogram):
            histograms[instrument.name] = instrument.summary()
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def to_json(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    indent: int | None = 2,
) -> str:
    """The full run report as one JSON document."""
    document: dict[str, Any] = {"metrics": metrics_to_dict(registry)}
    if tracer is not None:
        document["spans"] = [root.to_dict() for root in tracer.roots]
    return json.dumps(document, indent=indent, sort_keys=False)


def _prom_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (one sample set per metric).

    Counters get the conventional ``_total`` suffix; histograms are
    exported as summaries (exact quantiles, since observations are
    retained verbatim).
    """
    lines: list[str] = []
    for instrument in sorted(registry, key=lambda i: i.name):
        name = _prom_name(instrument.name)
        if isinstance(instrument, Counter):
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} summary")
            for q in (0.5, 0.9, 0.95, 0.99):
                value = instrument.percentile(q * 100)
                lines.append(f'{name}{{quantile="{_fmt(q)}"}} {_fmt(value)}')
            lines.append(f"{name}_sum {_fmt(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Render a float the way Prometheus likes: integral values bare."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_span_tree(tracer: Tracer, min_duration: float = 0.0) -> str:
    """The span forest as an indented console tree.

    Args:
        tracer: The tracer whose roots to render.
        min_duration: Hide spans shorter than this many seconds
            (children of hidden spans are hidden too).
    """
    lines: list[str] = []
    for root in tracer.roots:
        _render(root, "", "", lines, min_duration)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def _render(
    span: Span,
    lead: str,
    child_lead: str,
    lines: list[str],
    min_duration: float,
) -> None:
    if span.duration < min_duration:
        return
    attrs = " ".join(
        f"{k}={_fmt_attr(v)}" for k, v in sorted(span.attributes.items())
    )
    label = f"{lead}{span.name}"
    timing = f"{span.duration * 1000:.1f}ms"
    line = f"{label:<48} {timing:>10}"
    if attrs:
        line += f"  {attrs}"
    lines.append(line)
    visible = [c for c in span.children if c.duration >= min_duration]
    for i, child in enumerate(visible):
        last = i == len(visible) - 1
        branch = "└─ " if last else "├─ "
        extend = "   " if last else "│  "
        _render(child, child_lead + branch, child_lead + extend, lines, min_duration)
