"""Global instrumentation state with a zero-cost disabled path.

The rest of the codebase reaches observability exclusively through the
module-level helpers here (``span``, ``timed``, ``counter``, ``gauge``,
``histogram``).  When nothing has called :func:`enable`, every helper
returns a shared no-op object — one global read and one attribute call,
no allocation, no branching at call sites — so instrumentation can stay
threaded through hot paths permanently.

``timed`` is the one exception to "no-op when disabled": it always
returns a real (detached) :class:`~repro.obs.span.Span`, because some
timings are part of the public result surface (``LPStats.solve_seconds``,
``FullReport.elapsed_seconds``) and must exist whether or not a run is
being traced.  When tracing is on, the same span is also attached to
the trace tree.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.journal import Journal
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.span import NULL_SPAN, Span, Tracer, _OpenSpan


class Instrumentation:
    """One tracer + one metrics registry (+ optional journal) — the
    unit of enablement.

    The journal is opt-in: most instrumented runs want spans and
    metrics but not a decision log, and a journal-less unit keeps
    :func:`record` a no-op even while tracing is on.
    """

    def __init__(self, journal: Journal | None = None) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.journal = journal

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        if self.journal is not None:
            self.journal.reset()


_lock = threading.Lock()
_active: Instrumentation | None = None


def enable(instrumentation: Instrumentation | None = None) -> Instrumentation:
    """Turn instrumentation on (idempotent) and return the active unit.

    Passing an existing :class:`Instrumentation` activates that one —
    useful for tests that want a private registry.
    """
    global _active
    with _lock:
        if instrumentation is not None:
            _active = instrumentation
        elif _active is None:
            _active = Instrumentation()
        return _active


def disable() -> None:
    """Turn instrumentation off; helpers revert to the no-op path."""
    global _active
    with _lock:
        _active = None


def is_enabled() -> bool:
    """Whether an instrumentation unit is active."""
    return _active is not None


def current() -> Instrumentation | None:
    """The active instrumentation unit, or None when disabled."""
    return _active


def span(name: str, **attributes: Any) -> Any:
    """A traced span context manager (shared no-op when disabled)."""
    active = _active
    if active is None:
        return NULL_SPAN
    return active.tracer.span(name, **attributes)


class _TimedSpan:
    """Context manager yielding a span that always measures time.

    When tracing is active the span joins the trace tree; otherwise it
    is detached but still stamps start/end, so callers can read
    ``duration`` either way.
    """

    __slots__ = ("_name", "_attributes", "_span", "_open")

    def __init__(self, name: str, attributes: dict[str, Any]):
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._open: _OpenSpan | None = None

    def __enter__(self) -> Span:
        active = _active
        if active is None:
            self._span = Span(self._name, self._attributes)
        else:
            self._open = active.tracer.span(self._name, **self._attributes)
            self._span = self._open.__enter__()
        return self._span

    def __exit__(self, *exc: object) -> None:
        if self._open is not None:
            self._open.__exit__(*exc)
        elif self._span is not None:
            self._span.finish()


def timed(name: str, **attributes: Any) -> _TimedSpan:
    """A span that measures wall-clock even when instrumentation is off.

    Use for timings that feed public result fields::

        with obs.timed("lp.solve") as sp:
            result = lp.solve()
        elapsed = sp.duration
    """
    return _TimedSpan(name, attributes)


def journal() -> Journal | None:
    """The active journal, or None when disabled / not journaling."""
    active = _active
    if active is None:
        return None
    return active.journal


def record(kind: str, **fields: Any) -> dict | None:
    """Append one event to the active journal (no-op otherwise).

    The flight-recorder analogue of :func:`counter`: call sites stay
    threaded through control loops permanently and cost one global
    read plus a None check until a journal-carrying
    :class:`Instrumentation` is enabled.  Payload rules are the
    journal's: JSON-encodable values only, virtual time in ``t``,
    never the wall clock (see :mod:`repro.obs.journal`).

    Returns:
        The stored record (with ``seq``), or None when not journaling.
    """
    active = _active
    if active is None or active.journal is None:
        return None
    return active.journal.record(kind, **fields)


def counter(name: str, labels: dict[str, str] | None = None) -> Counter:
    """The named counter (shared no-op when disabled)."""
    active = _active
    if active is None:
        return NULL_INSTRUMENT  # type: ignore[return-value]
    return active.metrics.counter(name, labels=labels)


def gauge(name: str, labels: dict[str, str] | None = None) -> Gauge:
    """The named gauge (shared no-op when disabled)."""
    active = _active
    if active is None:
        return NULL_INSTRUMENT  # type: ignore[return-value]
    return active.metrics.gauge(name, labels=labels)


def histogram(
    name: str,
    reservoir: int | None = None,
    labels: dict[str, str] | None = None,
) -> Histogram:
    """The named histogram (shared no-op when disabled).

    ``reservoir`` bounds retained observations for long-running loops
    (exact until full, then reservoir sampling); it applies only when
    this call creates the histogram — see
    :meth:`~repro.obs.metrics.MetricsRegistry.histogram`.
    """
    active = _active
    if active is None:
        return NULL_INSTRUMENT  # type: ignore[return-value]
    return active.metrics.histogram(name, reservoir=reservoir, labels=labels)
