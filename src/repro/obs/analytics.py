"""Trace and journal analytics: attribution, critical path, explain.

The read side of the observability pipeline.  The write side produces
two artifacts — a span forest (``--metrics-out`` JSON, with ``start``/
``end`` per span) and a flight-recorder journal (``--journal`` JSONL)
— and this module turns either into answers:

* :func:`phase_attribution` / :func:`critical_path` — where did the
  wall-clock go, and which chain of spans bounds the run.
* :func:`fallback_summary` / :func:`cache_summary` — how often each
  planner step ran, failed, or was skipped; cache hit rates by kind.
* :func:`explain_period` — the "replan explain" view: for one online
  period, the drift verdict's inputs against its thresholds, the
  fallback attempts made, and the migration actually applied.

Everything here is pure over plain records/spans, so the ``repro
trace`` subcommand and tests share one implementation.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Iterable, Sequence

from repro.obs.span import Span, span_from_payload


# ----------------------------------------------------------------------
# Span-side analytics (metrics documents / live tracers)
# ----------------------------------------------------------------------
def spans_from_document(document: dict) -> list[Span]:
    """Rebuild the span forest from a ``--metrics-out`` JSON document."""
    return [span_from_payload(payload) for payload in document.get("spans", ())]


def phase_attribution(roots: Iterable[Span]) -> list[dict[str, Any]]:
    """Per-span-name time attribution over a span forest.

    Returns one row per span name with ``count``, ``total_s``
    (wall-clock inside spans of that name, children included) and
    ``self_s`` (total minus time inside children — the name's own
    contribution), sorted by ``self_s`` descending.  ``self_s`` sums
    to the forest's wall-clock, so the table is a complete attribution
    rather than a list of overlapping totals.
    """
    rows: dict[str, dict[str, Any]] = {}
    for root in roots:
        for span in root.walk():
            row = rows.setdefault(
                span.name, {"name": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += span.duration
            row["self_s"] += span.duration - sum(
                child.duration for child in span.children
            )
    return sorted(rows.values(), key=lambda r: (-r["self_s"], r["name"]))


def critical_path(roots: Sequence[Span]) -> list[Span]:
    """The chain of longest spans from the longest root to a leaf.

    The greedy longest-child walk is the classic trace-viewer
    approximation of the critical path: at each level, descend into
    the child that consumed the most wall-clock.
    """
    if not roots:
        return []
    span = max(roots, key=lambda s: s.duration)
    path = [span]
    while span.children:
        span = max(span.children, key=lambda s: s.duration)
        path.append(span)
    return path


def render_trace_report(roots: Sequence[Span]) -> str:
    """Attribution table + critical path as terminal text."""
    if not roots:
        return "(no spans recorded)"
    wall = sum(root.duration for root in roots)
    lines = [
        f"phase attribution ({wall * 1000:.1f}ms total wall-clock):",
        f"  {'phase':<36} {'count':>6} {'total':>10} {'self':>10} {'self%':>6}",
    ]
    for row in phase_attribution(roots):
        pct = 100.0 * row["self_s"] / wall if wall > 0 else 0.0
        lines.append(
            f"  {row['name']:<36} {row['count']:>6} "
            f"{row['total_s'] * 1000:>8.1f}ms {row['self_s'] * 1000:>8.1f}ms "
            f"{pct:>5.1f}%"
        )
    lines.append("")
    lines.append("critical path:")
    for depth, span in enumerate(critical_path(roots)):
        pid = span.attributes.get("pid")
        where = f"  [worker pid={pid}]" if pid is not None else ""
        lines.append(
            f"  {'  ' * depth}{span.name}  {span.duration * 1000:.1f}ms{where}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Journal-side analytics
# ----------------------------------------------------------------------
def fallback_summary(records: Iterable[dict]) -> dict[str, Any]:
    """Planner fallback-chain statistics from ``plan.*`` records."""
    attempts: TallyCounter = TallyCounter()
    delegates: TallyCounter = TallyCounter()
    degraded = 0
    chains = 0
    for record in records:
        kind = record.get("kind")
        if kind == "plan.attempt":
            attempts[(record.get("step", "?"), record.get("outcome", "?"))] += 1
        elif kind == "plan.fallback":
            chains += 1
            delegates[str(record.get("delegate"))] += 1
            if record.get("degraded"):
                degraded += 1
    return {
        "chains": chains,
        "degraded": degraded,
        "attempts": {
            f"{step}:{outcome}": count
            for (step, outcome), count in sorted(attempts.items())
        },
        "delegates": dict(sorted(delegates.items())),
    }


def cache_summary(records: Iterable[dict]) -> dict[str, dict[str, int]]:
    """Per-kind cache hit/miss/corrupt/store counts."""
    out: dict[str, dict[str, int]] = {}
    for record in records:
        kind = record.get("kind")
        if kind not in ("cache.load", "cache.store"):
            continue
        stats = out.setdefault(
            str(record.get("cache_kind", "?")),
            {"hit": 0, "miss": 0, "corrupt": 0, "store": 0},
        )
        if kind == "cache.store":
            stats["store"] += 1
        else:
            outcome = record.get("outcome", "miss")
            stats[outcome] = stats.get(outcome, 0) + 1
            if outcome == "corrupt":
                stats["miss"] += 1
    return out


def online_periods(records: Iterable[dict]) -> list[dict]:
    """The ``online.period`` records, in journal order."""
    return [r for r in records if r.get("kind") == "online.period"]


def chaos_summary(records: Iterable[dict]) -> dict[str, Any] | None:
    """Fault/epoch/availability roll-up of a chaos run, if one ran."""
    faults: TallyCounter = TallyCounter()
    epochs = 0
    unserved = 0
    repaired = 0
    end: dict | None = None
    seen = False
    for record in records:
        kind = record.get("kind")
        if kind == "chaos.start":
            seen = True
        elif kind == "chaos.fault":
            faults[str(record.get("fault", "?"))] += 1
        elif kind == "chaos.epoch":
            epochs += 1
            unserved += int(record.get("unserved", 0))
            repaired += 1 if record.get("repaired") else 0
        elif kind == "chaos.end":
            end = record
    if not seen and not faults and end is None:
        return None
    summary: dict[str, Any] = {
        "faults": dict(sorted(faults.items())),
        "epochs": epochs,
        "unserved_operations": unserved,
        "repaired_epochs": repaired,
    }
    if end is not None:
        summary["availability_single"] = end.get("availability_single")
        summary["availability_replicated"] = end.get("availability_replicated")
        summary["repair_bytes"] = end.get("repair_bytes")
    return summary


def serve_summary(records: Iterable[dict]) -> dict[str, Any] | None:
    """Batch/swap/shed roll-up of a serving (loadgen) run, if one ran."""
    batches = 0
    queries = 0
    unique = 0
    by_version: TallyCounter = TallyCounter()
    shed: TallyCounter = TallyCounter()
    swaps: list[dict] = []
    end: dict | None = None
    seen = False
    for record in records:
        kind = record.get("kind")
        if kind == "serve.start":
            seen = True
        elif kind == "serve.batch":
            batches += 1
            queries += int(record.get("size", 0))
            unique += int(record.get("unique", 0))
            by_version[int(record.get("version", 0))] += int(
                record.get("size", 0)
            )
        elif kind == "serve.shed":
            shed[str(record.get("reason", "?"))] += 1
        elif kind == "serve.swap":
            swaps.append(record)
        elif kind == "serve.end":
            end = record
    if not seen and not batches and end is None:
        return None
    summary: dict[str, Any] = {
        "batches": batches,
        "batched_queries": queries,
        "unique_executions": unique,
        "queries_by_version": {str(k): v for k, v in sorted(by_version.items())},
        "shed": dict(sorted(shed.items())),
        "swaps": [
            {"version": s.get("version"), "planner": s.get("planner")}
            for s in swaps
        ],
    }
    if end is not None:
        summary["throughput_qps"] = end.get("throughput_qps")
        summary["p99_ms"] = end.get("p99_ms")
    return summary


def _attempts_for_period(records: Sequence[dict], period_seq: int) -> list[dict]:
    """``plan.attempt`` records belonging to one ``online.period``.

    Journal order is the logical clock: a period's planning records
    land between the previous ``online.period`` record and its own.
    """
    boundary = -1
    for record in records:
        if (
            record.get("kind") == "online.period"
            and record.get("seq", -1) < period_seq
        ):
            boundary = max(boundary, int(record["seq"]))
    return [
        r
        for r in records
        if r.get("kind") == "plan.attempt"
        and boundary < r.get("seq", -1) < period_seq
    ]


def explain_period(records: Sequence[dict], period: int) -> str:
    """The "replan explain" view for one online period.

    Reconstructs the decision from the journal alone: what the drift
    detector measured, which thresholds it crossed (pulled from the
    run's ``online.run.start`` record), which fallback attempts the
    planner made, and what migration was applied under what budget.

    Raises:
        ValueError: When the journal has no such period.
    """
    start = next(
        (r for r in records if r.get("kind") == "online.run.start"), None
    )
    target = next(
        (
            r
            for r in records
            if r.get("kind") == "online.period" and r.get("period") == period
        ),
        None,
    )
    if target is None:
        known = [r.get("period") for r in online_periods(records)]
        raise ValueError(
            f"no online.period record for period {period} "
            f"(journal covers periods {known[:1]}..{known[-1:]})"
            if known
            else f"no online.period records in this journal (period {period})"
        )

    action = target.get("action", "?")
    lines = [
        f"period {period} "
        f"[t={target.get('start_s', '?')}s..{target.get('end_s', '?')}s] "
        f"— action: {action}",
        f"  operations: {target.get('operations')}, "
        f"tracked pairs: {target.get('tracked_pairs')}",
    ]

    thresholds = (start or {}).get("thresholds", {})
    drift = target.get("drift")
    if drift is None:
        lines.append("  drift: not assessed (pre-bootstrap)")
    elif not drift.get("judged", True):
        lines.append(
            f"  drift: not judged — fewer than "
            f"{thresholds.get('min_operations', '?')} operations this period"
        )
    else:
        churn_limit = thresholds.get("churn")
        churn = drift.get("churn")
        verdict = ""
        if churn_limit is not None and churn is not None:
            verdict = " EXCEEDED" if churn > churn_limit else " ok"
        lines.append(
            f"  drift churn: {churn} (threshold {churn_limit}){verdict}"
        )
        inflation = drift.get("inflation")
        inflation_limit = thresholds.get("inflation")
        verdict = ""
        if inflation_limit is not None and inflation is not None:
            verdict = " EXCEEDED" if inflation > inflation_limit else " ok"
        lines.append(
            f"  drift inflation: {inflation} "
            f"(threshold {inflation_limit}){verdict}"
        )
        reasons = drift.get("reasons") or []
        lines.append(
            "  verdict: replan requested ("
            + ", ".join(reasons)
            + ")"
            if drift.get("replan")
            else "  verdict: stable, no replan"
        )

    attempts = _attempts_for_period(records, int(target.get("seq", -1)))
    if attempts:
        lines.append("  planner attempts:")
        for attempt in attempts:
            detail = attempt.get("detail") or ""
            suffix = f" ({detail})" if detail else ""
            lines.append(
                f"    {attempt.get('step'):<16} {attempt.get('outcome')}{suffix}"
            )
    if target.get("planner") is not None:
        lines.append(f"  chosen planner: {target['planner']}")
    if action in ("replan", "migrate"):
        lines.append(
            f"  migration: {target.get('moves')} moves, "
            f"{target.get('bytes_moved')} bytes "
            f"(budget {target.get('budget_bytes')})"
        )
    lines.append(f"  cost estimate after: {target.get('cost_estimate')}")
    return "\n".join(lines)


def render_journal_report(records: Sequence[dict]) -> str:
    """One-shot terminal report over a whole journal."""
    header = next(
        (r for r in records if r.get("kind") == "journal.header"), None
    )
    kinds: TallyCounter = TallyCounter(
        r.get("kind", "?") for r in records if r.get("kind") != "journal.header"
    )
    lines: list[str] = []
    if header is not None:
        dropped = header.get("dropped", 0)
        note = f" ({dropped} older records evicted)" if dropped else ""
        lines.append(
            f"journal: {header.get('records')} records, "
            f"schema {header.get('schema')}{note}"
        )
    lines.append("record kinds:")
    for kind, count in sorted(kinds.items()):
        lines.append(f"  {kind:<24} {count}")

    fallback = fallback_summary(records)
    if fallback["chains"]:
        lines.append("")
        lines.append(
            f"fallback chains: {fallback['chains']} "
            f"({fallback['degraded']} degraded)"
        )
        for step, count in fallback["attempts"].items():
            lines.append(f"  {step:<28} {count}")
        lines.append(
            "  delegates: "
            + ", ".join(f"{k}={v}" for k, v in fallback["delegates"].items())
        )

    caches = cache_summary(records)
    if caches:
        lines.append("")
        lines.append("plan cache:")
        for kind, stats in sorted(caches.items()):
            lines.append(
                f"  {kind:<8} hits={stats['hit']} misses={stats['miss']} "
                f"corrupt={stats['corrupt']} stores={stats['store']}"
            )

    chaos = chaos_summary(records)
    if chaos is not None:
        lines.append("")
        lines.append(
            f"chaos: {chaos['epochs']} epochs, "
            f"{chaos['unserved_operations']} unserved operations, "
            f"{chaos['repaired_epochs']} repaired epochs"
        )
        if chaos["faults"]:
            lines.append(
                "  faults: "
                + ", ".join(f"{k}={v}" for k, v in chaos["faults"].items())
            )
        if chaos.get("availability_single") is not None:
            lines.append(
                f"  availability: single {chaos['availability_single']}, "
                f"replicated {chaos['availability_replicated']}"
            )

    serve = serve_summary(records)
    if serve is not None:
        lines.append("")
        lines.append(
            f"serve: {serve['batches']} batches, "
            f"{serve['batched_queries']} queries "
            f"({serve['unique_executions']} unique executions)"
        )
        if serve["queries_by_version"]:
            lines.append(
                "  queries by plan version: "
                + ", ".join(
                    f"v{k}={v}" for k, v in serve["queries_by_version"].items()
                )
            )
        for swap in serve["swaps"]:
            lines.append(
                f"  swap -> version {swap['version']} "
                f"(planner {swap['planner']})"
            )
        if serve["shed"]:
            lines.append(
                "  shed: "
                + ", ".join(f"{k}={v}" for k, v in serve["shed"].items())
            )
        if serve.get("throughput_qps") is not None:
            lines.append(
                f"  throughput: {serve['throughput_qps']} qps, "
                f"p99 {serve['p99_ms']}ms"
            )

    periods = online_periods(records)
    if periods:
        actions: TallyCounter = TallyCounter(p.get("action") for p in periods)
        moved = sum(
            p.get("bytes_moved", 0.0)
            for p in periods
            if p.get("action") in ("replan", "migrate")
        )
        lines.append("")
        lines.append(
            f"online: {len(periods)} periods — "
            + ", ".join(f"{k}={v}" for k, v in sorted(actions.items()))
            + f"; {moved:g} bytes migrated"
        )
        eventful = [
            p for p in periods if p.get("action") in ("bootstrap", "replan", "migrate")
        ]
        for p in eventful:
            lines.append(
                f"  period {p.get('period'):>3} {p.get('action'):<10} "
                f"planner={p.get('planner')} moves={p.get('moves')} "
                f"bytes={p.get('bytes_moved')}"
            )

    bench = [r for r in records if r.get("kind") == "bench.case"]
    if bench:
        lines.append("")
        lines.append("bench cases:")
        for case in bench:
            lines.append(
                f"  {case.get('case'):<20} speedup {case.get('speedup')}x "
                f"(fast {case.get('fast_s')}s vs legacy {case.get('legacy_s')}s)"
            )
    return "\n".join(lines)
