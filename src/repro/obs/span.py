"""Span tracing: nested wall-clock timing with attributes.

A :class:`Span` is one timed region of a run — an LP solve, a rounding
trial batch, a trace replay.  Spans nest: entering a span while another
is open makes it a child, so one planning run yields a tree whose
leaves are the primitive costs the paper's evaluation reports
(Section 4: LP solve time, rounding cost, per-query communication).

The :class:`Tracer` keeps a per-thread stack of open spans plus the
list of finished root spans.  It is stdlib-only and thread-safe; each
thread grows its own subtree, and root spans from all threads land in
one shared list.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator


class Span:
    """One timed region with attributes and child spans.

    Spans are created by :meth:`Tracer.span` (attached to the trace
    tree) or :func:`detached_span` (timing only).  ``duration`` is
    valid while the span is still open — it reads the clock — and
    final once the span has exited.
    """

    __slots__ = ("name", "attributes", "children", "start_time", "end_time")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.children: list[Span] = []
        self.start_time = time.perf_counter()
        self.end_time: float | None = None

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attributes.update(attrs)
        return self

    def finish(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end_time is None:
            self.end_time = time.perf_counter()

    @property
    def duration(self) -> float:
        """Elapsed seconds (to now if the span is still open)."""
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return end - self.start_time

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation of the subtree.

        ``start``/``end`` are ``time.perf_counter`` readings — on Linux
        that is CLOCK_MONOTONIC, shared across processes on the same
        host, which is what lets worker spans land on the parent's
        timeline (see :func:`span_from_payload`).
        """
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return {
            "name": self.name,
            "start": self.start_time,
            "end": end,
            "duration_seconds": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        state = "open" if self.end_time is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NullSpan:
    """The do-nothing span returned on the disabled fast path.

    A single shared instance stands in for every span when
    instrumentation is off; all methods are no-ops so instrumented
    code never branches on enablement.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None

    @property
    def duration(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager binding a span to a tracer's per-thread stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._span.finish()
        self._tracer._pop(self._span)


class Tracer:
    """Collects a forest of spans across threads."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    def span(self, name: str, **attributes: Any) -> _OpenSpan:
        """Open a span as a child of the innermost open span.

        Use as a context manager::

            with tracer.span("lp.solve", backend="highs") as sp:
                ...
                sp.set(iterations=42)
        """
        return _OpenSpan(self, Span(name, attributes))

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def all_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first over all roots."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name."""
        return [s for s in self.all_spans() if s.name == name]

    def attach(self, span: Span, parent: Span | None = None) -> None:
        """Graft an already-finished span (tree) into this tracer.

        This is the receiving half of cross-process propagation: the
        parent deserializes a worker's span payload with
        :func:`span_from_payload` and attaches it — under the innermost
        open span on this thread (or an explicit ``parent``), else as a
        new root.
        """
        if parent is None:
            parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def reset(self) -> None:
        """Drop all recorded spans (open stacks are untouched)."""
        with self._lock:
            self.roots.clear()


def span_to_payload(span: Span) -> dict[str, Any]:
    """A finished span tree as a plain, pickle/JSON-safe dict.

    This is the shipping half of cross-process propagation: a
    ``TaskRunner`` worker finishes its local spans, serializes the
    roots with this, and returns them alongside the task result.
    """
    span.finish()
    return span.to_dict()


def span_from_payload(payload: dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_payload` output.

    ``start``/``end`` are restored verbatim.  Both sides read
    ``time.perf_counter`` (CLOCK_MONOTONIC on Linux — one clock per
    host, not per process), so a rebuilt worker span sits correctly on
    the parent's timeline.  Payloads from older metrics documents that
    lack ``start``/``end`` still load; they get a zero-based timeline
    preserving durations.
    """
    span = Span(payload["name"], payload.get("attributes"))
    if "start" in payload:
        span.start_time = float(payload["start"])
        span.end_time = float(payload["end"])
    else:
        span.start_time = 0.0
        span.end_time = float(payload.get("duration_seconds", 0.0))
    for child in payload.get("children", ()):
        span.children.append(span_from_payload(child))
    return span


def detached_span(name: str, **attributes: Any) -> Span:
    """A running span that belongs to no tracer — a stopwatch.

    Used for timings that must exist regardless of instrumentation
    (e.g. ``LPStats.solve_seconds``): code times via the one span API,
    and the tracer-attached twin appears only when tracing is on.
    """
    return Span(name, attributes)
