"""Metrics: counters, gauges, and histograms with percentile summaries.

The registry is the numeric side of the observability layer — where
spans say *where time went*, metrics say *how much of what happened*:
bytes shipped per query, rounding-trial costs, LP sizes.  All three
instrument kinds are thread-safe and stdlib-only.

Naming convention: dotted lowercase paths (``engine.query.bytes``,
``lp.solve_seconds``).  The Prometheus exporter rewrites dots to
underscores; the JSON exporter keeps them verbatim.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator


class Counter:
    """A monotonically increasing count (events, bytes, trials)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time value that can move either way (sizes, loads)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """A distribution with exact percentile summaries.

    Observations are retained verbatim (the workloads here are at most
    a few hundred thousand observations), so percentiles are exact —
    computed with the linear-interpolation rule numpy uses by default.
    """

    __slots__ = ("name", "_values", "_sorted", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._sorted = True
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            if self._sorted and self._values and value < self._values[-1]:
                self._sorted = False
            self._values.append(float(value))

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in one append.

        Equivalent to ``count`` :meth:`observe` calls — the batched
        replay path aggregates repeated queries and reports each
        unique value once with its multiplicity.
        """
        if count < 0:
            raise ValueError("count must be nonnegative")
        if count == 0:
            return
        with self._lock:
            if self._sorted and self._values and value < self._values[-1]:
                self._sorted = False
            self._values.extend([float(value)] * count)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(sum(self._values))

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._values:
                return 0.0
            if not self._sorted:
                self._values.sort()
                self._sorted = True
            values = self._values
            rank = (p / 100.0) * (len(values) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(values) - 1)
            frac = rank - lo
            return values[lo] * (1.0 - frac) + values[hi] * frac

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus p50, p90, p95, p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "noop"

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, value: float, count: int) -> None:
        return None

    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return "NullInstrument()"


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Asking twice for the same name returns the same instrument;
    asking for a name already registered as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name)
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()
